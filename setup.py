"""Package definition.

This project deliberately ships **no pyproject.toml**: with one present,
``pip install -e .`` takes the PEP 517 path, whose build isolation
downloads the build backend — impossible on the air-gapped machines this
reproduction targets.  A plain ``setup.py`` keeps editable installs on
the legacy ``setup.py develop`` path, which needs nothing but the
setuptools already in the environment.  Supplementary metadata lives in
``setup.cfg``; pytest configuration in ``pytest.ini``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "OMB-Py reproduction: Python MPI micro-benchmarks with a "
        "pure-Python MPI runtime and calibrated cluster simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": [
            "ombpy=repro.core.cli:main",
            "ombpy-run=repro.mpi.launcher:main",
            "ombpy-compare=repro.core.compare:main",
            "ombpy-lint=repro.analysis.lint:main",
            "ombpy-serve=repro.service.cli:serve_main",
            "ombpy-submit=repro.service.cli:submit_main",
            "ombpy-campaign=repro.campaign.cli:main",
        ],
    },
)
