#!/usr/bin/env python
"""Render the scale-debt inventory (``results/scale_report.md``).

Runs the OMB510-515 scalability rules over the shipped tree and writes a
markdown table of every site, ranked by its projected LogGP cost at
N=1024 — so "which laptop-scale assumption hurts first" is one sorted
read, not a grep through lint output.  CI regenerates the report on
every push next to the finding inventory::

    python tools/scale_report.py
    python tools/scale_report.py --out /tmp/scale.md
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.analysis.interproc import load_program          # noqa: E402
from repro.analysis.scale import (                          # noqa: E402
    ANNOTATE_N,
    DEFAULT_MSG_BYTES,
    DEFAULT_NET,
    REPORT_SIZES,
    SCALE_RULES,
    fmt_us,
    scale_inventory,
)

#: The self-host target set (must match the CI perf-lint job).
LINT_PATHS = ["src", "benchmarks", "examples"]
DEFAULT_OUT = os.path.join("results", "scale_report.md")


def render(sites) -> str:
    ranked = sorted(
        sites, key=lambda s: (-s.cost_us(ANNOTATE_N), s.path, s.line)
    )
    sizes = " / ".join(f"N={n}" for n in REPORT_SIZES)
    lines = [
        "# Scale debt",
        "",
        f"OMB510-515 sites ranked by projected LogGP cost at "
        f"N={ANNOTATE_N} (α={DEFAULT_NET.alpha_us:g} µs, "
        f"β={DEFAULT_NET.beta_us_per_byte:.3g} µs/B, "
        f"m={DEFAULT_MSG_BYTES} B).  Costs at {sizes} show how each "
        "site's pattern grows; see docs/protocol-lint.md for the rules "
        "and the cost model.",
        "",
        "| rule | site | what | "
        + " | ".join(f"cost @N={n}" for n in REPORT_SIZES)
        + " |",
        "|---|---|---|" + "---|" * len(REPORT_SIZES),
    ]
    for s in ranked:
        costs = " | ".join(fmt_us(s.cost_us(n)) for n in REPORT_SIZES)
        lines.append(
            f"| {s.rule} | `{s.path}:{s.line}` (`{s.func}`) "
            f"| {s.summary} | {costs} |"
        )
    if not ranked:
        lines.append("| — | — | no OMB51x sites found | " +
                     " | ".join("—" for _ in REPORT_SIZES) + " |")
    lines += [
        "",
        "## Rule legend",
        "",
    ]
    for rule_id, (_fn, doc) in sorted(SCALE_RULES.items()):
        lines.append(f"- **{rule_id}** — {doc}")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"report file to write (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    os.chdir(REPO)  # repo-root-relative paths keep the table stable
    program = load_program(LINT_PATHS)
    sites = scale_inventory(program)
    text = render(sites)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.out}: {len(sites)} OMB51x site(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
