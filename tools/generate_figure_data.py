#!/usr/bin/env python
"""Regenerate the data behind every paper figure as CSV files.

Writes one CSV per figure (sizes + curve family) into ``results/`` so
external plotting tools can redraw the paper's plots.  The same
simulations back the assertions in ``benchmarks/``; this tool is the
export path.

Usage::

    python tools/generate_figure_data.py [--outdir results]
"""

import argparse
from pathlib import Path

from repro.core.export import write_figure
from repro.core.results import ResultRow, ResultTable
from repro.simulator import (
    FRONTERA,
    INTEL_MPI,
    MVAPICH2,
    RI2,
    RI2_GPU,
    STAMPEDE2,
    simulate_collective,
    simulate_ml,
    simulate_pt2pt,
)

GPU_BUFFERS = ("cupy", "pycuda", "numba")


def _ml_table(name: str) -> ResultTable:
    table = ResultTable(
        benchmark=f"fig_ml_{name}", metric="time_s", ranks=224,
        buffer="numpy", api="buffer",
    )
    for procs, time_s, _speedup in simulate_ml(name):
        table.add(ResultRow(procs, time_s))
    return table


def generate(outdir: Path) -> list[Path]:
    written = []

    def fig(name, tables, labels):
        written.append(write_figure(outdir / f"{name}.csv", tables, labels))

    # Figs 4-9: intra-node latency per cluster.
    for num, cluster in ((4, FRONTERA), (6, STAMPEDE2), (8, RI2)):
        fig(
            f"fig{num:02d}_{num + 1:02d}_intra_{cluster.name.lower()}",
            [
                simulate_pt2pt(cluster, "intra", api="native"),
                simulate_pt2pt(cluster, "intra", api="buffer"),
            ],
            ["OMB", "OMB-Py"],
        )

    # Figs 10-13: inter-node latency + bandwidth, Frontera.
    fig(
        "fig10_11_inter_latency",
        [
            simulate_pt2pt(FRONTERA, "inter", api="native"),
            simulate_pt2pt(FRONTERA, "inter", api="buffer"),
        ],
        ["OMB", "OMB-Py"],
    )
    fig(
        "fig12_13_inter_bandwidth",
        [
            simulate_pt2pt(FRONTERA, "inter", api="native",
                           metric="bandwidth"),
            simulate_pt2pt(FRONTERA, "inter", api="buffer",
                           metric="bandwidth"),
        ],
        ["OMB", "OMB-Py"],
    )

    # Figs 14-21: collectives on 16 nodes, 1 and 56 PPN.
    for op, base in (("allreduce", 14), ("allgather", 18)):
        for ppn, offset in ((1, 0), (56, 2)):
            num = base + offset
            fig(
                f"fig{num:02d}_{num + 1:02d}_{op}_{ppn}ppn",
                [
                    simulate_collective(
                        op, FRONTERA, nodes=16, ppn=ppn, api="native"
                    ),
                    simulate_collective(
                        op, FRONTERA, nodes=16, ppn=ppn, api="buffer"
                    ),
                ],
                ["OMB", "OMB-Py"],
            )

    # Figs 22/23: GPU pt2pt by buffer library.
    fig(
        "fig22_23_gpu_pt2pt",
        [simulate_pt2pt(RI2_GPU, api="native", device="gpu")]
        + [
            simulate_pt2pt(RI2_GPU, api="buffer", buffer=buf)
            for buf in GPU_BUFFERS
        ],
        ["OMB"] + list(GPU_BUFFERS),
    )

    # Figs 24-27: GPU collectives.
    for op, num in (("allreduce", 24), ("allgather", 26)):
        fig(
            f"fig{num}_{num + 1}_gpu_{op}",
            [
                simulate_collective(
                    op, RI2_GPU, nodes=8, api="native", buffer="cupy"
                )
            ]
            + [
                simulate_collective(
                    op, RI2_GPU, nodes=8, api="buffer", buffer=buf
                )
                for buf in GPU_BUFFERS
            ],
            ["OMB"] + list(GPU_BUFFERS),
        )

    # Figs 28-31: MPI library generality.
    fig(
        "fig28_29_mpilib_latency",
        [
            simulate_pt2pt(FRONTERA, "inter", api="buffer", mpilib=MVAPICH2),
            simulate_pt2pt(FRONTERA, "inter", api="buffer",
                           mpilib=INTEL_MPI),
        ],
        ["MVAPICH2", "IntelMPI"],
    )
    fig(
        "fig30_31_mpilib_bandwidth",
        [
            simulate_pt2pt(FRONTERA, "inter", api="buffer",
                           metric="bandwidth", mpilib=MVAPICH2),
            simulate_pt2pt(FRONTERA, "inter", api="buffer",
                           metric="bandwidth", mpilib=INTEL_MPI),
        ],
        ["MVAPICH2", "IntelMPI"],
    )

    # Figs 32-35: pickle vs direct buffers.
    fig(
        "fig32_33_pickle_latency",
        [
            simulate_pt2pt(FRONTERA, "inter", api="buffer"),
            simulate_pt2pt(FRONTERA, "inter", api="pickle"),
        ],
        ["direct", "pickle"],
    )
    fig(
        "fig34_35_pickle_bandwidth",
        [
            simulate_pt2pt(FRONTERA, "inter", api="buffer",
                           metric="bandwidth"),
            simulate_pt2pt(FRONTERA, "inter", api="pickle",
                           metric="bandwidth"),
        ],
        ["direct", "pickle"],
    )

    # Figs 36-38: distributed ML time curves.
    for name, num in (("knn", 36), ("kmeans_hpo", 37), ("matmul", 38)):
        fig(f"fig{num}_ml_{name}", [_ml_table(name)], [name])

    return written


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="results", type=Path)
    args = parser.parse_args()
    written = generate(args.outdir)
    for path in written:
        print(path)
    print(f"{len(written)} figure CSVs written to {args.outdir}/")


if __name__ == "__main__":
    main()
