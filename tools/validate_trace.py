#!/usr/bin/env python
"""Validate telemetry artifacts emitted by ``--metrics`` / ``--trace-out``.

Checks that a Chrome trace JSON (or ``.jsonl`` compact trace) is loadable
and structurally sound, and optionally that a merged ``metrics.json``
agrees with it.  Used by the CI telemetry smoke job and handy locally::

    python tools/validate_trace.py trace.json
    python tools/validate_trace.py trace.json --metrics metrics.json --nranks 4

Chrome-trace invariants enforced:

* top level is an object with a ``traceEvents`` list and ms display unit;
* every pid (= rank) carries a ``process_name`` metadata event;
* data events have non-negative ``ts``/``dur`` and known phases;
* instant events carry a scope field;
* per ``(pid, tid)`` lane, span **end** times are non-decreasing — spans
  are recorded at completion, so a regressing end time means clock or
  buffering breakage (a small tolerance absorbs float µs rounding).

Exit status 0 means every check passed; failures print one line each.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Float µs slack for end-time monotonicity (ns → µs conversion rounding).
END_TOLERANCE_US = 0.5

DATA_PHASES = {"X", "i"}


class ValidationError(Exception):
    pass


def _fail(msg: str) -> None:
    raise ValidationError(msg)


def load_trace(path: str) -> list[dict]:
    """Load trace events from Chrome JSON or compact JSONL."""
    with open(path, "r", encoding="utf-8") as fh:
        if path.endswith(".jsonl"):
            events = []
            for i, line in enumerate(fh):
                if not line.strip():
                    continue
                row = json.loads(line)
                if not (isinstance(row, list) and len(row) == 8):
                    _fail(f"line {i + 1}: JSONL row is not an 8-field list")
                rank, ph, name, cat, ts, dur, tid, args = row
                events.append({
                    "pid": rank, "ph": ph, "name": name, "cat": cat,
                    "ts": ts / 1000.0, "dur": dur / 1000.0, "tid": tid,
                    "args": args, "s": "t",
                })
            # JSONL carries no metadata events; synthesize them so the
            # structural checks below apply uniformly.
            for pid in {e["pid"] for e in events}:
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"rank {pid}"},
                })
            return events
        doc = json.load(fh)
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        _fail("top level must be an object with a traceEvents list")
    if doc.get("displayTimeUnit") != "ms":
        _fail("displayTimeUnit must be 'ms'")
    return doc["traceEvents"]


def validate_events(events: list[dict], nranks: int | None = None) -> dict:
    """Run all structural checks; returns summary stats for reporting."""
    if not events:
        _fail("trace contains no events")
    meta_pids = set()
    data = []
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                meta_pids.add(e["pid"])
            continue
        if ph not in DATA_PHASES:
            _fail(f"event {i}: unknown phase {ph!r}")
        for field in ("name", "cat", "ts", "tid", "pid"):
            if field not in e:
                _fail(f"event {i}: missing field {field!r}")
        if e["ts"] < 0:
            _fail(f"event {i}: negative ts {e['ts']}")
        if ph == "X" and e.get("dur", 0) < 0:
            _fail(f"event {i}: negative dur {e['dur']}")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            _fail(f"event {i}: instant without a valid scope")
        data.append(e)

    pids = {e["pid"] for e in data}
    if missing := pids - meta_pids:
        _fail(f"pids without process_name metadata: {sorted(missing)}")
    if nranks is not None:
        if not pids <= set(range(nranks)):
            _fail(f"pids {sorted(pids)} not within 0..{nranks - 1}")

    # Spans are appended at completion: end times per lane must only grow.
    ends: dict[tuple, float] = {}
    for i, e in enumerate(data):
        if e["ph"] != "X":
            continue
        lane = (e["pid"], e["tid"])
        end = e["ts"] + e["dur"]
        if end + END_TOLERANCE_US < ends.get(lane, 0.0):
            _fail(
                f"event {i}: span end {end:.3f}us regresses behind "
                f"{ends[lane]:.3f}us in lane pid={lane[0]} tid={lane[1]}"
            )
        ends[lane] = max(ends.get(lane, 0.0), end)

    return {
        "events": len(data),
        "ranks": sorted(pids),
        "spans": sum(1 for e in data if e["ph"] == "X"),
        "instants": sum(1 for e in data if e["ph"] == "i"),
    }


def validate_metrics(path: str, nranks: int | None = None) -> dict:
    """Check a merged metrics.json: schema, rank set, job == sum(ranks)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "ombpy-metrics/1":
        _fail(f"metrics schema {doc.get('schema')!r} != 'ombpy-metrics/1'")
    ranks = doc.get("ranks")
    if not isinstance(ranks, dict) or not ranks:
        _fail("metrics.json has no per-rank section")
    if nranks is not None and len(ranks) != nranks:
        _fail(f"metrics cover {len(ranks)} ranks, expected {nranks}")
    job = doc.get("job", {}).get("counters", {})
    for name in sorted(job):
        total = sum(
            r.get("counters", {}).get(name, 0) for r in ranks.values()
        )
        if job[name] != total:
            _fail(
                f"job counter {name} = {job[name]} but per-rank sum is "
                f"{total}"
            )
    return {"ranks": len(ranks), "job_counters": len(job)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace.json or trace.jsonl to check")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="also validate a merged metrics.json",
    )
    parser.add_argument(
        "--nranks", type=int, default=None,
        help="expected rank count (checks pid/rank coverage)",
    )
    args = parser.parse_args(argv)
    try:
        stats = validate_events(load_trace(args.trace), args.nranks)
        print(
            f"{args.trace}: OK — {stats['events']} events "
            f"({stats['spans']} spans, {stats['instants']} instants) "
            f"across ranks {stats['ranks']}"
        )
        if args.metrics:
            mstats = validate_metrics(args.metrics, args.nranks)
            print(
                f"{args.metrics}: OK — {mstats['ranks']} ranks, "
                f"{mstats['job_counters']} job counters"
            )
    except ValidationError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
