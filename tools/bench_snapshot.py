#!/usr/bin/env python
"""Performance snapshot: fixed benchmark set + telemetry overhead.

Runs a pinned latency / bandwidth / allreduce set on the threads
transport and writes ``BENCH_telemetry.json`` so later PRs have a
baseline to regress against.  Each benchmark is run three ways —
telemetry off, metrics only, metrics + tracing — and the file records
per-size results plus the telemetry-on vs telemetry-off overhead (mean
per-size delta, in the unit of the benchmark's metric).

Run from the repo root (no launcher needed)::

    python tools/bench_snapshot.py
    python tools/bench_snapshot.py --out /tmp/bench.json --repeats 5

Numbers from a shared CI box are noisy; the snapshot stores the best
(minimum) of ``--repeats`` runs per configuration, which is the stable
statistic for "did someone make the hot path slower".
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.core.options import Options                       # noqa: E402
from repro.core.runner import run_benchmark                  # noqa: E402
from repro.mpi.world import run_on_threads                   # noqa: E402
from repro.telemetry import ENV_METRICS, ENV_TRACE           # noqa: E402

#: The pinned set: one p2p latency, one windowed bandwidth, one
#: collective — small sizes and iteration counts so the whole snapshot
#: stays under a minute while still exercising every hot path.
CASES = [
    ("osu_latency", 2, Options(min_size=1, max_size=1024, iterations=60,
                               warmup=10, buffer="bytearray")),
    ("osu_bw", 2, Options(min_size=1024, max_size=16384, iterations=12,
                          warmup=2, buffer="bytearray", window_size=16)),
    ("osu_allreduce", 4, Options(min_size=4, max_size=1024, iterations=30,
                                 warmup=5, buffer="bytearray")),
]

MODES = {
    "off": {},
    "metrics": {ENV_METRICS: "1"},
    "trace": {ENV_METRICS: "1", ENV_TRACE: "1"},
}


def _run_case(name: str, nranks: int, options: Options) -> dict[int, float]:
    """One benchmark sweep; returns {size: value} from rank 0's table."""
    def fn(comm):
        return run_benchmark(name, comm, options)

    table = run_on_threads(nranks, fn, timeout=120.0)[0]
    return {row.size: row.value for row in table}


def _best_of(repeats: int, name: str, nranks: int,
             options: Options) -> dict[int, float]:
    best: dict[int, float] = {}
    for _ in range(repeats):
        for size, value in _run_case(name, nranks, options).items():
            if size not in best or value < best[size]:
                best[size] = value
    return best


#: Whole-program analysis over src/ must stay under this (seconds); the
#: perf-lint CI job runs it on every push, so analyzer cost is itself a
#: perf budget on the BENCH trajectory.
ANALYZER_BUDGET_S = 30.0


def analyzer_snapshot() -> dict:
    """Time one whole-program pass of every family over ``src/`` —
    perf + commgraph + the rank-symbolic protocol verifier + scale."""
    from repro.analysis.interproc import load_program
    from repro.analysis.commgraph import run_commgraph_rules
    from repro.analysis.perf import run_perf_rules
    from repro.analysis.protocol import run_protocol_rules
    from repro.analysis.scale import run_scale_rules

    target = os.path.join(REPO, "src")
    start = time.perf_counter()
    program = load_program([target])
    load_s = time.perf_counter() - start
    passes = {}
    findings = []
    for name, run in (
        ("perf", run_perf_rules),
        ("commgraph", run_commgraph_rules),
        ("protocol", run_protocol_rules),
        ("scale", run_scale_rules),
    ):
        t0 = time.perf_counter()
        findings.extend(run(program))
        passes[name] = round(time.perf_counter() - t0, 3)
    total_s = time.perf_counter() - start
    print(
        f"analyzer: {total_s:.2f}s over src/ "
        f"({len(program.functions)} functions, {len(findings)} findings, "
        f"budget {ANALYZER_BUDGET_S:.0f}s; "
        + ", ".join(f"{k} {v:.2f}s" for k, v in passes.items()) + ")"
    )
    return {
        "target": "src/",
        "functions": len(program.functions),
        "findings": len(findings),
        "load_seconds": round(load_s, 3),
        "pass_seconds": passes,
        "total_seconds": round(total_s, 3),
        "budget_seconds": ANALYZER_BUDGET_S,
        "within_budget": total_s < ANALYZER_BUDGET_S,
    }


def snapshot(repeats: int) -> dict:
    results = {}
    for name, nranks, options in CASES:
        per_mode = {}
        for mode, env in MODES.items():
            for key, value in env.items():
                os.environ[key] = value
            try:
                per_mode[mode] = _best_of(repeats, name, nranks, options)
            finally:
                for key in env:
                    os.environ.pop(key, None)
        off, metrics, trace = (per_mode[m] for m in ("off", "metrics",
                                                     "trace"))
        sizes = sorted(off)
        results[name] = {
            "ranks": nranks,
            "sizes": sizes,
            "off": [off[s] for s in sizes],
            "metrics": [metrics[s] for s in sizes],
            "trace": [trace[s] for s in sizes],
            "overhead_metrics": sum(
                metrics[s] - off[s] for s in sizes) / len(sizes),
            "overhead_trace": sum(
                trace[s] - off[s] for s in sizes) / len(sizes),
        }
        print(
            f"{name}: metrics overhead "
            f"{results[name]['overhead_metrics']:+.3f}, trace "
            f"{results[name]['overhead_trace']:+.3f} (mean per-size delta)"
        )
    return {
        "schema": "ombpy-bench-snapshot/1",
        "transport": "threads",
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "analyzer": analyzer_snapshot(),
    }


def service_snapshot(repeats: int) -> dict:
    """Warm-submit vs cold-launch latency for one small benchmark job.

    Cold = a fresh ``ombpy-run``-equivalent launch (process spawn +
    rendezvous + import) per job.  Warm = the same job submitted to an
    already-running ``ombpy-serve`` rank pool over its UDS socket,
    including all client/protocol overhead.  The service exists to
    amortize launch cost, so the warm path must win by a wide margin —
    the snapshot records both and their ratio.
    """
    import subprocess
    import tempfile

    from repro.service import BenchmarkService, JobSpec, ServiceClient

    bench_args = ["osu_latency", "-m", "1:64", "-i", "5", "-x", "1"]
    job = JobSpec(
        benchmark="osu_latency", ranks=2,
        options={"min_size": 1, "max_size": 64, "iterations": 5,
                 "warmup": 1},
    )
    env = os.environ.copy()
    env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep \
        + env.get("PYTHONPATH", "")

    cold_s = []
    for _ in range(repeats):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.mpi.launcher", "-n", "2",
             "--timeout", "120",
             sys.executable, "-m", "repro.core.cli", *bench_args],
            env=env, capture_output=True, text=True, timeout=180,
        )
        elapsed = time.perf_counter() - start
        if proc.returncode != 0:
            raise RuntimeError(
                f"cold launch failed (rc={proc.returncode}): "
                f"{proc.stderr[-300:]}"
            )
        cold_s.append(elapsed)

    with tempfile.TemporaryDirectory(prefix="bench-service-") as workdir:
        svc = BenchmarkService(
            pool_size=2, socket_path=os.path.join(workdir, "svc.sock"),
        )
        svc.start()
        try:
            with ServiceClient(socket_path=svc.address, timeout=60.0) as c:
                record = c.run(job, timeout=60)    # first job warms caches
                assert record["state"] == "DONE", record
                warm_s = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    record = c.run(job, timeout=60)
                    warm_s.append(time.perf_counter() - start)
                    assert record["state"] == "DONE", record
        finally:
            svc.stop()

    cold, warm = min(cold_s), min(warm_s)
    speedup = cold / warm if warm > 0 else float("inf")
    print(f"service: cold launch {cold:.3f}s vs warm submit {warm:.3f}s "
          f"({speedup:.1f}x)")
    return {
        "schema": "ombpy-bench-service/1",
        "job": "osu_latency -m 1:64 -i 5 -x 1 (2 ranks)",
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cold_launch_seconds": round(cold, 4),
        "warm_submit_seconds": round(warm, 4),
        "cold_launch_all": [round(v, 4) for v in cold_s],
        "warm_submit_all": [round(v, 4) for v in warm_s],
        "speedup": round(speedup, 2),
    }


#: The campaign-snapshot sweep: one benchmark, four size-range cells on
#: the threads transport — small enough to run in seconds, enough cells
#: that per-cell dispatch overhead dominates the measurement.
_CAMPAIGN_DOC = {
    "name": "bench",
    "sweep": [
        {
            "benchmarks": ["osu_latency"],
            "transports": ["threads"],
            "ranks": [2],
            "sizes": ["1:16", "32:64", "128:256", "512:1024"],
            "iterations": 5,
            "warmup": 1,
        }
    ],
}


def campaign_snapshot(repeats: int) -> dict:
    """Campaign throughput: cells/second warm vs cold, plus the cost of
    a no-op resume (journal replay + manifest rewrite on a finished
    campaign) — the fixed tax every crash recovery pays."""
    import tempfile

    from repro.campaign import cli as campaign_cli
    from repro.service import BenchmarkService

    ncells = 4

    def timed(args: list[str]) -> float:
        start = time.perf_counter()
        rc = campaign_cli.main(args)
        elapsed = time.perf_counter() - start
        if rc != 0:
            raise RuntimeError(f"ombpy-campaign {args[0]} failed rc={rc}")
        return elapsed

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as workdir:
        spec_path = os.path.join(workdir, "spec.json")
        with open(spec_path, "w", encoding="utf-8") as fh:
            json.dump(_CAMPAIGN_DOC, fh)

        cold_s, resume_s = [], []
        for i in range(repeats):
            out = os.path.join(workdir, f"cold-{i}")
            cold_s.append(timed(
                ["run", spec_path, "--out", out, "--backend", "cold",
                 "--concurrency", "1", "--cell-timeout", "120"]
            ))
            resume_s.append(timed(["resume", out, "--backend", "cold"]))

        warm_s = []
        svc = BenchmarkService(
            pool_size=2, socket_path=os.path.join(workdir, "svc.sock"),
        )
        svc.start()
        try:
            for i in range(repeats):
                out = os.path.join(workdir, f"warm-{i}")
                warm_s.append(timed(
                    ["run", spec_path, "--out", out, "--backend", "warm",
                     "--service-socket", svc.address,
                     "--concurrency", "1", "--cell-timeout", "120"]
                ))
        finally:
            svc.stop()

    cold, warm, resume = min(cold_s), min(warm_s), min(resume_s)
    speedup = cold / warm if warm > 0 else float("inf")
    print(f"campaign: {ncells} cells cold {cold:.3f}s "
          f"({ncells / cold:.2f} cells/s) vs warm {warm:.3f}s "
          f"({ncells / warm:.2f} cells/s, {speedup:.1f}x); "
          f"no-op resume {resume:.3f}s")
    return {
        "schema": "ombpy-bench-campaign/1",
        "sweep": "osu_latency threads n2, 4 size-range cells (-i 5 -x 1)",
        "cells": ncells,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cold_campaign_seconds": round(cold, 4),
        "warm_campaign_seconds": round(warm, 4),
        "cold_cells_per_second": round(ncells / cold, 3),
        "warm_cells_per_second": round(ncells / warm, 3),
        "warm_speedup": round(speedup, 2),
        "noop_resume_seconds": round(resume, 4),
        "cold_all": [round(v, 4) for v in cold_s],
        "warm_all": [round(v, 4) for v in warm_s],
        "resume_all": [round(v, 4) for v in resume_s],
    }


#: The scaling-snapshot grid: the hierarchical set's flagship collective
#: on real process ranks, flat vs grouped, small and medium payloads.
_SCALING_RANKS = (2, 8, 32)
_SCALING_SIZES = (8, 1024)


def scaling_snapshot(repeats: int) -> dict:
    """Collective time vs N on the process (uds) transport, flat vs
    hierarchical, with per-rank connection counts.

    The point of the fabric: at 32 ranks a flat mesh holds ~N
    connections per rank while the grouped run holds O(group_size +
    n_groups) — and the two-level allreduce is *faster*, not just
    cheaper.  Both claims are recorded here and asserted by the
    regression tests.
    """
    from repro.core.scaling import measure_process, predict_ratio

    op = "allreduce"
    points = []
    for ranks in _SCALING_RANKS:
        for size in _SCALING_SIZES:
            flat_us, hier_us = float("inf"), float("inf")
            flat_conns = hier_conns = None
            for _ in range(repeats):
                flat = measure_process(
                    op, ranks, size, transport="uds", groups=None,
                    iterations=20, warmup=3,
                )
                if flat["latency_us"] < flat_us:
                    flat_us = flat["latency_us"]
                    flat_conns = flat["max_connections"]
                if ranks <= 2:
                    continue
                hier = measure_process(
                    op, ranks, size, transport="uds", groups="auto",
                    iterations=20, warmup=3,
                )
                if hier["latency_us"] < hier_us:
                    hier_us = hier["latency_us"]
                    hier_conns = hier["max_connections"]
            point = {
                "ranks": ranks,
                "size": size,
                "flat_us": round(flat_us, 3),
                "hier_us": None if ranks <= 2 else round(hier_us, 3),
                "speedup": None if ranks <= 2
                else round(flat_us / hier_us, 3),
                "predicted_ratio": None if ranks <= 2
                else round(predict_ratio(op, ranks, size, "auto"), 4),
                "flat_max_connections": flat_conns,
                "hier_max_connections": hier_conns,
            }
            points.append(point)
            speedup = f"{point['speedup']}x" if point["speedup"] else "-"
            print(
                f"scaling: {op} n={ranks} size={size}: flat "
                f"{point['flat_us']:.1f}us ({flat_conns} conns) vs hier "
                f"{point['hier_us'] or '-'}us ({hier_conns or '-'} conns, "
                f"{speedup})"
            )
    return {
        "schema": "ombpy-bench-scaling/1",
        "collective": op,
        "transport": "uds",
        "groups": "auto",
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None,
        help="where to write the snapshot (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per configuration; best-of is recorded (default 3)",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="snapshot warm ombpy-serve submit latency vs cold launch "
        "into BENCH_service.json instead of the telemetry set",
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="snapshot campaign throughput (cells/sec warm vs cold, "
        "no-op resume overhead) into BENCH_campaign.json",
    )
    parser.add_argument(
        "--scaling", action="store_true",
        help="snapshot collective-vs-N scaling (flat vs hierarchical "
        "on the uds process transport, with connection counts) into "
        "BENCH_scaling.json",
    )
    args = parser.parse_args(argv)
    if args.scaling:
        if args.out is None:
            args.out = os.path.join(REPO, "BENCH_scaling.json")
        doc = scaling_snapshot(args.repeats)
    elif args.service:
        if args.out is None:
            args.out = os.path.join(REPO, "BENCH_service.json")
        doc = service_snapshot(args.repeats)
    elif args.campaign:
        if args.out is None:
            args.out = os.path.join(REPO, "BENCH_campaign.json")
        doc = campaign_snapshot(args.repeats)
    else:
        if args.out is None:
            args.out = os.path.join(REPO, "BENCH_telemetry.json")
        doc = snapshot(args.repeats)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
