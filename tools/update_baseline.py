#!/usr/bin/env python
"""Regenerate the perf-lint baseline (``tools/perf_lint_baseline.json``).

The CI ``perf-lint`` job runs ``ombpy-lint --perf --commgraph --protocol
--scale`` with
``--baseline tools/perf_lint_baseline.json``: findings whose fingerprint
(path::rule::message) is in the baseline are grandfathered; anything new
fails the build.  After deliberately fixing (or accepting) hot-path
sites, refresh the baseline with::

    python tools/update_baseline.py

Run from anywhere; paths are resolved against the repo root so the
fingerprints stay stable.  The tool prints the delta vs the previous
baseline so a shrinking copy-site inventory is visible in review.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.analysis.lint import (                            # noqa: E402
    BASELINE_SCHEMA,
    fingerprint,
    lint_paths,
)

#: The self-host target set (must match the CI perf-lint job).
LINT_PATHS = ["src", "benchmarks", "examples"]
DEFAULT_OUT = os.path.join("tools", "perf_lint_baseline.json")


def build_baseline(paths: list[str]) -> dict[str, int]:
    findings = lint_paths(paths, perf=True, commgraph=True,
                          protocol=True, scale=True)
    counts: dict[str, int] = {}
    for f in findings:
        fp = fingerprint(f)
        counts[fp] = counts.get(fp, 0) + 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"baseline file to write (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    os.chdir(REPO)  # repo-root-relative paths keep fingerprints stable
    counts = build_baseline(LINT_PATHS)

    previous: dict[str, int] = {}
    if os.path.exists(args.out):
        with open(args.out, encoding="utf-8") as fh:
            previous = json.load(fh).get("fingerprints", {})

    payload = {
        "schema": BASELINE_SCHEMA,
        "paths": LINT_PATHS,
        "count": sum(counts.values()),
        "fingerprints": dict(sorted(counts.items())),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    added = sorted(set(counts) - set(previous))
    removed = sorted(set(previous) - set(counts))
    print(
        f"wrote {args.out}: {sum(counts.values())} grandfathered "
        f"finding(s) ({len(added)} new, {len(removed)} burned down)"
    )
    for fp in added:
        print(f"  + {fp}")
    for fp in removed:
        print(f"  - {fp}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
