#!/usr/bin/env python
"""CI chaos smoke: run real benchmarks under a fixed-seed fault plan.

Launches ``osu_latency`` and ``osu_allreduce`` on the process transport
with the deterministic fault injector armed (message delays and drops
plus one scheduled rank crash) and asserts the resilience guarantees
end to end:

* the job **fail-fasts** — ``ombpy-run`` exits promptly with the crashed
  rank's exit code instead of hanging until the global timeout;
* **no orphans** — no rank process outlives the launcher;
* **no leaks** — no UDS socket dirs or SHM segments are left behind;
* **replayable** — re-running with the same plan produces byte-identical
  injected-event logs.

Exit status 0 means every check passed.  Run from the repo root::

    python tools/chaos_smoke.py
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
CRASH_EXIT = 41
LAUNCH_TIMEOUT = 120.0

#: Fixed chaos plan: drops + delays plus a scheduled hard crash of
#: rank 1 early in the sweep.  Everything the injector does is a pure
#: function of this plan, so the run is as reproducible as a unit test
#: — seed 17 is chosen so the first drop on either rank (op 116 / 61)
#: lands *after* the crash at op 25: the crash fail-fast is what ends
#: the job, never a drop-induced application hang.
PLAN = {
    "seed": 17,
    "drop": 0.02,
    "delay": 0.05,
    "delay_hold": 3,
    "crash": {"rank": 1, "at_op": 25, "exit_code": CRASH_EXIT,
              "mode": "exit"},
}

CASES = [
    ("osu_latency", ["-m", "1:1024", "-i", "10", "-x", "2"]),
    ("osu_allreduce", ["-m", "4:1024", "-i", "10", "-x", "2"]),
]

_failures: list[str] = []


def check(ok: bool, message: str) -> None:
    tag = "ok" if ok else "FAIL"
    print(f"  [{tag}] {message}")
    if not ok:
        _failures.append(message)


def snapshot_leaks() -> set[str]:
    return set(glob.glob(f"{tempfile.gettempdir()}/ombpy-uds-*")) | set(
        glob.glob("/dev/shm/*ombpy-shm-*")
    )


def run_case(bench: str, bench_args: list[str], workdir: str,
             attempt: str) -> dict[int, str]:
    plan_path = os.path.join(workdir, f"{bench}-plan.json")
    with open(plan_path, "w", encoding="utf-8") as fh:
        json.dump(PLAN, fh)
    log_path = os.path.join(workdir, f"{bench}-events-{attempt}")

    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.mpi.launcher", "-n", "2",
        "--timeout", str(LAUNCH_TIMEOUT),
        "--faults", plan_path, "--fault-log", log_path,
        sys.executable, "-m", "repro.core.cli", bench, *bench_args,
    ]

    leaks_before = snapshot_leaks()
    start = time.monotonic()
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True,
        timeout=LAUNCH_TIMEOUT + 60,
    )
    elapsed = time.monotonic() - start

    print(f"{bench} (attempt {attempt}): rc={proc.returncode} "
          f"elapsed={elapsed:.1f}s")
    check(
        proc.returncode == CRASH_EXIT,
        f"{bench}: fail-fast exit code {CRASH_EXIT} "
        f"(got {proc.returncode}; stderr: {proc.stderr.strip()[-300:]})",
    )
    check(
        elapsed < LAUNCH_TIMEOUT,
        f"{bench}: finished in {elapsed:.1f}s, not the global timeout",
    )
    check(
        "rank 1 failed first" in proc.stderr,
        f"{bench}: launcher names the first-failing rank",
    )

    orphans = subprocess.run(
        ["pgrep", "-f", "repro.core.cli"], capture_output=True, text=True,
    ).stdout.strip()
    check(not orphans, f"{bench}: no orphaned rank processes "
                       f"(found pids: {orphans or 'none'})")
    leaked = snapshot_leaks() - leaks_before
    check(not leaked, f"{bench}: no leaked UDS/SHM artifacts "
                      f"({sorted(leaked) or 'none'})")

    logs = {}
    for rank in (0, 1):
        path = f"{log_path}.rank{rank}"
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                logs[rank] = fh.read()
    check(
        "crash" in logs.get(1, ""),
        f"{bench}: rank 1's event log records the injected crash",
    )
    return logs


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        for bench, bench_args in CASES:
            run_case(bench, bench_args, workdir, attempt="a")

        # Determinism: replay the first case and diff the event logs.
        bench, bench_args = CASES[0]
        first = run_case(bench, bench_args, workdir, attempt="a2")
        second = run_case(bench, bench_args, workdir, attempt="b")
        check(
            first == second and first,
            f"{bench}: same plan reproduces identical injected-event logs",
        )

    if _failures:
        print(f"\nchaos smoke FAILED ({len(_failures)} check(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nchaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
