#!/usr/bin/env python
"""CI chaos smoke: run real benchmarks under a fixed-seed fault plan.

Launches ``osu_latency`` and ``osu_allreduce`` on the process transport
with the deterministic fault injector armed (message delays and drops
plus one scheduled rank crash) and asserts the resilience guarantees
end to end:

* the job **fail-fasts** — ``ombpy-run`` exits promptly with the crashed
  rank's exit code instead of hanging until the global timeout;
* **no orphans** — no rank process outlives the launcher;
* **no leaks** — no UDS socket dirs or SHM segments are left behind;
* **replayable** — re-running with the same plan produces byte-identical
  injected-event logs.

Exit status 0 means every check passed.  Run from the repo root::

    python tools/chaos_smoke.py

``--recover`` runs the *fault-tolerance* smoke instead: the same
benchmarks under a harsher lossy plan (drops + duplicates + truncations)
with the reliable-delivery layer armed must complete **correctly**
(exit 0, results table printed, retransmit counters reported) on the tcp
and uds fabrics; and with a scheduled rank crash plus ``--recover``, the
survivors must shrink the communicator and finish the job with exit 0::

    python tools/chaos_smoke.py --recover

``--service`` runs the *benchmark-service* smoke: one ``ombpy-serve``
warm rank pool (with a scheduled mid-job rank crash in its fault plan)
must serve ``osu_latency``, survive the crash during a 3-rank
``osu_allreduce`` (retrying it to completion), report DEGRADED health,
complete three more jobs on the shrunken pool, and drain cleanly::

    python tools/chaos_smoke.py --service

``--campaign`` runs the *campaign-driver* crash smoke: a small
2-transport sweep is started with ``ombpy-campaign run``, the driver is
SIGKILLed the moment its journal records the first completed cell, and
``ombpy-campaign resume`` must finish the remaining cells — exit 0, a
``complete`` manifest identical to an uninterrupted control run, and no
cell executed twice (exactly one ``CELL_DONE`` per cell across the
whole journal).  Artifacts land in ``results/campaign_smoke/`` for CI
upload::

    python tools/chaos_smoke.py --campaign
"""

from __future__ import annotations

import glob
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
CRASH_EXIT = 41
LAUNCH_TIMEOUT = 120.0

#: Fixed chaos plan: drops + delays plus a scheduled hard crash of
#: rank 1 early in the sweep.  Everything the injector does is a pure
#: function of this plan, so the run is as reproducible as a unit test
#: — seed 17 is chosen so the first drop on either rank (op 116 / 61)
#: lands *after* the crash at op 25: the crash fail-fast is what ends
#: the job, never a drop-induced application hang.
PLAN = {
    "seed": 17,
    "drop": 0.02,
    "delay": 0.05,
    "delay_hold": 3,
    "crash": {"rank": 1, "at_op": 25, "exit_code": CRASH_EXIT,
              "mode": "exit"},
}

CASES = [
    ("osu_latency", ["-m", "1:1024", "-i", "10", "-x", "2"]),
    ("osu_allreduce", ["-m", "4:1024", "-i", "10", "-x", "2"]),
]

#: Lossy (but crash-free) plan for the reliable-delivery smoke: every
#: message may be dropped, duplicated, truncated, or delayed, and the
#: ack/retransmit layer must absorb all of it.  The short backstop keeps
#: held (delayed) frames from stretching the run.
LOSSY_PLAN = {
    "seed": 11,
    "drop": 0.05,
    "duplicate": 0.05,
    "truncate": 0.03,
    "delay": 0.05,
    "backstop_ms": 200.0,
}

#: Recovery plan: the lossy mix plus a hard crash of rank 1 early in the
#: run.  With ``--recover`` the two survivors must shrink COMM_WORLD and
#: finish the benchmark anyway.
RECOVER_PLAN = {
    "seed": 11,
    "drop": 0.02,
    "duplicate": 0.02,
    "crash": {"rank": 1, "at_op": 25, "exit_code": CRASH_EXIT,
              "mode": "exit"},
}

_failures: list[str] = []


def check(ok: bool, message: str) -> None:
    tag = "ok" if ok else "FAIL"
    print(f"  [{tag}] {message}")
    if not ok:
        _failures.append(message)


def snapshot_leaks() -> set[str]:
    return set(glob.glob(f"{tempfile.gettempdir()}/ombpy-uds-*")) | set(
        glob.glob("/dev/shm/*ombpy-shm-*")
    )


def run_case(bench: str, bench_args: list[str], workdir: str,
             attempt: str) -> dict[int, str]:
    plan_path = os.path.join(workdir, f"{bench}-plan.json")
    with open(plan_path, "w", encoding="utf-8") as fh:
        json.dump(PLAN, fh)
    log_path = os.path.join(workdir, f"{bench}-events-{attempt}")

    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.mpi.launcher", "-n", "2",
        "--timeout", str(LAUNCH_TIMEOUT),
        "--faults", plan_path, "--fault-log", log_path,
        sys.executable, "-m", "repro.core.cli", bench, *bench_args,
    ]

    leaks_before = snapshot_leaks()
    start = time.monotonic()
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True,
        timeout=LAUNCH_TIMEOUT + 60,
    )
    elapsed = time.monotonic() - start

    print(f"{bench} (attempt {attempt}): rc={proc.returncode} "
          f"elapsed={elapsed:.1f}s")
    check(
        proc.returncode == CRASH_EXIT,
        f"{bench}: fail-fast exit code {CRASH_EXIT} "
        f"(got {proc.returncode}; stderr: {proc.stderr.strip()[-300:]})",
    )
    check(
        elapsed < LAUNCH_TIMEOUT,
        f"{bench}: finished in {elapsed:.1f}s, not the global timeout",
    )
    check(
        "rank 1 failed first" in proc.stderr,
        f"{bench}: launcher names the first-failing rank",
    )

    orphans = subprocess.run(
        ["pgrep", "-f", "repro.core.cli"], capture_output=True, text=True,
    ).stdout.strip()
    check(not orphans, f"{bench}: no orphaned rank processes "
                       f"(found pids: {orphans or 'none'})")
    leaked = snapshot_leaks() - leaks_before
    check(not leaked, f"{bench}: no leaked UDS/SHM artifacts "
                      f"({sorted(leaked) or 'none'})")

    logs = {}
    for rank in (0, 1):
        path = f"{log_path}.rank{rank}"
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                logs[rank] = fh.read()
    check(
        "crash" in logs.get(1, ""),
        f"{bench}: rank 1's event log records the injected crash",
    )
    return logs


def _launch(plan: dict, workdir: str, tag: str, n: int,
            launcher_args: list[str], bench: str, bench_args: list[str],
            ) -> tuple[subprocess.CompletedProcess, float, set[str]]:
    """Run one launcher job under ``plan``; return (proc, elapsed, leaks)."""
    plan_path = os.path.join(workdir, f"{tag}-plan.json")
    with open(plan_path, "w", encoding="utf-8") as fh:
        json.dump(plan, fh)
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.mpi.launcher", "-n", str(n),
        "--timeout", str(LAUNCH_TIMEOUT), "--faults", plan_path,
        *launcher_args,
        sys.executable, "-m", "repro.core.cli", bench, *bench_args,
    ]
    leaks_before = snapshot_leaks()
    start = time.monotonic()
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True,
        timeout=LAUNCH_TIMEOUT + 60,
    )
    elapsed = time.monotonic() - start
    leaked = snapshot_leaks() - leaks_before
    return proc, elapsed, leaked


def run_reliable_case(bench: str, bench_args: list[str], transport: str,
                      workdir: str) -> None:
    """Lossy plan + ``--reliable``: the benchmark must finish correctly."""
    proc, elapsed, leaked = _launch(
        LOSSY_PLAN, workdir, f"rel-{bench}-{transport}", 2,
        ["--transport", transport, "--reliable"], bench, bench_args,
    )
    print(f"{bench} [{transport}, reliable]: rc={proc.returncode} "
          f"elapsed={elapsed:.1f}s")
    check(
        proc.returncode == 0,
        f"{bench}/{transport}: clean exit under drop+dup+truncate faults "
        f"(got rc={proc.returncode}; stderr: {proc.stderr.strip()[-300:]})",
    )
    check(
        "# OMB-Py" in proc.stdout,
        f"{bench}/{transport}: results table printed",
    )
    check(
        "reliability" in proc.stderr and "retransmits=" in proc.stderr,
        f"{bench}/{transport}: retransmit/duplicate counters reported",
    )
    check(not leaked, f"{bench}/{transport}: no leaked UDS/SHM artifacts "
                      f"({sorted(leaked) or 'none'})")


def run_recover_case(workdir: str) -> None:
    """Crash plan + ``--recover``: survivors shrink and finish with rc 0."""
    bench, bench_args = "osu_allreduce", [
        "-m", "4:1024", "-i", "10", "-x", "2", "--recover",
    ]
    proc, elapsed, leaked = _launch(
        RECOVER_PLAN, workdir, "recover", 3,
        ["--reliable", "--recover"], bench, bench_args,
    )
    print(f"{bench} [recover]: rc={proc.returncode} elapsed={elapsed:.1f}s")
    check(
        proc.returncode == 0,
        f"recover: job succeeds after rank 1 crash "
        f"(got rc={proc.returncode}; stderr: {proc.stderr.strip()[-500:]})",
    )
    check(
        elapsed < LAUNCH_TIMEOUT,
        f"recover: finished in {elapsed:.1f}s, not the global timeout",
    )
    check(
        "# OMB-Py" in proc.stdout,
        "recover: survivors printed the results table",
    )
    check(
        "recovered" in proc.stderr,
        "recover: launcher reports the recovered completion",
    )
    orphans = subprocess.run(
        ["pgrep", "-f", "repro.core.cli"], capture_output=True, text=True,
    ).stdout.strip()
    check(not orphans, f"recover: no orphaned rank processes "
                       f"(found pids: {orphans or 'none'})")
    check(not leaked, f"recover: no leaked UDS/SHM artifacts "
                      f"({sorted(leaked) or 'none'})")


def main_recover() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-recover-") as workdir:
        for transport in ("tcp", "uds"):
            for bench, bench_args in CASES:
                run_reliable_case(bench, bench_args, transport, workdir)
        run_recover_case(workdir)

    if _failures:
        print(f"\nchaos recovery smoke FAILED ({len(_failures)} check(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nchaos recovery smoke passed")
    return 0


#: Service-smoke plan: rank 2 of the 4-rank pool raises an injected
#: crash on its 3rd data send — i.e. the first time a job pulls it in.
SERVICE_PLAN = {
    "seed": 11,
    "crash": {"rank": 2, "at_op": 3, "mode": "raise"},
}


def _submit(sock: str, *args: str) -> subprocess.CompletedProcess:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c",
         "import sys; from repro.service.cli import submit_main; "
         "sys.exit(submit_main())",
         *args, "--socket", sock],
        env=env, capture_output=True, text=True, timeout=120,
    )


def main_service() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-service-") as workdir:
        plan_path = os.path.join(workdir, "plan.json")
        with open(plan_path, "w", encoding="utf-8") as fh:
            json.dump(SERVICE_PLAN, fh)
        sock = os.path.join(workdir, "svc.sock")
        tele = os.path.join(workdir, "telemetry.json")
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        leaks_before = snapshot_leaks()
        serve = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.service.cli import serve_main; "
             "sys.exit(serve_main())",
             "--pool-size", "4", "--socket", sock,
             "--faults", plan_path, "--retry-max", "1",
             "--metrics-out", tele],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            ready = serve.stdout.readline()
            check("OMBPY-SERVE READY" in ready,
                  f"serve: READY line printed (got {ready.strip()!r})")

            status = _submit(sock, "status")
            check(status.returncode == 0 and "state=SERVING" in status.stdout,
                  f"serve: healthy at startup ({status.stdout.strip()!r})")

            latency = _submit(sock, "submit", "osu_latency", "--ranks", "2",
                              "-m", "1:1024", "-i", "10", "-x", "2",
                              "--wait", "--timeout", "60")
            check(latency.returncode == 0 and "DONE" in latency.stdout,
                  f"service: osu_latency completes warm "
                  f"(rc={latency.returncode}; "
                  f"{latency.stderr.strip()[-200:]})")

            # The chaos job: 3 ranks pulls in the doomed rank 2.
            chaos = _submit(sock, "submit", "osu_allreduce", "--ranks", "3",
                            "-m", "4:1024", "-i", "10", "-x", "2",
                            "--wait", "--timeout", "90")
            check(chaos.returncode == 0 and "DONE" in chaos.stdout,
                  f"service: osu_allreduce survives the injected rank "
                  f"crash via retry (rc={chaos.returncode}; "
                  f"{chaos.stdout.strip()[-200:]})")
            check("attempt 2" in chaos.stdout,
                  "service: the chaos job reports its retry attempt")

            status = _submit(sock, "status")
            check("state=DEGRADED" in status.stdout
                  and "pool=3/4" in status.stdout
                  and "failed=[2]" in status.stdout,
                  f"service: health reports DEGRADED with the dead rank "
                  f"({status.stdout.strip().splitlines()[:1]})")

            for i in range(3):
                job = _submit(sock, "submit", "osu_latency", "--ranks", "2",
                              "-m", "1:64", "-i", "5", "-x", "1",
                              "--wait", "--timeout", "60")
                check(job.returncode == 0 and "DONE" in job.stdout,
                      f"service: degraded-mode job {i + 1}/3 completes")

            drain = _submit(sock, "drain")
            check(drain.returncode == 0, "service: drain accepted")
            rc = serve.wait(timeout=60)
            check(rc == 0, f"serve: clean exit after drain (rc={rc})")
            check(os.path.exists(tele),
                  "service: merged telemetry written on shutdown")
            if os.path.exists(tele):
                with open(tele, encoding="utf-8") as fh:
                    doc = json.load(fh)
                counters = doc["service"]["counters"]
                check(counters.get("service.pool.rank_deaths") == 1
                      and counters.get("service.jobs.retries") == 1,
                      f"service: telemetry records the crash and retry "
                      f"({counters})")
            leaked = snapshot_leaks() - leaks_before
            check(not leaked, f"service: no leaked UDS/SHM artifacts "
                              f"({sorted(leaked) or 'none'})")
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.wait(timeout=10)

    if _failures:
        print(f"\nservice smoke FAILED ({len(_failures)} check(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nservice smoke passed")
    return 0


#: The campaign crash-smoke sweep: 2 benchmarks x 2 transports = 4
#: cells, small enough for CI, slow enough (tcp spawns processes) that
#: a SIGKILL after the first CELL_DONE always lands mid-flight.
CAMPAIGN_SPEC = {
    "name": "campaign-smoke",
    "sweep": [
        {
            "benchmarks": ["osu_latency", "osu_allreduce"],
            "transports": ["threads", "tcp"],
            "ranks": [2],
            "sizes": ["1:64"],
            "iterations": 5,
            "warmup": 1,
        }
    ],
}


def _campaign(*args: str, **popen_kw):
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.campaign.cli", *args]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, **popen_kw,
    )


def _journal_records(campaign_dir: str) -> list[dict]:
    path = os.path.join(campaign_dir, "journal.jsonl")
    records = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                try:
                    records.append(json.loads(line))
                except ValueError:
                    pass    # torn tail mid-crash: exactly what resume handles
    except FileNotFoundError:
        pass
    return records


def main_campaign() -> int:
    out_root = os.path.join(REPO, "results", "campaign_smoke")
    shutil.rmtree(out_root, ignore_errors=True)
    os.makedirs(out_root)
    spec_path = os.path.join(out_root, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as fh:
        json.dump(CAMPAIGN_SPEC, fh, indent=2)

    knobs = ["--backend", "cold", "--concurrency", "1",
             "--cell-timeout", "120"]

    # Control: the same sweep, uninterrupted.
    control_dir = os.path.join(out_root, "control")
    control = _campaign("run", spec_path, "--out", control_dir, *knobs)
    out, _ = control.communicate(timeout=600)
    check(control.returncode == 0,
          f"control run exits 0 (rc={control.returncode}; {out[-300:]})")
    with open(os.path.join(control_dir, "MANIFEST.json"),
              encoding="utf-8") as fh:
        control_manifest = json.load(fh)
    check(control_manifest["status"] == "complete"
          and len(control_manifest["completed"]) == 4,
          f"control manifest complete with 4 cells "
          f"({control_manifest['status']}, "
          f"{len(control_manifest['completed'])} completed)")

    # Victim: SIGKILL the driver the moment the first cell completes.
    victim_dir = os.path.join(out_root, "victim")
    victim = _campaign("run", spec_path, "--out", victim_dir, *knobs)
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            break
        done = [r for r in _journal_records(victim_dir)
                if r.get("type") == "CELL_DONE"]
        if done:
            break
        time.sleep(0.02)
    check(victim.poll() is None,
          "driver still mid-campaign at kill time (first CELL_DONE "
          "journaled, more cells pending)")
    os.kill(victim.pid, signal.SIGKILL)
    victim.communicate()
    check(victim.returncode == -signal.SIGKILL,
          f"driver died of SIGKILL (rc={victim.returncode})")

    done_before = {r["cell"] for r in _journal_records(victim_dir)
                   if r.get("type") == "CELL_DONE"}
    check(0 < len(done_before) < 4,
          f"kill landed mid-campaign ({len(done_before)}/4 cells done)")

    resume = _campaign("resume", victim_dir, *knobs)
    out, _ = resume.communicate(timeout=600)
    check(resume.returncode == 0,
          f"resume exits 0 (rc={resume.returncode}; {out[-300:]})")

    with open(os.path.join(victim_dir, "MANIFEST.json"),
              encoding="utf-8") as fh:
        manifest = json.load(fh)
    check(manifest["status"] == "complete" and not manifest["missed"],
          f"resumed manifest is complete with nothing missed "
          f"({manifest['status']}, missed={manifest['missed']})")
    check(manifest["completed"] == control_manifest["completed"],
          "resumed run completed the exact cell set of the "
          "uninterrupted control run")

    records = _journal_records(victim_dir)
    done_counts: dict[str, int] = {}
    for record in records:
        if record.get("type") == "CELL_DONE":
            cell = record["cell"]
            done_counts[cell] = done_counts.get(cell, 0) + 1
    dupes = {c: n for c, n in done_counts.items() if n != 1}
    check(not dupes and len(done_counts) == 4,
          f"exactly one CELL_DONE per cell across crash + resume "
          f"(counts: {done_counts})")
    resumed_at = next(
        (i for i, r in enumerate(records)
         if r.get("type") == "CAMPAIGN_RESUMED"), None,
    )
    check(resumed_at is not None, "journal records the resume")
    re_executed = {
        r["cell"] for r in records[resumed_at or 0:]
        if r.get("type") == "CELL_STARTED" and r["cell"] in done_before
    }
    check(not re_executed,
          f"no already-done cell was re-executed after resume "
          f"({sorted(re_executed) or 'none'})")

    results_path = os.path.join(victim_dir, "results.jsonl")
    cells_with_data = set()
    with open(results_path, encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("rows"):
                cells_with_data.add(record["cell"])
    check(cells_with_data == set(manifest["completed"]),
          "every completed cell has durable rows in the results store")

    if _failures:
        print(f"\ncampaign smoke FAILED ({len(_failures)} check(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\ncampaign smoke passed")
    return 0


def main() -> int:
    if "--recover" in sys.argv[1:]:
        return main_recover()
    if "--service" in sys.argv[1:]:
        return main_service()
    if "--campaign" in sys.argv[1:]:
        return main_campaign()
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        for bench, bench_args in CASES:
            run_case(bench, bench_args, workdir, attempt="a")

        # Determinism: replay the first case and diff the event logs.
        bench, bench_args = CASES[0]
        first = run_case(bench, bench_args, workdir, attempt="a2")
        second = run_case(bench, bench_args, workdir, attempt="b")
        check(
            first == second and first,
            f"{bench}: same plan reproduces identical injected-event logs",
        )

    if _failures:
        print(f"\nchaos smoke FAILED ({len(_failures)} check(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nchaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
