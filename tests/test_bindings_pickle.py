"""Pickle codec tests."""

import pickle

import numpy as np
import pytest

from repro.bindings.pickle_codec import PickleCodec


class TestRoundtrip:
    @pytest.mark.parametrize("obj", [
        42,
        3.14,
        "string",
        [1, 2, [3, 4]],
        {"k": (1, 2)},
        None,
        b"raw bytes",
    ])
    def test_builtin_objects(self, obj):
        codec = PickleCodec()
        assert codec.loads(codec.dumps(obj)) == obj

    def test_numpy_array(self):
        codec = PickleCodec()
        arr = np.arange(10, dtype="f4").reshape(2, 5)
        out = codec.loads(codec.dumps(arr))
        assert np.array_equal(out, arr)
        assert out.dtype == arr.dtype


class TestProtocol:
    def test_default_is_highest(self):
        assert PickleCodec().protocol == pickle.HIGHEST_PROTOCOL

    def test_explicit_protocol(self):
        codec = PickleCodec(protocol=2)
        assert codec.protocol == 2
        assert codec.loads(codec.dumps([1, 2])) == [1, 2]

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("OMBPY_PICKLE_PROTOCOL", "3")
        assert PickleCodec().protocol == 3

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            PickleCodec(protocol=99)


class TestAccounting:
    def test_byte_and_call_counters(self):
        codec = PickleCodec()
        data = codec.dumps([1, 2, 3])
        codec.loads(data)
        assert codec.dumps_calls == 1
        assert codec.loads_calls == 1
        assert codec.bytes_out == len(data)
        assert codec.bytes_in == len(data)

    def test_reset(self):
        codec = PickleCodec()
        codec.dumps("x")
        codec.reset_stats()
        assert codec.dumps_calls == 0 and codec.bytes_out == 0

    def test_overhead_positive_for_ndarray(self):
        codec = PickleCodec()
        arr = np.zeros(1000, dtype=np.uint8)
        ovh = codec.overhead_bytes(arr.nbytes, arr)
        assert ovh > 0  # pickle framing + dtype metadata
        assert ovh < 500  # but bounded
