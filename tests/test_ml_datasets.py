"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.ml.datasets import (
    DOTA2_FEATURES,
    DOTA2_SAMPLES,
    dota2_like,
    make_blobs,
    random_matrix,
    train_test_split,
)


class TestDota2Like:
    def test_paper_shape_defaults(self):
        assert DOTA2_SAMPLES == 102_944
        assert DOTA2_FEATURES == 116

    def test_scaled_shape(self):
        X, y = dota2_like(n_samples=500, seed=1)
        assert X.shape == (500, 116)
        assert y.shape == (500,)

    def test_labels_are_plus_minus_one(self):
        _X, y = dota2_like(n_samples=300, seed=2)
        assert set(np.unique(y)) <= {-1, 1}
        # Both outcomes occur.
        assert len(np.unique(y)) == 2

    def test_hero_picks_five_per_team(self):
        X, _y = dota2_like(n_samples=50, seed=3)
        picks = X[:, 3:]
        assert np.all((picks == 0) | (picks == 1) | (picks == -1))
        assert np.all(np.sum(picks == 1, axis=1) == 5)
        assert np.all(np.sum(picks == -1, axis=1) == 5)

    def test_learnable(self):
        """A k-NN on the synthetic set must beat chance, like real Dota2."""
        from repro.ml.knn import KNeighborsClassifier

        X, y = dota2_like(n_samples=2000, seed=4)
        Xtr, Xte, ytr, yte = train_test_split(X, y, seed=4)
        acc = KNeighborsClassifier(n_neighbors=15).fit(Xtr, ytr).score(
            Xte, yte
        )
        assert acc > 0.53

    def test_deterministic(self):
        X1, y1 = dota2_like(n_samples=100, seed=5)
        X2, y2 = dota2_like(n_samples=100, seed=5)
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)

    def test_too_few_features(self):
        with pytest.raises(ValueError):
            dota2_like(n_samples=10, n_features=2)


class TestBlobs:
    def test_shape_and_labels(self):
        X, labels = make_blobs(n_samples=100, centers=4, seed=1)
        assert X.shape == (100, 2)
        assert set(np.unique(labels)) == set(range(4))

    def test_paper_default_is_7000_points_2d(self):
        X, _ = make_blobs()
        assert X.shape == (7000, 2)

    def test_cluster_separation(self):
        X, labels = make_blobs(
            n_samples=200, centers=2, cluster_std=0.1, seed=7
        )
        c0 = X[labels == 0].mean(axis=0)
        c1 = X[labels == 1].mean(axis=0)
        assert np.linalg.norm(c0 - c1) > 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_blobs(n_samples=2, centers=5)


class TestRandomMatrix:
    def test_paper_default_4704(self):
        # Shape only — don't allocate 4704^2 in tests more than once.
        m = random_matrix(64, seed=0)
        assert m.shape == (64, 64)

    def test_deterministic(self):
        assert np.array_equal(random_matrix(16, 3), random_matrix(16, 3))


class TestSplit:
    def test_partition(self):
        X = np.arange(100).reshape(50, 2).astype(float)
        y = np.arange(50)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.2)
        assert len(Xtr) == 40 and len(Xte) == 10
        combined = sorted(ytr.tolist() + yte.tolist())
        assert combined == list(range(50))

    def test_rows_stay_aligned(self):
        X = np.arange(40).reshape(20, 2).astype(float)
        y = np.arange(20)
        Xtr, _Xte, ytr, _yte = train_test_split(X, y)
        for row, label in zip(Xtr, ytr):
            assert row[0] == label * 2

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)
