"""Scalability rules (OMB510-515): detection and the LogGP pricing
contract — every finding's cost string must match what the simulator's
analytic model computes for the same pattern."""

from __future__ import annotations

import ast
import re

from repro.analysis.interproc import Program, load_program
from repro.analysis.scale import (
    ANNOTATE_N,
    DEFAULT_MSG_BYTES,
    DEFAULT_NET,
    fmt_us,
    projected_cost_us,
    run_scale_rules,
    scale_inventory,
)
from repro.simulator.collective_cost import _ceil_log2


def program_of(*sources: str) -> Program:
    prog = Program()
    for i, src in enumerate(sources):
        prog.add_module(f"mod{i}.py", ast.parse(src))
    prog.finalize()
    return prog


def rules_of(*sources: str) -> list[str]:
    return sorted(f.rule for f in run_scale_rules(program_of(*sources)))


class TestDetection:
    def test_mesh_dial_in_rank_loop(self):
        src = (
            "def establish(self, size):\n"
            "    for peer in range(self.world_rank):\n"
            "        sock = dial_with_retry(\n"
            "            lambda: socket.create_connection(addr))\n"
        )
        assert rules_of(src) == ["OMB510"]

    def test_root_accumulation(self):
        src = (
            "def gather_all(comm, rank, size):\n"
            "    parts = []\n"
            "    for src in range(size):\n"
            "        parts.append(comm.recv_bytes(src, 1, 64))\n"
            "    return parts\n"
        )
        assert rules_of(src) == ["OMB511"]

    def test_linear_fanout(self):
        src = (
            "def blast(comm, rank, size, buf):\n"
            "    for dst in range(size):\n"
            "        comm.send_bytes(buf, dst, 1)\n"
        )
        assert rules_of(src) == ["OMB512"]

    def test_helper_wrappers_count_as_comm(self):
        src = (
            "def linear(comm, size, tag, block):\n"
            "    for src in range(size):\n"
            "        out = crecv(comm, src, tag, block)\n"
        )
        assert rules_of(src) == ["OMB511"]

    def test_pairwise_exchange_is_not_flagged(self):
        # sendrecv per step is the optimal alltoall shape, not debt.
        src = (
            "def alltoall(comm, rank, size, buf):\n"
            "    for step in range(1, size):\n"
            "        peer = rank ^ step\n"
            "        out = comm.sendrecv_bytes(buf, peer, 1, peer, 1, 64)\n"
        )
        assert rules_of(src) == []

    def test_bounded_loop_is_not_flagged(self):
        src = (
            "def warmup(comm, rank, buf):\n"
            "    for i in range(10):\n"
            "        comm.send_bytes(buf, 0, 1)\n"
        )
        assert rules_of(src) == []

    def test_thread_per_peer_in_rank_loop(self):
        src = (
            "def start(self, size):\n"
            "    for peer in range(size):\n"
            "        t = threading.Thread(target=self._loop, args=(peer,))\n"
            "        t.start()\n"
        )
        assert rules_of(src) == ["OMB513"]

    def test_thread_in_helper_called_from_rank_loop(self):
        # One level of interprocedural vision: the loop dials, the
        # helper it calls starts the per-peer reader thread.
        src = (
            "def establish(self, size):\n"
            "    for peer in range(size):\n"
            "        self._register(peer)\n"
            "\n"
            "def _register(self, peer):\n"
            "    t = threading.Thread(target=self._read, args=(peer,))\n"
            "    t.start()\n"
        )
        assert "OMB513" in rules_of(src)

    def test_thread_outside_any_rank_loop_is_fine(self):
        src = (
            "def start_progress(self):\n"
            "    t = threading.Thread(target=self._progress)\n"
            "    t.start()\n"
        )
        assert rules_of(src) == []

    def test_fd_per_peer(self):
        src = (
            "def mesh(self, size):\n"
            "    for peer in range(size):\n"
            "        s = socket.socket(socket.AF_UNIX)\n"
            "        s.connect(path(peer))\n"
        )
        assert rules_of(src) == ["OMB510", "OMB514"]

    def test_unbounded_hold_buffer(self):
        src = (
            "def on_frame(self, peer, seq, data):\n"
            "    if seq != peer.next_expected:\n"
            "        peer.buffered[seq] = data\n"
        )
        assert rules_of(src) == ["OMB515"]

    def test_hold_buffer_with_window_bound_is_fine(self):
        src = (
            "def on_frame(self, peer, seq, data):\n"
            "    if seq != peer.next_expected:\n"
            "        if len(peer.buffered) < self.max_window:\n"
            "            peer.buffered[seq] = data\n"
        )
        assert rules_of(src) == []


class TestLogGPContract:
    def test_cost_model_matches_the_simulator(self):
        # The annotation numbers are the simulator's analytic model:
        # latency_us from the LogGP NetworkModel, log-tree depth from
        # collective_cost._ceil_log2.  Recompute them independently.
        lat = DEFAULT_NET.latency_us
        m = DEFAULT_MSG_BYTES
        for n in (2, 64, 256, 1024):
            assert projected_cost_us("linear", n) == (n - 1) * lat(m)
            assert projected_cost_us("tree", n) == _ceil_log2(n) * lat(m)
            assert projected_cost_us("mesh", n) == 3 * (n - 1) * lat(0)
            assert projected_cost_us("perpeer", n) == (n - 1) * lat(0)

    def test_every_finding_is_priced(self):
        # Acceptance bar: each OMB51x finding carries a LogGP cost
        # string whose figures match the simulator-derived model.
        program = load_program(["src", "benchmarks", "examples"])
        findings = run_scale_rules(program)
        assert findings, "expected OMB51x sites in the shipped tree"
        expected = {
            "mesh": fmt_us(projected_cost_us("mesh", ANNOTATE_N)),
            "linear": fmt_us(projected_cost_us("linear", ANNOTATE_N)),
            "tree": fmt_us(projected_cost_us("tree", ANNOTATE_N)),
            "perpeer": fmt_us(projected_cost_us("perpeer", ANNOTATE_N)),
        }
        for f in findings:
            assert f"LogGP @N={ANNOTATE_N}" in f.message, f.format()
            if f.rule == "OMB510":
                assert expected["mesh"] in f.message, f.format()
            elif f.rule in ("OMB511", "OMB512"):
                assert expected["linear"] in f.message, f.format()
                assert expected["tree"] in f.message, f.format()
            elif f.rule in ("OMB513", "OMB514"):
                assert expected["perpeer"] in f.message, f.format()
            elif f.rule == "OMB515":
                assert expected["linear"] in f.message, f.format()

    def test_inventory_ranks_by_cost(self):
        program = load_program(["src"])
        sites = scale_inventory(program)
        assert sites
        for s in sites:
            assert s.cost_us(64) < s.cost_us(256) < s.cost_us(1024)

    def test_known_sites_are_inventoried(self):
        program = load_program(["src"])
        by_rule = {}
        for s in scale_inventory(program):
            by_rule.setdefault(s.rule, set()).add(s.path)
        assert "src/repro/mpi/reliability.py" in by_rule["OMB515"]
        # Burned down by the lazy connection fabric: the stream
        # transports no longer dial an eager mesh (OMB510) or spawn a
        # reader thread ahead of need (OMB513 is per-established-
        # channel now, not per-peer at startup).
        for rule in ("OMB510", "OMB513", "OMB514"):
            assert not any(
                re.search(r"transport/(tcp|uds)\.py", p)
                for p in by_rule.get(rule, ())
            ), (rule, by_rule[rule])
