"""Multi-threaded latency benchmark (osu_latency_mt)."""

import pytest

from repro.core import Options, get_benchmark
from repro.core.runner import BenchContext
from repro.mpi.world import run_on_threads


def _run(n=2, extra=None, **kw):
    defaults = dict(min_size=1, max_size=64, iterations=4, warmup=1)
    defaults.update(kw)
    opts = Options(**defaults)
    if extra:
        opts.extra.update(extra)
    bench = get_benchmark("osu_latency_mt")
    return run_on_threads(
        n, lambda c: bench.run(BenchContext(c, opts)), timeout=120
    )


class TestMtLatency:
    def test_runs_with_default_threads(self):
        tables = _run()
        assert all(r.value > 0 for r in tables[0].rows)

    def test_thread_count_option(self):
        tables = _run(extra={"threads": 2})
        assert all(r.value > 0 for r in tables[0].rows)

    def test_single_thread_degenerates_to_plain_latency(self):
        tables = _run(extra={"threads": 1})
        assert all(r.value > 0 for r in tables[0].rows)

    def test_extra_ranks_idle(self):
        tables = _run(n=4, extra={"threads": 2})
        assert all(r.value > 0 for r in tables[0].rows)

    def test_needs_two_ranks(self):
        with pytest.raises(ValueError, match="at least 2"):
            _run(n=1)

    def test_per_thread_tags_do_not_crosstalk(self):
        """With many threads, each pair's traffic stays on its own tag;
        a mismatch would corrupt the ping-pong and hang (caught by the
        harness timeout)."""
        tables = _run(extra={"threads": 8}, iterations=3)
        assert all(r.value > 0 for r in tables[0].rows)
