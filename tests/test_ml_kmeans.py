"""k-means tests (scikit-learn workalike)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.datasets import make_blobs
from repro.ml.kmeans import KMeans


class TestFit:
    def test_recovers_separated_blobs(self):
        X, labels = make_blobs(
            n_samples=300, centers=3, cluster_std=0.3, seed=4
        )
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # Each true cluster maps to exactly one predicted cluster.
        for c in range(3):
            preds = km.labels_[labels == c]
            assert len(np.unique(preds)) == 1

    def test_inertia_nonincreasing_in_k(self):
        X, _ = make_blobs(n_samples=200, centers=4, seed=9)
        inertias = [
            KMeans(n_clusters=k, random_state=0).fit(X).inertia_
            for k in range(1, 7)
        ]
        for a, b in zip(inertias, inertias[1:]):
            assert b <= a * 1.05  # allow tiny local-optimum noise

    def test_k_equals_n_gives_zero_inertia(self):
        X = np.arange(10, dtype="f8").reshape(5, 2)
        km = KMeans(n_clusters=5, random_state=0).fit(X)
        assert km.inertia_ == pytest.approx(0.0, abs=1e-9)

    def test_k1_center_is_mean(self):
        X, _ = make_blobs(n_samples=100, centers=2, seed=1)
        km = KMeans(n_clusters=1, random_state=0).fit(X)
        assert np.allclose(km.cluster_centers_[0], X.mean(axis=0))
        # Inertia = total variance around the mean.
        assert km.inertia_ == pytest.approx(
            np.sum((X - X.mean(axis=0)) ** 2)
        )

    def test_labels_match_predict(self):
        X, _ = make_blobs(n_samples=150, centers=3, seed=2)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_fit_predict(self):
        X, _ = make_blobs(n_samples=60, centers=2, seed=3)
        labels = KMeans(n_clusters=2, random_state=0).fit_predict(X)
        assert labels.shape == (60,)

    def test_n_init_improves_or_matches(self):
        X, _ = make_blobs(n_samples=200, centers=6, cluster_std=1.5, seed=8)
        one = KMeans(n_clusters=6, n_init=1, random_state=0).fit(X)
        many = KMeans(n_clusters=6, n_init=5, random_state=0).fit(X)
        assert many.inertia_ <= one.inertia_ + 1e-9

    def test_deterministic_with_seed(self):
        X, _ = make_blobs(n_samples=100, centers=3, seed=5)
        a = KMeans(n_clusters=3, random_state=7).fit(X)
        b = KMeans(n_clusters=3, random_state=7).fit(X)
        assert np.allclose(a.cluster_centers_, b.cluster_centers_)

    def test_convergence_iteration_count_recorded(self):
        X, _ = make_blobs(n_samples=100, centers=2, cluster_std=0.1, seed=6)
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        assert 1 <= km.n_iter_ <= km.max_iter


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    def test_bad_max_iter(self):
        with pytest.raises(ValueError):
            KMeans(max_iter=0)

    def test_bad_n_init(self):
        with pytest.raises(ValueError):
            KMeans(n_init=0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="clusters"):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            KMeans(n_clusters=1).fit(np.zeros(5))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            KMeans().predict(np.zeros((1, 2)))


class TestProperties:
    @given(st.integers(0, 10_000), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_inertia_equals_recomputed_ssq(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 2))
        km = KMeans(n_clusters=k, random_state=0).fit(X)
        d = X - km.cluster_centers_[km.labels_]
        assert km.inertia_ == pytest.approx(np.sum(d * d), rel=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_every_cluster_nonempty(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(50, 3))
        km = KMeans(n_clusters=4, random_state=0).fit(X)
        assert len(np.unique(km.labels_)) == 4
