"""ombpy-compare tool tests."""

import pytest

from repro.core.compare import (
    compare_report,
    load_table,
    main,
    split_ranges,
)
from repro.core.export import table_to_json
from repro.core.results import ResultRow, ResultTable


def _table(metric="latency_us", api="native", offset=0.0):
    t = ResultTable(
        benchmark="osu_latency", metric=metric, ranks=2,
        buffer="numpy", api=api,
    )
    for k in range(0, 16, 2):
        size = 2 ** k
        t.add(ResultRow(size, 1.0 + size * 1e-4 + offset, 0, 0, 10))
    return t


class TestSplitRanges:
    def test_split_at_threshold(self):
        a, b = _table(), _table()
        small, large = split_ranges(a, b, threshold=8192)
        assert max(small) <= 8192
        assert min(large) > 8192
        assert sorted(small + large) == a.sizes()

    def test_disjoint_tables(self):
        a = _table()
        b = ResultTable("x", "latency_us", 2, "numpy", "buffer")
        b.add(ResultRow(3, 1.0))
        small, large = split_ranges(a, b)
        assert small == [] and large == []


class TestReport:
    def test_overhead_sign_for_latency(self):
        base = _table(api="native")
        cand = _table(api="buffer", offset=0.5)
        report = compare_report(base, cand)
        assert "+0.500" in report
        assert "overhead" in report

    def test_deficit_sign_for_bandwidth(self):
        base = _table(metric="bandwidth_mbs", offset=100.0)
        cand = _table(metric="bandwidth_mbs")
        report = compare_report(base, cand)
        # Candidate is *lower* bandwidth: reported as a positive deficit.
        assert "deficit" in report
        assert "+100.000" in report

    def test_metric_mismatch_rejected(self):
        with pytest.raises(ValueError, match="metric mismatch"):
            compare_report(_table(), _table(metric="bandwidth_mbs"))

    def test_report_contains_series(self):
        report = compare_report(_table(), _table(offset=1.0))
        assert "# Size" in report


class TestCli:
    def test_end_to_end(self, tmp_path, capsys):
        a = tmp_path / "omb.json"
        b = tmp_path / "ombpy.json"
        a.write_text(table_to_json(_table(api="native")))
        b.write_text(table_to_json(_table(api="buffer", offset=0.3)))
        assert main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "omb" in out and "ombpy" in out

    def test_csv_input_rejected(self, tmp_path, capsys):
        f = tmp_path / "x.csv"
        f.write_text("size,latency_us\n1,1.0\n")
        assert main([str(f), str(f)]) == 2
        assert "json" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main([
            str(tmp_path / "a.json"), str(tmp_path / "b.json")
        ]) == 2

    def test_load_table_roundtrip(self, tmp_path):
        f = tmp_path / "t.json"
        f.write_text(table_to_json(_table()))
        t = load_table(f)
        assert t.benchmark == "osu_latency"
