"""Property tests for the discrete-event engine.

Random-but-deadlock-free communication patterns (rings, pairwise
exchanges, random matched send/recv schedules) must complete, and their
finish times must respect analytic lower/upper bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import simulate
from repro.simulator.loggp import NetworkModel


def _net(alpha, beta):
    return NetworkModel(alpha_us=alpha, beta_us_per_byte=beta)


@given(
    st.integers(2, 8),
    st.integers(1, 5),
    st.floats(0.1, 5.0),
    st.floats(1e-6, 1e-3),
)
@settings(max_examples=40, deadline=None)
def test_ring_rounds_finish_time_exact(p, rounds, alpha, beta):
    """k ring rounds cost exactly k * latency(n) for every rank."""
    net = _net(alpha, beta)
    n = 128

    def prog(rank, size):
        right = (rank + 1) % size
        left = (rank - 1) % size
        for _ in range(rounds):
            yield ("sendrecv", right, left, n)

    clocks = simulate([prog(r, p) for r in range(p)], net)
    expected = rounds * net.latency_us(n)
    assert all(abs(c - expected) < 1e-9 for c in clocks)


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_matched_random_schedule_completes(pairs, seed):
    """Random per-pair message schedules (matched counts) never deadlock
    and respect causality: receiver finish >= sender's last send time."""
    rng = np.random.default_rng(seed)
    counts = [int(rng.integers(1, 6)) for _ in range(pairs)]
    sizes = [[int(rng.integers(0, 4096)) for _ in range(c)] for c in counts]
    net = _net(1.0, 1e-4)

    programs = []
    for pair in range(pairs):
        def sender(rank, p, msgs=sizes[pair]):
            for n in msgs:
                yield ("send", rank + 1, n)
                yield ("compute", 0.05)

        def receiver(rank, p, msgs=sizes[pair]):
            for _ in msgs:
                yield ("recv", rank - 1)

        programs.append(sender)
        programs.append(receiver)

    progs = [programs[i](i, 2 * pairs) for i in range(2 * pairs)]
    clocks = simulate(progs, net)
    for pair in range(pairs):
        sender_clock = clocks[2 * pair]
        receiver_clock = clocks[2 * pair + 1]
        # The receiver can only finish after the last message arrives.
        last = sizes[pair][-1]
        assert receiver_clock >= sender_clock - 0.05  # sender's trailing compute
        assert receiver_clock >= net.latency_us(last)


@given(st.integers(2, 8), st.floats(0.0, 2.0))
@settings(max_examples=30, deadline=None)
def test_send_overhead_linear_in_ring(p, overhead):
    """Per-send overhead adds exactly (rounds * overhead) to a ring."""
    net = _net(1.0, 1e-4)
    rounds = 3

    def prog(rank, size):
        right = (rank + 1) % size
        left = (rank - 1) % size
        for _ in range(rounds):
            yield ("sendrecv", right, left, 64)

    base = max(simulate([prog(r, p) for r in range(p)], net))
    slowed = max(simulate(
        [prog(r, p) for r in range(p)], net,
        per_send_overhead_us=overhead,
    ))
    assert slowed >= base
    assert abs(slowed - (base + rounds * overhead)) < 1e-6


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_fan_in_serializes_at_receiver(seed):
    """Messages from many senders to one receiver: completion time is at
    least the max single-path time and at most the sum of all paths."""
    rng = np.random.default_rng(seed)
    p = int(rng.integers(3, 8))
    net = _net(0.5, 5e-5)
    sizes = [int(rng.integers(0, 8192)) for _ in range(p - 1)]

    def sender(rank, size):
        yield ("send", 0, sizes[rank - 1])

    def sink(rank, size):
        for src in range(1, size):
            yield ("recv", src)

    progs = [sink(0, p)] + [sender(r, p) for r in range(1, p)]
    clocks = simulate(progs, net)
    lower = max(net.latency_us(n) for n in sizes)
    upper = sum(net.latency_us(n) for n in sizes) + 1e-9
    assert lower - 1e-9 <= clocks[0] <= upper
