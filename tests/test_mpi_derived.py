"""Vector (strided) derived-datatype tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import datatypes
from repro.mpi.derived import recv_vector, send_vector, type_vector
from repro.mpi.exceptions import CountError, DatatypeError
from repro.mpi.world import run_on_threads


class TestConstruction:
    def test_sizes(self):
        vt = type_vector(3, 2, 4, datatypes.DOUBLE)
        assert vt.packed_elements == 6
        assert vt.packed_bytes == 48
        assert vt.extent_elements == 2 * 4 + 2

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(DatatypeError, match="overlap"):
            type_vector(2, 4, 2, datatypes.INT)

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            type_vector(-1, 1, 1, datatypes.INT)

    def test_name(self):
        assert "MPI_INT_vector" in type_vector(
            1, 1, 1, datatypes.INT
        ).Get_name()

    def test_zero_count(self):
        vt = type_vector(0, 3, 3, datatypes.INT)
        assert vt.extent_elements == 0
        assert vt.pack(np.zeros(0, dtype="i4")) == b""


class TestPackUnpack:
    def test_pack_selects_strided_elements(self):
        vt = type_vector(3, 1, 2, datatypes.LONG)
        buf = np.arange(6, dtype="i8")  # picks 0, 2, 4
        packed = np.frombuffer(vt.pack(buf), dtype="i8")
        assert packed.tolist() == [0, 2, 4]

    def test_pack_blocklength_two(self):
        vt = type_vector(2, 2, 3, datatypes.INT)
        buf = np.arange(5, dtype="i4")  # [0,1] and [3,4]
        packed = np.frombuffer(vt.pack(buf), dtype="i4")
        assert packed.tolist() == [0, 1, 3, 4]

    def test_unpack_roundtrip(self):
        vt = type_vector(3, 2, 4, datatypes.DOUBLE)
        src = np.arange(10, dtype="f8")
        dst = np.zeros(10, dtype="f8")
        vt.unpack(vt.pack(src), dst)
        idx = [0, 1, 4, 5, 8, 9]
        assert dst[idx].tolist() == src[idx].tolist()
        untouched = [2, 3, 6, 7]
        assert all(dst[untouched] == 0)

    def test_matrix_column_use_case(self):
        """The classic vector-type example: one column of a C-order
        matrix is count=nrows, blocklength=1, stride=ncols."""
        m = np.arange(12, dtype="f8").reshape(3, 4)
        vt = type_vector(3, 1, 4, datatypes.DOUBLE)
        col1 = np.frombuffer(vt.pack(m), dtype="f8")
        # Packing starts at element 0 -> column 0.
        assert col1.tolist() == m[:, 0].tolist()

    def test_short_buffer_rejected(self):
        vt = type_vector(3, 2, 4, datatypes.INT)
        with pytest.raises(CountError, match="spans"):
            vt.pack(np.zeros(5, dtype="i4"))

    def test_wrong_payload_size_rejected(self):
        vt = type_vector(2, 1, 2, datatypes.INT)
        with pytest.raises(CountError, match="packs"):
            vt.unpack(b"\x00" * 4, np.zeros(4, dtype="i4"))

    def test_readonly_unpack_target_rejected(self):
        vt = type_vector(1, 1, 1, datatypes.UNSIGNED_CHAR)
        with pytest.raises(DatatypeError, match="writable"):
            vt.unpack(b"\x01", bytes(1))

    @given(
        st.integers(1, 8), st.integers(1, 4), st.integers(0, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, count, blocklength, extra, seed):
        stride = blocklength + extra
        vt = type_vector(count, blocklength, stride, datatypes.LONG)
        rng = np.random.default_rng(seed)
        src = rng.integers(-1000, 1000, vt.extent_elements).astype("i8")
        dst = np.zeros_like(src)
        vt.unpack(vt.pack(src), dst)
        idx = vt._block_index()
        assert np.array_equal(dst[idx], src[idx])


class TestCommunication:
    def test_send_recv_strided(self):
        def work(comm):
            vt = type_vector(4, 1, 2, datatypes.LONG)
            if comm.rank == 0:
                buf = np.arange(8, dtype="i8") * 10
                send_vector(comm, buf, vt, 1, 3)
            elif comm.rank == 1:
                buf = np.zeros(8, dtype="i8")
                st = recv_vector(comm, buf, vt, 0, 3)
                assert st.count_bytes == vt.packed_bytes
                assert buf[[0, 2, 4, 6]].tolist() == [0, 20, 40, 60]
                assert buf[[1, 3, 5, 7]].tolist() == [0, 0, 0, 0]
        run_on_threads(2, work)

    def test_matrix_column_exchange(self):
        """Send column 0 of a matrix; receive into column 0 of another."""
        def work(comm):
            rows, cols = 4, 5
            vt = type_vector(rows, 1, cols, datatypes.DOUBLE)
            if comm.rank == 0:
                m = np.arange(rows * cols, dtype="f8").reshape(rows, cols)
                send_vector(comm, m, vt, 1, 1)
            elif comm.rank == 1:
                m = np.zeros((rows, cols))
                recv_vector(comm, m, vt, 0, 1)
                assert m[:, 0].tolist() == [0.0, 5.0, 10.0, 15.0]
                assert np.all(m[:, 1:] == 0)
        run_on_threads(2, work)
