"""Tracer tests + algorithm-structure assertions.

The structural counts below are the textbook message complexities of the
collective algorithms; validating them proves the implementation runs the
algorithm it claims, not merely that results are numerically right.
"""

import math
import threading

import numpy as np
import pytest

from repro.mpi import ops
from repro.mpi.collectives import selector
from repro.mpi.trace import run_traced, traced
from repro.mpi.world import run_on_threads


def _collective_trace(n, fn, op=None, algorithm=None):
    if op is not None:
        selector.force(op, algorithm)
    try:
        return run_traced(n, fn)
    finally:
        if op is not None:
            selector.force(op, None)


class TestTracer:
    def test_records_pt2pt(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"abc", 1, 9)
            elif comm.rank == 1:
                comm.recv_bytes(0, 9, 8)

        log = run_traced(2, work)
        assert log.message_count() == 1
        assert log.total_bytes() == 3
        assert log.by_pair() == {(0, 1): 1}

    def test_records_receive_and_completion_events(self):
        # Hold traffic until every rank's trace sink is installed, so
        # the receiver cannot miss an early arrival.
        gate = threading.Barrier(2)

        def work(comm):
            gate.wait()
            if comm.rank == 0:
                comm.send_bytes(b"abc", 1, 9)
            elif comm.rank == 1:
                comm.recv_bytes(0, 9, 8)

        log = run_traced(2, work)
        # The one payload message is seen arriving at rank 1...
        recvs = [e for e in log.receives() if e.nbytes == 3]
        assert len(recvs) == 1
        assert recvs[0].src_world == 0
        assert recvs[0].dst_world == 1
        # ...and completing against a receive (posted or unexpected).
        completes = [e for e in log.completions() if e.nbytes == 3]
        assert len(completes) == 1

    def test_every_send_eventually_completes(self):
        gate = threading.Barrier(4)

        def work(comm):
            gate.wait()
            comm.allgather_bytes(bytes([comm.rank]) * 8)
            comm.barrier()

        log = run_traced(4, work)
        sends = log.message_count(include_self=True)
        assert sends > 0
        assert len(log.receives()) == sends
        assert len(log.completions()) == sends

    def test_self_sends_filtered_by_default(self):
        def work(comm):
            comm.isend_bytes(b"self", comm.rank, 1)
            comm.recv_bytes(comm.rank, 1, 8)

        log = run_traced(2, work)
        assert log.message_count() == 0
        assert log.message_count(include_self=True) == 2

    def test_traced_context_manager_restores_transport(self):
        def work(comm):
            original = comm.endpoint.transport
            with traced(comm) as log:
                comm.isend_bytes(b"x", comm.rank, 0)
                comm.recv_bytes(comm.rank, 0, 4)
                assert log.message_count(include_self=True) == 1
            assert comm.endpoint.transport is original

        run_on_threads(1, work)

    def test_clear(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"1", 1, 1)
            else:
                comm.recv_bytes(0, 1, 4)

        log = run_traced(2, work)
        log.clear()
        assert log.message_count() == 0


class TestAlgorithmStructure:
    """Message-complexity assertions for the collective algorithms."""

    @pytest.mark.parametrize("n", (2, 4, 8))
    def test_binomial_bcast_sends_p_minus_1_payloads(self, n):
        payload = b"z" * 64

        def work(comm):
            comm.bcast_bytes(payload if comm.rank == 0 else None, 0)

        log = _collective_trace(n, work, "bcast", "binomial")
        # p-1 header messages + p-1 payload messages.
        payload_msgs = [
            e for e in log.snapshot()
            if e.nbytes == 64 and e.src_world != e.dst_world
        ]
        assert len(payload_msgs) == n - 1

    @pytest.mark.parametrize("n", (3, 4, 5))
    def test_linear_bcast_sends_all_from_root(self, n):
        payload = b"y" * 32

        def work(comm):
            comm.bcast_bytes(payload if comm.rank == 0 else None, 0)

        log = _collective_trace(n, work, "bcast", "linear")
        payload_msgs = [e for e in log.snapshot() if e.nbytes == 32]
        assert len(payload_msgs) == n - 1
        assert all(e.src_world == 0 for e in payload_msgs)

    @pytest.mark.parametrize("n", (3, 4, 5, 8))
    def test_ring_allgather_message_count(self, n):
        def work(comm):
            comm.allgather_bytes(bytes([comm.rank]) * 16)

        log = _collective_trace(n, work, "allgather", "ring")
        data_msgs = [e for e in log.snapshot() if e.nbytes == 16]
        # Ring: p-1 steps, every rank sends one block per step.
        assert len(data_msgs) == n * (n - 1)
        # Each rank only ever sends to its right neighbour.
        for e in data_msgs:
            assert e.dst_world == (e.src_world + 1) % n

    @pytest.mark.parametrize("n", (2, 4, 8))
    def test_recursive_doubling_allreduce_message_count(self, n):
        def work(comm):
            comm.allreduce_array(np.ones(4), ops.SUM)

        log = _collective_trace(n, work, "allreduce", "recursive_doubling")
        data_msgs = [e for e in log.snapshot() if e.nbytes == 32]
        # Power-of-two p: log2(p) rounds, p messages per round.
        assert len(data_msgs) == n * int(math.log2(n))

    @pytest.mark.parametrize("n", (4, 8))
    def test_pairwise_alltoall_message_count(self, n):
        def work(comm):
            comm.alltoall_bytes([b"Q" * 8] * comm.size)

        log = _collective_trace(n, work, "alltoall", "pairwise")
        data_msgs = [
            e for e in log.snapshot()
            if e.nbytes == 8 and e.src_world != e.dst_world
        ]
        # Every ordered pair exchanges exactly one block.
        assert len(data_msgs) == n * (n - 1)
        assert set(log.by_pair()) >= {
            (i, j) for i in range(n) for j in range(n) if i != j
        }

    @pytest.mark.parametrize("n", (4, 8))
    def test_bruck_alltoall_fewer_messages_than_pairwise(self, n):
        def work(comm):
            comm.alltoall_bytes([b"w" * 8] * comm.size)

        bruck = _collective_trace(n, work, "alltoall", "bruck")
        pairwise = _collective_trace(n, work, "alltoall", "pairwise")
        # Bruck: p*ceil(log2 p) messages < p*(p-1) for p >= 4.
        assert bruck.message_count() < pairwise.message_count()
        assert bruck.message_count() == n * math.ceil(math.log2(n))

    @pytest.mark.parametrize("n", (2, 4, 8))
    def test_dissemination_barrier_message_count(self, n):
        def work(comm):
            comm.barrier()

        log = _collective_trace(n, work)
        # ceil(log2 p) rounds, one zero-byte token per rank per round.
        expected = n * math.ceil(math.log2(n))
        zero_msgs = [e for e in log.snapshot() if e.nbytes == 0]
        assert len(zero_msgs) == expected

    def test_bruck_total_volume_exceeds_pairwise_per_message_economy(self):
        """Bruck trades message count for volume: it ships ~p/2 blocks
        per message, so total bytes exceed pairwise's."""
        n = 8

        def work(comm):
            comm.alltoall_bytes([b"v" * 8] * comm.size)

        bruck = _collective_trace(n, work, "alltoall", "bruck")
        pairwise = _collective_trace(n, work, "alltoall", "pairwise")
        assert bruck.total_bytes() > pairwise.total_bytes()
