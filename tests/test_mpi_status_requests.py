"""Direct unit tests for Status, Request wrappers, and error classes."""

import pytest

from repro.mpi import datatypes
from repro.mpi import exceptions as exc
from repro.mpi.request import SendRequest
from repro.mpi.status import Status
from repro.mpi.world import run_on_threads


class TestStatus:
    def test_defaults(self):
        st = Status()
        assert st.Get_source() == -1
        assert st.Get_tag() == -1
        assert st.Get_error() == 0
        assert not st.Is_cancelled()

    def test_fill(self):
        st = Status()
        st._fill(3, 9, 24)
        assert st.Get_source() == 3
        assert st.Get_tag() == 9
        assert st.count_bytes == 24

    def test_get_count_elements(self):
        st = Status()
        st._fill(0, 0, 24)
        assert st.Get_count(datatypes.DOUBLE) == 3
        assert st.Get_elements(datatypes.INT) == 6
        assert st.Get_count(datatypes.BYTE) == 24

    def test_get_count_non_multiple_raises(self):
        st = Status()
        st._fill(0, 0, 10)
        with pytest.raises(exc.DatatypeError, match="not a multiple"):
            st.Get_count(datatypes.DOUBLE)


class TestSendRequest:
    def test_complete_immediately(self):
        req = SendRequest(dest=1, tag=5, nbytes=100)
        assert req.done()
        done, st = req.test()
        assert done and st.Get_tag() == 5
        assert req.wait().count_bytes == 100

    def test_cancel_always_fails(self):
        assert not SendRequest(0, 0, 0).cancel()


class TestErrorClasses:
    @pytest.mark.parametrize("error_cls,expected_class", [
        (exc.RankError, exc.ERR_RANK),
        (exc.TagError, exc.ERR_TAG),
        (exc.CommError, exc.ERR_COMM),
        (exc.TruncationError, exc.ERR_TRUNCATE),
        (exc.CountError, exc.ERR_COUNT),
        (exc.DatatypeError, exc.ERR_TYPE),
        (exc.OpError, exc.ERR_OP),
        (exc.RootError, exc.ERR_ROOT),
        (exc.GroupError, exc.ERR_GROUP),
        (exc.RequestError, exc.ERR_REQUEST),
        (exc.BufferError_, exc.ERR_BUFFER),
        (exc.InternalError, exc.ERR_INTERN),
    ])
    def test_error_class_codes(self, error_cls, expected_class):
        e = error_cls("boom")
        assert isinstance(e, exc.MPIError)
        assert e.Get_error_class() == expected_class

    def test_base_default_class(self):
        assert exc.MPIError("x").Get_error_class() == exc.ERR_OTHER

    def test_distinct_codes(self):
        codes = [
            exc.ERR_BUFFER, exc.ERR_COUNT, exc.ERR_TYPE, exc.ERR_TAG,
            exc.ERR_COMM, exc.ERR_RANK, exc.ERR_REQUEST, exc.ERR_ROOT,
            exc.ERR_GROUP, exc.ERR_OP, exc.ERR_TRUNCATE, exc.ERR_INTERN,
        ]
        assert len(codes) == len(set(codes))


class TestBindingRequestWrappers:
    def test_buffer_recv_request_test_path(self):
        import numpy as np

        from repro.bindings import Comm

        def work(rt):
            comm = Comm(rt)
            if comm.rank == 0:
                out = np.zeros(2, dtype="i8")
                req = comm.Irecv(out, 1, 4)
                comm.Barrier()     # ensure the send happened
                import time

                deadline = time.time() + 10
                while not req.Test():
                    assert time.time() < deadline
                assert out.tolist() == [7, 8]
            else:
                comm.Send(np.array([7, 8], dtype="i8"), 0, 4)
                comm.Barrier()
        run_on_threads(2, work)

    def test_pickle_future_test_path(self):
        from repro.bindings import Comm

        def work(rt):
            comm = Comm(rt)
            if comm.rank == 0:
                fut = comm.irecv(1, 2)
                comm.Barrier()
                import time

                deadline = time.time() + 10
                while True:
                    done, value = fut.test()
                    if done:
                        assert value == ["payload"]
                        break
                    assert time.time() < deadline
            else:
                comm.send(["payload"], 0, 2)
                comm.Barrier()
        run_on_threads(2, work)

    def test_irecv_wait_fills_status(self):
        import numpy as np

        from repro.bindings import Comm
        from repro.mpi.status import Status

        def work(rt):
            comm = Comm(rt)
            if comm.rank == 0:
                out = np.zeros(1, dtype="f8")
                st = Status()
                req = comm.Irecv(out, 1, 6)
                req.Wait(st)
                assert st.Get_source() == 1
                assert st.Get_count(datatypes.DOUBLE) == 1
            else:
                comm.Send(np.array([2.5]), 0, 6)
        run_on_threads(2, work)
