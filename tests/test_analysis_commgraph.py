"""Static communication graph (OMB401-403): site extraction with rank
roles, symbolic tag matching, and head-to-head wait-cycle detection."""

from __future__ import annotations

import ast

from repro.analysis.commgraph import (
    ANY,
    extract_sites,
    run_commgraph_rules,
)
from repro.analysis.interproc import Program


def program_of(*sources: str) -> Program:
    prog = Program()
    for i, src in enumerate(sources):
        prog.add_module(f"mod{i}.py", ast.parse(src))
    prog.finalize()
    return prog


def rules_of(*sources: str) -> list[str]:
    findings = run_commgraph_rules(program_of(*sources))
    return sorted(f.rule for f in findings)


def sites_of(src: str):
    prog = program_of(src)
    out = []
    for info in prog.functions:
        out.extend(extract_sites(info))
    return out


class TestSiteExtraction:
    def test_tags_peers_and_kinds(self):
        src = (
            "def exchange(comm, rank, buf):\n"
            "    comm.send_bytes(buf, 1, 7)\n"
            "    comm.recv_bytes(0, 7)\n"
            "    comm.allreduce(buf)\n"
        )
        sites = sorted(sites_of(src), key=lambda s: s.line)
        assert [s.kind for s in sites] == ["send", "recv", "collective"]
        send, recv, coll = sites
        assert (send.tag, send.peer) == (7, 1)
        assert (recv.tag, recv.peer) == (7, 0)
        assert coll.method == "allreduce"

    def test_keyword_and_wildcard_arguments(self):
        src = (
            "def pull(comm, rank, buf):\n"
            "    comm.recv(source=ANY_SOURCE, tag=ANY_TAG)\n"
        )
        (site,) = sites_of(src)
        assert site.tag == ANY
        assert site.peer == ANY

    def test_rank_guard_becomes_role(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.send_bytes(buf, 1, 5)\n"
            "    elif rank == 1:\n"
            "        comm.recv_bytes(0, 5)\n"
            "    comm.bcast_bytes(buf)\n"
        )
        by_method = {s.method: s for s in sites_of(src)}
        assert by_method["send_bytes"].role == 0
        assert by_method["recv_bytes"].role == 1
        assert by_method["bcast_bytes"].role is None  # outside any guard

    def test_symbolic_tag_is_none(self):
        src = (
            "def relay(comm, rank, buf, tag):\n"
            "    comm.send_bytes(buf, 1, tag)\n"
        )
        (site,) = sites_of(src)
        assert site.tag is None

    def test_ambiguous_receiver_ignored(self):
        # queue.send(...) on a non-comm-looking receiver is not MPI.
        src = (
            "def post(queue, item):\n"
            "    queue.send(item)\n"
        )
        assert sites_of(src) == []


class TestOMB401UnmatchedSend:
    def test_literal_tag_with_no_matching_recv(self):
        src = (
            "def left(comm, rank, buf):\n"
            "    comm.send_bytes(buf, 1, 42)\n"
            "def right(comm, rank):\n"
            "    comm.recv_bytes(0, 7)\n"
        )
        found = rules_of(src)
        assert "OMB401" in found
        assert "OMB402" in found  # tag 7 recv is just as unmatched

    def test_matching_literal_tags_clean(self):
        src = (
            "def left(comm, rank, buf):\n"
            "    comm.send_bytes(buf, 1, 42)\n"
            "def right(comm, rank):\n"
            "    comm.recv_bytes(0, 42)\n"
        )
        assert rules_of(src) == []

    def test_wildcard_recv_matches_any_send(self):
        src = (
            "def left(comm, rank, buf):\n"
            "    comm.send_bytes(buf, 1, 42)\n"
            "def right(comm, rank):\n"
            "    comm.recv(source=0, tag=ANY_TAG)\n"
        )
        assert "OMB401" not in rules_of(src)

    def test_symbolic_recv_tag_matches_any_send(self):
        src = (
            "def left(comm, rank, buf):\n"
            "    comm.send_bytes(buf, 1, 42)\n"
            "def right(comm, rank, tag):\n"
            "    comm.recv_bytes(0, tag)\n"
        )
        assert "OMB401" not in rules_of(src)

    def test_internal_tags_exempt(self):
        # Tags >= 2**30 belong to the runtime's internal protocol.
        src = (
            "def beat(comm, rank, buf):\n"
            f"    comm.send_bytes(buf, 1, {2**30 + 3})\n"
        )
        assert "OMB401" not in rules_of(src)


class TestOMB402UnmatchedRecv:
    def test_literal_recv_tag_with_no_send(self):
        src = (
            "def right(comm, rank):\n"
            "    comm.recv_bytes(0, 13)\n"
        )
        assert "OMB402" in rules_of(src)

    def test_symbolic_send_matches_all_recvs(self):
        src = (
            "def left(comm, rank, buf, tag):\n"
            "    comm.send_bytes(buf, 1, tag)\n"
            "def right(comm, rank):\n"
            "    comm.recv_bytes(0, 13)\n"
        )
        assert "OMB402" not in rules_of(src)


class TestOMB403WaitCycle:
    def test_head_to_head_recv_flagged(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.recv_bytes(1, 3)\n"
            "        comm.send_bytes(buf, 1, 3)\n"
            "    if rank == 1:\n"
            "        comm.recv_bytes(0, 3)\n"
            "        comm.send_bytes(buf, 0, 3)\n"
        )
        found = rules_of(src)
        assert found.count("OMB403") == 1  # one finding per role pair

    def test_send_first_order_clean(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.send_bytes(buf, 1, 3)\n"
            "        comm.recv_bytes(1, 3)\n"
            "    if rank == 1:\n"
            "        comm.recv_bytes(0, 3)\n"
            "        comm.send_bytes(buf, 0, 3)\n"
        )
        assert "OMB403" not in rules_of(src)

    def test_nonblocking_recv_clean(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        req = comm.irecv_bytes(1, 3)\n"
            "        comm.send_bytes(buf, 1, 3)\n"
            "    if rank == 1:\n"
            "        req = comm.irecv_bytes(0, 3)\n"
            "        comm.send_bytes(buf, 0, 3)\n"
        )
        assert "OMB403" not in rules_of(src)

    def test_roles_in_different_files_do_not_pair(self):
        # OMB403 is per-module: unrelated files are unrelated programs.
        left = (
            "def a(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.recv_bytes(1, 3)\n"
            "        comm.send_bytes(buf, 1, 3)\n"
        )
        right = (
            "def b(comm, rank, buf):\n"
            "    if rank == 1:\n"
            "        comm.recv_bytes(0, 3)\n"
            "        comm.send_bytes(buf, 0, 3)\n"
        )
        assert "OMB403" not in rules_of(left, right)


class TestGuardNormalization:
    """Equivalent-but-textually-different rank predicates must land on
    the same role (the OMB402 false-positive class): `rank == 0`,
    `0 == rank`, `not rank`, and the else arm of `rank != 0` all name
    the rank-0 role."""

    def test_not_rank_pairs_with_literal_guard(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if not rank:\n"
            "        comm.send_bytes(buf, 1, 3)\n"
            "    if rank == 1:\n"
            "        comm.recv_bytes(0, 3)\n"
        )
        assert rules_of(src) == []

    def test_reversed_compare_pairs(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if 0 == rank:\n"
            "        comm.send_bytes(buf, 1, 3)\n"
            "    if 1 == rank:\n"
            "        comm.recv_bytes(0, 3)\n"
        )
        assert rules_of(src) == []

    def test_else_of_rank_ne_zero_is_role_zero(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if rank != 0:\n"
            "        comm.recv_bytes(0, 3)\n"
            "    else:\n"
            "        comm.send_bytes(buf, 1, 3)\n"
        )
        assert rules_of(src) == []

    def test_bare_rank_truthiness_else_arm(self):
        src = (
            "def main(comm, rank, buf):\n"
            "    if rank:\n"
            "        comm.recv_bytes(0, 3)\n"
            "    else:\n"
            "        comm.send_bytes(buf, 1, 3)\n"
        )
        assert rules_of(src) == []

    def test_true_tag_mismatch_still_flagged(self):
        # Normalization must not swallow real mismatches: these tags
        # can never rendezvous, whatever the guard spelling.
        src = (
            "def main(comm, rank, buf):\n"
            "    if not rank:\n"
            "        comm.send_bytes(buf, 1, 3)\n"
            "    if rank == 1:\n"
            "        comm.recv_bytes(0, 4)\n"
        )
        assert rules_of(src) == ["OMB401", "OMB402"]
