"""End-to-end telemetry tests over the live runtime.

Exercises the hook wiring (comm/matching/collectives/reliability), the
env-driven install path, job aggregation over the control plane, the
counter-agreement invariant with the reliability layer, and the
launcher-side dump merge.
"""

import json
import os

import pytest

from repro.mpi.world import run_on_threads
from repro.telemetry import ENV_METRICS, ENV_OUT, ENV_TRACE, telemetry_from_env
from repro.telemetry.export import (
    collect_job, merged_metrics, read_rank_dumps, render_summary,
    write_job_files, write_rank_dump,
)


@pytest.fixture
def telemetry_env(monkeypatch):
    """Arm metrics + tracing for every rank the world bootstrap builds."""
    monkeypatch.setenv(ENV_METRICS, "1")
    monkeypatch.setenv(ENV_TRACE, "1")


def _traffic(comm):
    comm.allgather_bytes(bytes([comm.rank]) * 4)
    if comm.rank == 1:
        comm.send_bytes(b"payload", 0, 3)
    if comm.rank == 0:
        comm.recv_bytes(1, 3, 64)
    comm.barrier()


class TestEnvInstall:
    def test_disabled_by_default(self):
        assert telemetry_from_env(0) is None

    def test_trace_implies_metrics(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE, "1")
        tele = telemetry_from_env(2)
        assert tele is not None
        assert tele.metrics is not None
        assert tele.tracer is not None
        assert tele.rank == 2

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv(ENV_METRICS, "0")
        monkeypatch.setenv(ENV_TRACE, "0")
        assert telemetry_from_env(0) is None

    def test_threads_fabric_installs_per_rank(self, telemetry_env):
        def fn(comm):
            tele = comm.endpoint.telemetry
            assert tele is not None
            assert tele is comm.endpoint.engine.telemetry
            return tele.rank

        assert run_on_threads(3, fn) == [0, 1, 2]


class TestHookWiring:
    def test_counters_track_traffic(self, telemetry_env):
        def fn(comm):
            _traffic(comm)
            return comm.endpoint.telemetry.snapshot()

        snaps = [s["metrics"] for s in run_on_threads(2, fn)]
        c0, c1 = (s["counters"] for s in snaps)
        # Rank 1's direct send shows up at both ends.
        assert c1["comm.msgs_sent"] >= 1
        assert c0["comm.msgs_recvd"] >= 1
        assert c1["comm.bytes_sent"] >= len(b"payload")
        # Collectives ran under spans and counted internal messages.
        assert c0["coll.calls.allgather"] == 1
        assert c0["coll.calls.barrier"] == 1
        assert c0["coll.msgs"] >= 1
        # Every delivery classified as posted-hit or unexpected.
        assert (
            c0["comm.msgs_recvd"]
            == c0.get("match.posted_hits", 0)
            + c0.get("match.unexpected_queued", 0)
        )
        # The recv-wait histogram saw the blocking receive.
        assert snaps[0]["histograms"]["p2p.recv_wait_us"]["count"] >= 1

    def test_trace_events_recorded_per_rank(self, telemetry_env):
        def fn(comm):
            _traffic(comm)
            return comm.endpoint.telemetry.dump()

        dumps = run_on_threads(2, fn)
        for dump in dumps:
            kinds = {e[0] for e in dump["trace"]}
            assert "X" in kinds  # collective spans
            assert "i" in kinds  # message instants
            names = {e[1] for e in dump["trace"]}
            assert "coll.allgather" in names
            assert "send" in names

    def test_bench_sweep_records_phases(self, telemetry_env):
        from repro.core.options import Options
        from repro.core.runner import run_benchmark

        def fn(comm):
            run_benchmark(
                "osu_latency", comm,
                Options(min_size=1, max_size=4, iterations=2, warmup=1,
                        buffer="bytearray"),
            )
            return comm.endpoint.telemetry.dump()

        dumps = run_on_threads(2, fn)
        counters = dumps[0]["metrics"]["counters"]
        assert counters["bench.phases"] >= 1
        phase_spans = [
            e for e in dumps[0]["trace"] if e[2] == "bench"
        ]
        assert phase_spans
        assert all(e[1] == "osu_latency" for e in phase_spans)
        assert phase_spans[0][6]["size"] >= 1


class TestReliabilityMirror:
    def test_counters_agree_with_stats(self, telemetry_env):
        """The metrics registry and stats() must report identical counts,
        and comm.msgs_sent must equal the reliability layer's sequenced
        frame count — the acceptance-criteria invariant."""
        def fn(comm):
            _traffic(comm)
            comm.barrier()  # settle ACK traffic before snapshotting
            stats = None
            t = comm.endpoint.transport
            while t is not None and stats is None:
                if hasattr(t, "stats"):
                    stats = t.stats()
                t = getattr(t, "inner", None)
            return stats, comm.endpoint.telemetry.snapshot()["metrics"]

        results = run_on_threads(2, fn, reliable=True)
        for stats, metrics in results:
            assert stats is not None
            counters = metrics["counters"]
            for key, value in stats.items():
                assert counters.get(f"reliability.{key}", 0) == value, key
            # Every comm-level send became exactly one sequenced frame.
            assert counters["comm.msgs_sent"] == stats["sent"]

    def test_no_mirror_without_telemetry(self):
        def fn(comm):
            _traffic(comm)
            t = comm.endpoint.transport
            return t.stats()["sent"]

        sent = run_on_threads(2, fn, reliable=True)
        assert all(s >= 1 for s in sent)


class TestJobAggregation:
    def test_collect_job_gathers_all_ranks(self, telemetry_env):
        def fn(comm):
            _traffic(comm)
            dumps = collect_job(comm, comm.endpoint.telemetry)
            if comm.rank == 0:
                assert sorted(dumps) == [0, 1, 2]
                return merged_metrics(dumps)
            assert dumps is None
            return None

        merged = run_on_threads(3, fn)[0]
        assert merged["nranks"] == 3
        job = merged["job"]["counters"]
        per_rank = [
            merged["ranks"][str(r)]["counters"].get("comm.msgs_sent", 0)
            for r in range(3)
        ]
        assert job["comm.msgs_sent"] == sum(per_rank)

    def test_message_conservation_after_quiesce(self, telemetry_env):
        """Once a closing barrier quiesces the job, every counted send
        has been counted as a delivery somewhere.  (collect_job itself
        cannot promise this: its own gather traffic races the per-rank
        snapshots.)"""
        def fn(comm):
            _traffic(comm)
            return comm.endpoint.telemetry.dump()

        dumps = {d["rank"]: d for d in run_on_threads(3, fn)}
        job = merged_metrics(dumps)["job"]["counters"]
        assert job["comm.msgs_sent"] == job["comm.msgs_recvd"]
        assert job["comm.bytes_sent"] == job["comm.bytes_recvd"]

    def test_rank_dump_files_merge(self, tmp_path, telemetry_env):
        base = str(tmp_path / "job")

        def fn(comm):
            _traffic(comm)
            write_rank_dump(base, comm.endpoint.telemetry)

        run_on_threads(2, fn)
        dumps = read_rank_dumps(base, 2)
        assert sorted(dumps) == [0, 1]
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        write_job_files(dumps, str(metrics_path), str(trace_path))
        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "ombpy-metrics/1"
        assert metrics["nranks"] == 2
        trace = json.loads(trace_path.read_text())
        assert {e["pid"] for e in trace["traceEvents"]} == {0, 1}

    def test_world_finalize_writes_dump(self, tmp_path, monkeypatch):
        from repro.mpi import init as runtime_init

        base = str(tmp_path / "single")
        monkeypatch.setenv(ENV_METRICS, "1")
        monkeypatch.setenv(ENV_OUT, base)
        world = runtime_init()  # no launcher env -> singleton world
        world.finalize()
        dumps = read_rank_dumps(base, 1)
        assert 0 in dumps
        assert dumps[0]["metrics"] is not None

    def test_summary_table_shape(self, telemetry_env):
        def fn(comm):
            _traffic(comm)
            return comm.endpoint.telemetry.dump()

        dumps = {d["rank"]: d for d in run_on_threads(2, fn)}
        text = render_summary(dumps)
        lines = text.strip().split("\n")
        assert lines[0].startswith("# telemetry")
        assert lines[1].split()[:3] == ["#", "rank", "msgs"]
        assert len(lines) == 2 + 2 + 1  # header x2, one per rank, job row
        assert lines[-1].startswith("job")


class TestCliIntegration:
    def test_ombpy_threads_metrics_and_trace(self, tmp_path, monkeypatch):
        from repro.core.cli import main

        monkeypatch.chdir(tmp_path)
        rc = main([
            "osu_latency", "--threads", "2", "-m", "1:4", "-i", "2",
            "-x", "1", "--metrics",
            "--metrics-out", str(tmp_path / "metrics.json"),
            "--trace-out", str(tmp_path / "trace.json"),
        ])
        assert rc == 0
        # The CLI-set env must not leak into later runs.
        assert ENV_METRICS not in os.environ
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["nranks"] == 2
        assert metrics["job"]["counters"]["comm.msgs_sent"] > 0
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert trace["traceEvents"]

    def test_ombpy_without_flags_stays_dark(self, tmp_path, monkeypatch):
        from repro.core.cli import main

        monkeypatch.chdir(tmp_path)
        rc = main([
            "osu_latency", "--threads", "2", "-m", "1:4", "-i", "2",
            "-x", "1",
        ])
        assert rc == 0
        assert not (tmp_path / "metrics.json").exists()
