"""Stateful property testing of the matching engine.

Hypothesis drives random interleavings of deliveries, posted receives,
probes, and cancels against a reference model of MPI matching semantics;
the engine must agree with the model at every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import Envelope, MatchingEngine


class _ModelRecv:
    def __init__(self, source, tag, ticket):
        self.source = source
        self.tag = tag
        self.ticket = ticket

    def matches(self, src, tag):
        return (
            (self.source == ANY_SOURCE or self.source == src)
            and (self.tag == ANY_TAG or self.tag == tag)
        )


class MatchingMachine(RuleBasedStateMachine):
    """Reference model: FIFO lists of pending recvs and unexpected
    messages, matched earliest-first exactly as MPI specifies."""

    @initialize()
    def setup(self):
        self.engine = MatchingEngine()
        self.model_posted: list[_ModelRecv] = []
        self.model_unexpected: list[tuple[int, int, bytes]] = []
        self.completed: list[tuple[object, int, int, bytes]] = []
        self.counter = 0

    # -- actions -----------------------------------------------------------
    @rule(src=st.integers(0, 3), tag=st.integers(0, 3))
    def deliver(self, src, tag):
        payload = bytes([self.counter % 256])
        self.counter += 1
        env = Envelope(0, src, 0, tag, len(payload))
        self.engine.deliver(env, payload)
        # Model: match earliest satisfying posted recv, else queue.
        for i, recv in enumerate(self.model_posted):
            if recv.matches(src, tag):
                del self.model_posted[i]
                self.completed.append((recv.ticket, src, tag, payload))
                return
        self.model_unexpected.append((src, tag, payload))

    @rule(
        source=st.one_of(st.just(ANY_SOURCE), st.integers(0, 3)),
        tag=st.one_of(st.just(ANY_TAG), st.integers(0, 3)),
    )
    def post_recv(self, source, tag):
        ticket = self.engine.post_recv(0, source, tag, 1 << 20)
        model = _ModelRecv(source, tag, ticket)
        # Model: match earliest satisfying unexpected message, else post.
        for i, (src, t, payload) in enumerate(self.model_unexpected):
            if model.matches(src, t):
                del self.model_unexpected[i]
                self.completed.append((ticket, src, t, payload))
                return
        self.model_posted.append(model)

    @rule()
    def cancel_newest_posted(self):
        if not self.model_posted:
            return
        model = self.model_posted[-1]
        ok = self.engine.cancel_recv(model.ticket)
        assert ok, "cancel failed for a recv the model says is pending"
        self.model_posted.pop()

    # -- invariants ----------------------------------------------------------
    @invariant()
    def queue_sizes_agree(self):
        assert self.engine.pending_posted() == len(self.model_posted)
        assert self.engine.pending_unexpected() == len(
            self.model_unexpected
        )

    @invariant()
    def completed_tickets_agree(self):
        for ticket, src, tag, payload in self.completed:
            assert ticket.done()
            assert ticket.wait(0.1) == payload
            assert ticket.status.Get_source() == src
            assert ticket.status.Get_tag() == tag

    @invariant()
    def pending_tickets_not_done(self):
        for model in self.model_posted:
            assert not model.ticket.done()

    @invariant()
    def iprobe_agrees_with_model(self):
        st_ = self.engine.iprobe(0, ANY_SOURCE, ANY_TAG)
        if self.model_unexpected:
            src, tag, payload = self.model_unexpected[0]
            assert st_ is not None
            # iprobe reports the earliest matching unexpected message.
            assert (st_.Get_source(), st_.Get_tag()) == (src, tag)
        else:
            assert st_ is None


MatchingMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestMatchingStateful = MatchingMachine.TestCase
