"""k-NN classifier tests (scikit-learn workalike)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.knn import KNeighborsClassifier, NotFittedError


def _two_blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((-3, -3), 0.5, size=(n // 2, 2))
    b = rng.normal((3, 3), 0.5, size=(n // 2, 2))
    X = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestFitPredict:
    def test_separable_blobs_perfect(self):
        X, y = _two_blobs()
        clf = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_single_neighbor_memorizes(self):
        X, y = _two_blobs()
        clf = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert np.array_equal(clf.predict(X), y)

    def test_string_labels(self):
        X, y = _two_blobs()
        labels = np.where(y == 0, "left", "right")
        clf = KNeighborsClassifier(n_neighbors=3).fit(X, labels)
        assert set(clf.predict(X)) == {"left", "right"}

    def test_negative_labels(self):
        X, y = _two_blobs()
        signed = np.where(y == 0, -1, 1)
        clf = KNeighborsClassifier(n_neighbors=5).fit(X, signed)
        assert clf.score(X, signed) == 1.0

    def test_chunking_equals_unchunked(self):
        X, y = _two_blobs(n=100)
        q = X + 0.01
        small = KNeighborsClassifier(n_neighbors=3, chunk_size=7).fit(X, y)
        big = KNeighborsClassifier(n_neighbors=3, chunk_size=1000).fit(X, y)
        assert np.array_equal(small.predict(q), big.predict(q))

    def test_kneighbors_distances_sorted(self):
        X, y = _two_blobs()
        clf = KNeighborsClassifier(n_neighbors=4).fit(X, y)
        dist, idx = clf.kneighbors(X[:5])
        assert dist.shape == (5, 4) and idx.shape == (5, 4)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_self_is_own_nearest_neighbor(self):
        X, y = _two_blobs()
        clf = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        _dist, idx = clf.kneighbors(X)
        assert np.array_equal(idx[:, 0], np.arange(len(X)))


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_bad_n_neighbors(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(chunk_size=0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="labels"):
            KNeighborsClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNeighborsClassifier(n_neighbors=5).fit(
                np.zeros((2, 2)), np.zeros(2)
            )

    def test_1d_X_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            KNeighborsClassifier().fit(np.zeros(5), np.zeros(5))

    def test_query_dimension_mismatch(self):
        X, y = _two_blobs()
        clf = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError, match="incompatible"):
            clf.predict(np.zeros((2, 9)))

    def test_empty_score_rejected(self):
        X, y = _two_blobs()
        clf = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError, match="empty"):
            clf.score(np.zeros((0, 2)), np.zeros(0))


class TestProperties:
    @given(st.integers(0, 10_000), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_training_accuracy_with_k1_is_perfect(self, seed, dim):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, dim))
        y = rng.integers(0, 3, 30)
        clf = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert clf.score(X, y) == 1.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_prediction_invariant_to_duplicate_training_rows(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(20, 3))
        y = rng.integers(0, 2, 20)
        q = rng.normal(size=(5, 3))
        base = KNeighborsClassifier(n_neighbors=1).fit(X, y).predict(q)
        doubled = KNeighborsClassifier(n_neighbors=1).fit(
            np.vstack([X, X]), np.concatenate([y, y])
        ).predict(q)
        assert np.array_equal(base, doubled)
