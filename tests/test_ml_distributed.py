"""Distributed ML benchmarks: results must match sequential exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.datasets import dota2_like, make_blobs, train_test_split
from repro.ml.distributed import (
    balanced_assignment,
    distributed_kmeans_hpo,
    distributed_knn,
    distributed_matmul,
    run_sequential_vs_distributed,
    sequential_kmeans_hpo,
    sequential_knn,
    sequential_matmul,
)
from repro.ml.distributed.kmeans_hpo import find_elbow
from repro.ml.distributed.scheduler import makespan, naive_block_assignment
from repro.mpi.world import run_on_threads


@pytest.fixture(scope="module")
def knn_data():
    X, y = dota2_like(n_samples=1200, seed=3)
    return train_test_split(X, y, seed=3)


class TestDistributedKnn:
    @pytest.mark.parametrize("n", (1, 2, 3, 5))
    def test_accuracy_identical_to_sequential(self, knn_data, n):
        Xtr, Xte, ytr, yte = knn_data
        seq = sequential_knn(Xtr, ytr, Xte, yte)
        accs = run_on_threads(
            n, lambda c: distributed_knn(c, Xtr, ytr, Xte, yte)
        )
        assert accs[0] == pytest.approx(seq, abs=1e-12)
        assert all(a is None for a in accs[1:])

    def test_more_ranks_than_test_rows(self):
        Xtr, Xte, ytr, yte = (
            np.random.default_rng(0).normal(size=(30, 4)),
            np.random.default_rng(1).normal(size=(3, 4)),
            np.arange(30) % 2,
            np.arange(3) % 2,
        )
        accs = run_on_threads(
            5, lambda c: distributed_knn(c, Xtr, ytr, Xte, yte)
        )
        assert 0.0 <= accs[0] <= 1.0


class TestDistributedKmeansHpo:
    @pytest.mark.parametrize("n", (1, 2, 4))
    def test_inertias_identical_to_sequential(self, n):
        X, _ = make_blobs(n_samples=400, centers=4, seed=6)
        seq = sequential_kmeans_hpo(X, k_max=6, max_iter=20)
        dist = run_on_threads(
            n, lambda c: distributed_kmeans_hpo(c, X, k_max=6, max_iter=20)
        )[0]
        assert set(dist) == set(seq)
        for k in seq:
            assert dist[k] == pytest.approx(seq[k], rel=1e-12)

    def test_more_ranks_than_k_values(self):
        X, _ = make_blobs(n_samples=200, centers=2, seed=1)
        dist = run_on_threads(
            6, lambda c: distributed_kmeans_hpo(c, X, k_max=3, max_iter=10)
        )[0]
        assert set(dist) == {1, 2, 3}

    def test_elbow_detects_true_center_count(self):
        X, _ = make_blobs(
            n_samples=600, centers=4, cluster_std=0.3, seed=12
        )
        inertias = sequential_kmeans_hpo(X, k_max=9, max_iter=40)
        assert find_elbow(inertias) == 4

    def test_elbow_rejects_empty(self):
        with pytest.raises(ValueError):
            find_elbow({})


class TestDistributedMatmul:
    @pytest.mark.parametrize("n", (1, 2, 3, 5))
    def test_product_identical(self, n):
        rng = np.random.default_rng(2)
        A, B = rng.normal(size=(37, 20)), rng.normal(size=(20, 13))
        seq = sequential_matmul(A, B)
        dist = run_on_threads(n, lambda c: distributed_matmul(c, A, B))[0]
        assert np.allclose(seq, dist)

    def test_more_ranks_than_rows(self):
        rng = np.random.default_rng(5)
        A, B = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        dist = run_on_threads(6, lambda c: distributed_matmul(c, A, B))[0]
        assert np.allclose(dist, A @ B)

    def test_shape_mismatch_rejected(self):
        def work(comm):
            with pytest.raises(ValueError, match="incompatible"):
                distributed_matmul(comm, np.zeros((2, 3)), np.zeros((2, 3)))
        run_on_threads(2, work)


class TestScheduler:
    def test_balanced_beats_naive_for_linear_cost(self):
        ks = list(range(1, 21))
        balanced = balanced_assignment(ks, 4)
        naive = naive_block_assignment(ks, 4)
        assert makespan(balanced) <= makespan(naive)

    def test_all_items_assigned_once(self):
        ks = list(range(1, 14))
        parts = balanced_assignment(ks, 5)
        flat = sorted(k for part in parts for k in part)
        assert flat == ks

    def test_lpt_within_4_3_of_lower_bound(self):
        ks = list(range(1, 30))
        parts = balanced_assignment(ks, 6)
        lower = sum(ks) / 6
        assert makespan(parts) <= lower * (4 / 3) + max(ks)

    def test_empty_parts_when_fewer_items(self):
        parts = balanced_assignment([5, 1], 4)
        assert sorted(len(p) for p in parts) == [0, 0, 1, 1]

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            balanced_assignment([1], 0)
        with pytest.raises(ValueError):
            naive_block_assignment([1], 0)

    def test_custom_cost_function(self):
        parts = balanced_assignment([1, 2, 3, 4], 2, cost=lambda k: k * k)
        loads = sorted(sum(k * k for k in p) for p in parts)
        assert loads == [14, 16]  # {1,2,3} vs {4} under quadratic cost

    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=40, unique=True),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_lpt_within_graham_bound_of_naive(self, ks, nparts):
        # LPT is not pointwise better than a sorted contiguous split
        # (e.g. [3,4,5,6,7] into 2: LPT 14 vs naive 13); its guarantee
        # is Graham's bound against the optimum, and OPT <= naive, so
        # LPT <= (4/3 - 1/(3m)) * naive must always hold.
        bound = (4.0 / 3.0 - 1.0 / (3.0 * nparts)) * makespan(
            naive_block_assignment(sorted(ks), nparts)
        )
        assert makespan(balanced_assignment(ks, nparts)) <= bound + 1e-9


class TestHarness:
    def test_result_fields_and_speedup(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(60, 60)), rng.normal(size=(60, 60))
        res = run_sequential_vs_distributed(
            "matmul",
            lambda: sequential_matmul(A, B),
            lambda c: distributed_matmul(c, A, B),
            processes=2,
        )
        assert res.workload == "matmul"
        assert res.processes == 2
        assert res.sequential_s > 0 and res.distributed_s > 0
        assert res.speedup == res.sequential_s / res.distributed_s
        assert np.allclose(res.result_sequential, res.result_distributed)
