"""Unit tests for the telemetry metrics primitives.

Covers the log2-bucket histogram math, registry snapshots, the
serialization used on the control plane, and cross-rank merging.
"""

import json
import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
    merge_snapshots, snapshot_from_bytes, snapshot_to_bytes,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_set_and_peak(self):
        g = Gauge()
        g.set(3.5)
        assert g.value == 3.5
        g.set_max(2.0)
        assert g.value == 3.5
        g.set_max(7.0)
        assert g.value == 7.0

    def test_counter_thread_safety(self):
        c = Counter()

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestHistogramBuckets:
    def test_bucket_zero_holds_sub_one(self):
        assert Histogram.bucket_index(0) == 0
        assert Histogram.bucket_index(0.25) == 0
        assert Histogram.bucket_index(0.999) == 0

    def test_log2_boundaries(self):
        # Bucket i (i >= 1) holds [2**(i-1), 2**i).
        assert Histogram.bucket_index(1) == 1
        assert Histogram.bucket_index(1.9) == 1
        assert Histogram.bucket_index(2) == 2
        assert Histogram.bucket_index(3.99) == 2
        assert Histogram.bucket_index(4) == 3
        assert Histogram.bucket_index(1024) == 11
        assert Histogram.bucket_index(1023) == 10

    def test_last_bucket_absorbs_everything(self):
        huge = 1 << 60
        assert Histogram.bucket_index(huge) == DEFAULT_BUCKETS - 1
        assert Histogram.bucket_index(float("1e30")) == DEFAULT_BUCKETS - 1

    def test_bounds_match_index(self):
        # Every bucket's [lo, hi) must map back to itself.
        for i in range(DEFAULT_BUCKETS - 1):
            lo, hi = Histogram.bucket_bounds(i)
            assert Histogram.bucket_index(lo) == i
            assert Histogram.bucket_index(hi - 0.001) == i

    def test_last_bucket_unbounded(self):
        lo, hi = Histogram.bucket_bounds(DEFAULT_BUCKETS - 1)
        assert hi == float("inf")
        assert Histogram.bucket_index(lo) == DEFAULT_BUCKETS - 1

    def test_observe_accumulates(self):
        h = Histogram()
        for v in (0.5, 1.5, 1.7, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(103.7)
        assert snap["buckets"][0] == 1
        assert snap["buckets"][1] == 2
        assert snap["buckets"][Histogram.bucket_index(100.0)] == 1
        assert sum(snap["buckets"]) == 4

    def test_rejects_degenerate_bucket_count(self):
        with pytest.raises(ValueError):
            Histogram(nbuckets=1)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.counter("a").inc()
        reg.gauge("depth").set(4)
        reg.histogram("lat").observe(10)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 2
        assert snap["gauges"]["depth"] == 4.0
        assert snap["histograms"]["lat"]["count"] == 1


class TestSerialization:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("comm.msgs_sent").inc(17)
        reg.counter("comm.bytes_sent").inc(4096)
        reg.gauge("match.unexpected_peak").set_max(3)
        reg.histogram("p2p.recv_wait_us").observe(12.5)
        return reg.snapshot()

    def test_round_trip_identity(self):
        snap = self._populated()
        assert snapshot_from_bytes(snapshot_to_bytes(snap)) == snap

    def test_serialized_form_is_compact_json(self):
        data = snapshot_to_bytes(self._populated())
        assert b" " not in data
        assert json.loads(data.decode())

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            snapshot_from_bytes(b"[1,2,3]")

    def test_rejects_malformed_fields(self):
        with pytest.raises(ValueError):
            snapshot_from_bytes(b'{"counters": 7}')

    def test_survives_process_transport(self):
        """A snapshot gathered over a real process mesh round-trips intact.

        This is the control-plane property the job aggregation relies
        on: rank snapshots ride ``gatherv_bytes`` to rank 0 unchanged.
        """
        from repro.mpi.world import run_on_threads

        snap = self._populated()
        payload = snapshot_to_bytes(snap)

        def fn(comm):
            blobs = comm.gatherv_bytes(payload, None, 0)
            if comm.rank != 0:
                return None
            return [snapshot_from_bytes(b) for b in blobs]

        results = run_on_threads(3, fn)
        assert results[0] == [snap, snap, snap]


class TestMerge:
    def test_counters_sum_gauges_max(self):
        a = {"counters": {"x": 2}, "gauges": {"peak": 5.0}, "histograms": {}}
        b = {"counters": {"x": 3, "y": 1}, "gauges": {"peak": 7.0},
             "histograms": {}}
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"x": 5, "y": 1}
        assert merged["gauges"]["peak"] == 7.0

    def test_histogram_bins_add_elementwise(self):
        h1 = Histogram(nbuckets=4)
        h2 = Histogram(nbuckets=4)
        for v in (0.5, 3):
            h1.observe(v)
        for v in (3, 100):
            h2.observe(v)
        merged = merge_snapshots([
            {"histograms": {"h": h1.snapshot()}},
            {"histograms": {"h": h2.snapshot()}},
        ])
        out = merged["histograms"]["h"]
        assert out["count"] == 4
        assert out["sum"] == pytest.approx(106.5)
        assert out["buckets"] == [1, 0, 2, 1]

    def test_merge_pads_shorter_histograms(self):
        short = Histogram(nbuckets=3)
        long = Histogram(nbuckets=5)
        short.observe(100)  # clamps into short's last bin (index 2)
        long.observe(100)   # clamps into long's last bin (index 4)
        merged = merge_snapshots([
            {"histograms": {"h": short.snapshot()}},
            {"histograms": {"h": long.snapshot()}},
        ])
        buckets = merged["histograms"]["h"]["buckets"]
        assert len(buckets) == 5
        assert sum(buckets) == 2

    def test_merge_of_nothing_is_empty(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}
