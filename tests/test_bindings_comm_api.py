"""The mpi4py-workalike Comm API: upper-case buffer methods, lower-case
pickle methods, GPU buffers, and vector collectives."""

import numpy as np
import pytest

from repro.bindings import Comm
from repro.gpu import cupy_sim, numba_sim, pycuda_sim
from repro.mpi import constants as C
from repro.mpi import datatypes, ops
from repro.mpi.exceptions import CountError
from repro.mpi.status import Status
from repro.mpi.world import run_on_threads


def bind(fn):
    """Adapt a test body taking a bindings Comm to run_on_threads."""
    return lambda rt: fn(Comm(rt))


class TestUppercaseP2P:
    def test_send_recv_numpy(self):
        def work(comm):
            if comm.rank == 0:
                comm.Send(np.arange(5, dtype="i8"), 1, 3)
            elif comm.rank == 1:
                out = np.zeros(5, dtype="i8")
                st = Status()
                comm.Recv(out, 0, 3, st)
                assert np.array_equal(out, np.arange(5))
                assert st.Get_count(datatypes.LONG) == 5
        run_on_threads(2, bind(work))

    def test_send_recv_bytearray(self):
        def work(comm):
            if comm.rank == 0:
                comm.Send(bytearray(b"1234"), 1, 1)
            elif comm.rank == 1:
                out = bytearray(4)
                comm.Recv(out, 0, 1)
                assert bytes(out) == b"1234"
        run_on_threads(2, bind(work))

    def test_isend_irecv(self):
        def work(comm):
            if comm.rank == 0:
                req = comm.Isend(np.full(3, 7.0), 1, 2)
                req.wait()
            elif comm.rank == 1:
                out = np.zeros(3)
                req = comm.Irecv(out, 0, 2)
                req.Wait()
                assert np.allclose(out, 7.0)
        run_on_threads(2, bind(work))

    def test_sendrecv(self):
        def work(comm):
            other = 1 - comm.rank
            out = np.zeros(1, dtype="i4")
            comm.Sendrecv(
                np.array([comm.rank], dtype="i4"), other, 0, out, other, 0
            )
            assert out[0] == other
        run_on_threads(2, bind(work))

    def test_recv_any_source_status(self):
        def work(comm):
            if comm.rank == 0:
                out = np.zeros(1, dtype="i4")
                st = Status()
                comm.Recv(out, C.ANY_SOURCE, C.ANY_TAG, st)
                assert st.Get_source() == out[0]
            else:
                comm.Send(np.array([comm.rank], dtype="i4"), 0, comm.rank)
        run_on_threads(2, bind(work))


class TestUppercaseCollectives:
    def test_bcast_in_place(self):
        def work(comm):
            buf = np.zeros(6)
            if comm.rank == 0:
                buf[:] = np.arange(6)
            comm.Bcast(buf, 0)
            assert np.array_equal(buf, np.arange(6))
        run_on_threads(4, bind(work))

    def test_reduce(self):
        def work(comm):
            send = np.full(4, comm.rank + 1.0)
            recv = np.zeros(4) if comm.rank == 0 else None
            comm.Reduce(send, recv, ops.SUM, 0)
            if comm.rank == 0:
                assert np.allclose(recv, sum(range(1, comm.size + 1)))
        run_on_threads(4, bind(work))

    def test_allreduce(self):
        def work(comm):
            recv = np.zeros(3)
            comm.Allreduce(np.full(3, 2.0), recv, ops.SUM)
            assert np.allclose(recv, 2.0 * comm.size)
        run_on_threads(5, bind(work))

    def test_allreduce_typed_spec(self):
        def work(comm):
            sbuf = bytearray(np.full(4, 1.5, dtype="f4").tobytes())
            rbuf = bytearray(16)
            comm.Allreduce([sbuf, "MPI_FLOAT"], [rbuf, "MPI_FLOAT"])
            out = np.frombuffer(bytes(rbuf), dtype="f4")
            assert np.allclose(out, 1.5 * comm.size)
        run_on_threads(3, bind(work))

    def test_gather(self):
        def work(comm):
            send = np.array([comm.rank], dtype="i8")
            recv = np.zeros(comm.size, dtype="i8") if comm.rank == 0 else None
            comm.Gather(send, recv, 0)
            if comm.rank == 0:
                assert np.array_equal(recv, np.arange(comm.size))
        run_on_threads(4, bind(work))

    def test_scatter(self):
        def work(comm):
            send = (
                np.arange(comm.size * 2, dtype="i8")
                if comm.rank == 0 else None
            )
            recv = np.zeros(2, dtype="i8")
            comm.Scatter(send, recv, 0)
            assert np.array_equal(
                recv, [comm.rank * 2, comm.rank * 2 + 1]
            )
        run_on_threads(4, bind(work))

    def test_allgather(self):
        def work(comm):
            recv = np.zeros(comm.size, dtype="f8")
            comm.Allgather(np.array([float(comm.rank)]), recv)
            assert np.array_equal(recv, np.arange(comm.size, dtype="f8"))
        run_on_threads(5, bind(work))

    def test_alltoall(self):
        def work(comm):
            send = np.array(
                [comm.rank * 10 + j for j in range(comm.size)], dtype="i8"
            )
            recv = np.zeros(comm.size, dtype="i8")
            comm.Alltoall(send, recv)
            assert np.array_equal(
                recv, [i * 10 + comm.rank for i in range(comm.size)]
            )
        run_on_threads(4, bind(work))

    def test_reduce_scatter_default_counts(self):
        def work(comm):
            p = comm.size
            send = np.ones(p * 2)
            recv = np.zeros(2)
            comm.Reduce_scatter(send, recv)
            assert np.allclose(recv, p)
        run_on_threads(4, bind(work))

    def test_reduce_scatter_indivisible_requires_counts(self):
        def work(comm):
            send = np.ones(comm.size + 1)
            recv = np.zeros(1)
            with pytest.raises(CountError, match="divisible"):
                comm.Reduce_scatter(send, recv)
            comm.Barrier()
        run_on_threads(2, bind(work))

    def test_scan(self):
        def work(comm):
            recv = np.zeros(1)
            comm.Scan(np.array([1.0]), recv)
            assert recv[0] == comm.rank + 1
        run_on_threads(5, bind(work))

    def test_alltoall_indivisible_rejected(self):
        def work(comm):
            send = np.zeros(comm.size + 1, dtype="i8")
            recv = np.zeros(comm.size + 1, dtype="i8")
            with pytest.raises(CountError):
                comm.Alltoall(send, recv)
            comm.Barrier()
        run_on_threads(3, bind(work))


class TestVectorCollectives:
    def test_gatherv(self):
        def work(comm):
            mine = np.full(comm.rank + 1, comm.rank, dtype="i8")
            counts = [r + 1 for r in range(comm.size)]
            if comm.rank == 0:
                recv = np.zeros(sum(counts), dtype="i8")
                comm.Gatherv(mine, [recv, counts], 0)
                expect = np.concatenate(
                    [np.full(r + 1, r) for r in range(comm.size)]
                )
                assert np.array_equal(recv, expect)
            else:
                comm.Gatherv(mine, None, 0)
        run_on_threads(4, bind(work))

    def test_scatterv(self):
        def work(comm):
            counts = [r + 1 for r in range(comm.size)]
            recv = np.zeros(comm.rank + 1, dtype="i8")
            if comm.rank == 0:
                send = np.concatenate(
                    [np.full(r + 1, r * 100) for r in range(comm.size)]
                ).astype("i8")
                comm.Scatterv([send, counts], recv, 0)
            else:
                comm.Scatterv(None, recv, 0)
            assert np.array_equal(recv, np.full(comm.rank + 1, comm.rank * 100))
        run_on_threads(3, bind(work))

    def test_allgatherv(self):
        def work(comm):
            counts = [2 * r + 1 for r in range(comm.size)]
            mine = np.full(counts[comm.rank], comm.rank, dtype="f8")
            recv = np.zeros(sum(counts), dtype="f8")
            comm.Allgatherv(mine, [recv, counts])
            expect = np.concatenate(
                [np.full(counts[r], r) for r in range(comm.size)]
            )
            assert np.array_equal(recv, expect)
        run_on_threads(3, bind(work))

    def test_alltoallv(self):
        def work(comm):
            p = comm.size
            scounts = [comm.rank + 1] * p
            send = np.concatenate([
                np.full(comm.rank + 1, comm.rank * 10 + j) for j in range(p)
            ]).astype("i8")
            rcounts = [i + 1 for i in range(p)]
            recv = np.zeros(sum(rcounts), dtype="i8")
            comm.Alltoallv([send, scounts], [recv, rcounts])
            expect = np.concatenate([
                np.full(i + 1, i * 10 + comm.rank) for i in range(p)
            ])
            assert np.array_equal(recv, expect)
        run_on_threads(3, bind(work))

    def test_counts_length_validated(self):
        def work(comm):
            with pytest.raises(CountError, match="entries"):
                comm.Allgatherv(np.zeros(1), [np.zeros(3), [1, 1, 1]])
            comm.Barrier()
        run_on_threads(2, bind(work))


class TestLowercasePickle:
    def test_send_recv_object(self):
        def work(comm):
            if comm.rank == 0:
                comm.send({"a": [1, 2], "b": "text"}, 1, 4)
            elif comm.rank == 1:
                obj = comm.recv(0, 4)
                assert obj == {"a": [1, 2], "b": "text"}
        run_on_threads(2, bind(work))

    def test_isend_irecv_object(self):
        def work(comm):
            if comm.rank == 0:
                comm.isend((1, "two", 3.0), 1, 1).wait()
            elif comm.rank == 1:
                fut = comm.irecv(0, 1)
                assert fut.wait() == (1, "two", 3.0)
        run_on_threads(2, bind(work))

    def test_bcast_object(self):
        def work(comm):
            obj = comm.bcast(
                {"nested": {"x": comm.size}} if comm.rank == 0 else None, 0
            )
            assert obj == {"nested": {"x": comm.size}}
        run_on_threads(4, bind(work))

    def test_gather_scatter_objects(self):
        def work(comm):
            gathered = comm.gather(f"r{comm.rank}", 0)
            if comm.rank == 0:
                assert gathered == [f"r{i}" for i in range(comm.size)]
            else:
                assert gathered is None
            item = comm.scatter(
                [{"id": i} for i in range(comm.size)]
                if comm.rank == 0 else None, 0
            )
            assert item == {"id": comm.rank}
        run_on_threads(4, bind(work))

    def test_allgather_heterogeneous_sizes(self):
        def work(comm):
            out = comm.allgather("x" * (comm.rank * 100 + 1))
            assert [len(s) for s in out] == [
                r * 100 + 1 for r in range(comm.size)
            ]
        run_on_threads(3, bind(work))

    def test_alltoall_objects(self):
        def work(comm):
            out = comm.alltoall(
                [(comm.rank, j) for j in range(comm.size)]
            )
            assert out == [(i, comm.rank) for i in range(comm.size)]
        run_on_threads(3, bind(work))

    def test_reduce_allreduce_objects(self):
        def work(comm):
            total = comm.allreduce(comm.rank + 1)
            assert total == sum(range(1, comm.size + 1))
            # The pickle path with an ndarray is the point of this test.
            arr_total = comm.allreduce(np.full(2, 1.0))  # ombpy-lint: ignore[OMB001]
            assert np.allclose(arr_total, comm.size)
        run_on_threads(4, bind(work))

    def test_pickle_ndarray_roundtrip_preserves_dtype(self):
        def work(comm):
            obj = comm.bcast(
                np.arange(4, dtype="f4") if comm.rank == 0 else None, 0
            )
            assert obj.dtype == np.dtype("f4")
        run_on_threads(2, bind(work))

    def test_scatter_wrong_length_rejected(self):
        def work(comm):
            if comm.rank == 0:
                with pytest.raises(CountError):
                    comm.scatter([1], 0)  # needs comm.size == 2 objects
            comm.Barrier()
        run_on_threads(2, bind(work))


class TestGpuThroughAPI:
    @pytest.mark.parametrize("lib", ["cupy", "pycuda", "numba"])
    def test_allreduce_device_buffers(self, lib):
        def make(val):
            host = np.full(8, val)
            if lib == "cupy":
                return cupy_sim.array(host), cupy_sim.zeros(8)
            if lib == "pycuda":
                return (
                    pycuda_sim.gpuarray.to_gpu(host),
                    pycuda_sim.gpuarray.zeros(8),
                )
            return (
                numba_sim.cuda.to_device(host),
                numba_sim.cuda.device_array(8),
            )

        def readback(arr):
            return arr.get() if hasattr(arr, "get") else arr.copy_to_host()

        def work(comm):
            send, recv = make(float(comm.rank + 1))
            comm.Allreduce(send, recv, ops.SUM)
            assert np.allclose(
                readback(recv), sum(range(1, comm.size + 1))
            )
        run_on_threads(3, bind(work))

    def test_gpu_send_recv(self):
        def work(comm):
            if comm.rank == 0:
                comm.Send(cupy_sim.array(np.arange(4.0)), 1, 9)
            elif comm.rank == 1:
                out = numba_sim.cuda.device_array(4, dtype=np.float64)
                comm.Recv(out, 0, 9)
                assert np.allclose(out.copy_to_host(), np.arange(4.0))
        run_on_threads(2, bind(work))


class TestCommManagement:
    def test_dup_split(self):
        def work(comm):
            dup = comm.Dup()
            assert dup.Get_size() == comm.Get_size()
            sub = comm.Split(comm.rank % 2, comm.rank)
            total = sub.allreduce(1)
            assert total == sub.size
        run_on_threads(4, bind(work))
