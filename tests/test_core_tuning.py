"""Collective auto-tuner tests."""

import pytest

from repro.core.tuning import TuningResult, format_tuning_table, tune
from repro.mpi.collectives import selector


class TestTuningResult:
    def _result(self):
        r = TuningResult(op="allreduce", ranks=4)
        r.timings = {
            64: {"recursive_doubling": 10.0, "ring": 30.0},
            65536: {"recursive_doubling": 200.0, "ring": 120.0},
        }
        return r

    def test_winner_per_size(self):
        r = self._result()
        assert r.winner(64) == "recursive_doubling"
        assert r.winner(65536) == "ring"

    def test_winners_map(self):
        assert self._result().winners() == {
            64: "recursive_doubling", 65536: "ring"
        }

    def test_switch_point(self):
        r = self._result()
        assert r.switch_point("recursive_doubling", "ring") == 65536

    def test_switch_point_never(self):
        r = TuningResult(op="x", ranks=2)
        r.timings = {8: {"a": 1.0, "b": 2.0}}
        assert r.switch_point("a", "b") is None

    def test_format_table(self):
        text = format_tuning_table(self._result())
        assert "recursive_doubling" in text
        assert "winner" in text
        assert text.count("\n") == 3


class TestLiveTuning:
    def test_tune_allreduce_produces_all_sizes(self):
        result = tune(
            "allreduce", ranks=4, sizes=[16, 4096], iterations=5, warmup=1
        )
        assert set(result.timings) == {16, 4096}
        # All three allreduce algorithms run at 4 ranks.
        for size in result.timings:
            assert set(result.timings[size]) == set(
                selector.available("allreduce")
            )
            assert all(v > 0 for v in result.timings[size].values())

    def test_tune_restores_selector(self):
        tune("bcast", ranks=2, sizes=[8], iterations=2, warmup=0)
        assert selector.forced("bcast") is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="not tunable"):
            tune("scan2")

    def test_tune_skips_inapplicable_algorithms(self):
        # 3 ranks: allgather recursive_doubling needs a power of two and
        # falls back internally, so all algorithms still complete.
        result = tune(
            "allgather", ranks=3, sizes=[32], iterations=3, warmup=0
        )
        assert 32 in result.timings
        assert len(result.timings[32]) >= 2
