"""Correctness of every collective, across world sizes and algorithms."""

import numpy as np
import pytest

from repro.mpi import ops
from repro.mpi.collectives import selector
from repro.mpi.exceptions import CountError
from repro.mpi.world import run_on_threads

SIZES = (1, 2, 3, 4, 5, 8)
PAYLOAD_SIZES = (1, 7, 64, 1000)


def run_forced(op, algorithm, n, work, timeout=60.0):
    """Force one algorithm globally, run the world, then clear.

    Forcing must happen in the main thread before any rank starts:
    selector state is global, and per-rank enter/exit would let ranks
    disagree about the algorithm mid-collective.
    """
    selector.force(op, algorithm)
    try:
        return run_on_threads(n, work, timeout=timeout)
    finally:
        selector.force(op, None)


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_barrier_completes(self, n):
        def work(comm):
            for _ in range(3):
                comm.barrier()
        run_on_threads(n, work)

    def test_barrier_synchronizes(self):
        """No rank leaves the barrier before every rank has entered it."""
        import threading

        entered = []
        lock = threading.Lock()

        def work(comm):
            with lock:
                entered.append(comm.rank)
            comm.barrier()
            with lock:
                assert len(entered) == comm.size
        run_on_threads(6, work)


class TestBcast:
    @pytest.mark.parametrize("algorithm", selector.available("bcast"))
    @pytest.mark.parametrize("n", (2, 4, 5))
    def test_algorithms(self, algorithm, n):
        payload = bytes(range(256)) * 5
        def work(comm):
            for root in range(comm.size):
                out = comm.bcast_bytes(
                    payload if comm.rank == root else None, root
                )
                assert out == payload
        run_forced("bcast", algorithm, n, work)

    @pytest.mark.parametrize("nbytes", (1, 100, 20000, 300000))
    def test_sizes_cross_selector_threshold(self, nbytes):
        payload = b"z" * nbytes
        def work(comm):
            out = comm.bcast_bytes(payload if comm.rank == 0 else None, 0)
            assert out == payload
        run_on_threads(5, work)

    def test_single_rank(self):
        def work(comm):
            assert comm.bcast_bytes(b"solo", 0) == b"solo"
        run_on_threads(1, work)


class TestReduce:
    @pytest.mark.parametrize("algorithm", selector.available("reduce"))
    @pytest.mark.parametrize("n", (2, 4, 5))
    def test_sum_algorithms(self, algorithm, n):
        def work(comm):
            send = np.full(40, comm.rank + 1.0)
            out = comm.reduce_array(send, ops.SUM, 0)
            if comm.rank == 0:
                expect = sum(range(1, comm.size + 1))
                assert np.allclose(out, expect)
            else:
                assert out is None
        run_forced("reduce", algorithm, n, work)

    @pytest.mark.parametrize("op,reduction", [
        (ops.SUM, np.sum), (ops.MAX, np.max), (ops.MIN, np.min),
        (ops.PROD, np.prod),
    ])
    def test_ops(self, op, reduction):
        def work(comm):
            send = np.array([float(comm.rank + 1), float(10 - comm.rank)])
            out = comm.reduce_array(send, op, 0)
            if comm.rank == 0:
                all_data = np.array([
                    [float(r + 1), float(10 - r)] for r in range(comm.size)
                ])
                assert np.allclose(out, reduction(all_data, axis=0))
        run_on_threads(4, work)

    def test_noncommutative_preserves_rank_order(self):
        # "first" keeps the lower-rank operand: result must be rank 0's data.
        first = ops.create(lambda a, b: a, commute=False)
        def work(comm):
            out = comm.reduce_array(
                np.array([float(comm.rank)]), first, 0
            )
            if comm.rank == 0:
                assert out[0] == 0.0
        run_on_threads(5, work)

    def test_nonzero_root(self):
        def work(comm):
            out = comm.reduce_array(np.ones(3), ops.SUM, 2)
            if comm.rank == 2:
                assert np.allclose(out, comm.size)
            else:
                assert out is None
        run_on_threads(4, work)


class TestAllreduce:
    @pytest.mark.parametrize("algorithm", selector.available("allreduce"))
    @pytest.mark.parametrize("n", (2, 4, 5, 8))
    def test_algorithms(self, algorithm, n):
        def work(comm):
            send = np.arange(32, dtype="f8") + comm.rank
            out = comm.allreduce_array(send, ops.SUM)
            expect = (
                np.arange(32, dtype="f8") * comm.size
                + sum(range(comm.size))
            )
            assert np.allclose(out, expect)
        run_forced("allreduce", algorithm, n, work)

    def test_int_dtype_preserved(self):
        def work(comm):
            out = comm.allreduce_array(np.ones(4, dtype="i4"), ops.SUM)
            assert out.dtype == np.dtype("i4")
            assert out[0] == comm.size
        run_on_threads(3, work)

    def test_max_op(self):
        def work(comm):
            out = comm.allreduce_array(
                np.array([float(comm.rank)]), ops.MAX
            )
            assert out[0] == comm.size - 1
        run_on_threads(6, work)

    def test_large_array_ring_path(self):
        def work(comm):
            send = np.full(50_000, 2.0)
            out = comm.allreduce_array(send, ops.SUM)
            assert np.allclose(out, 2.0 * comm.size)
        run_on_threads(5, work)


class TestGatherScatter:
    @pytest.mark.parametrize("algorithm", selector.available("gather"))
    @pytest.mark.parametrize("n", (2, 4, 5))
    def test_gather_algorithms(self, algorithm, n):
        def work(comm):
            for root in range(comm.size):
                out = comm.gather_bytes(bytes([comm.rank] * 3), root)
                if comm.rank == root:
                    assert out == [bytes([r] * 3) for r in range(comm.size)]
                else:
                    assert out is None
        run_forced("gather", algorithm, n, work)

    @pytest.mark.parametrize("algorithm", selector.available("scatter"))
    @pytest.mark.parametrize("n", (2, 4, 5))
    def test_scatter_algorithms(self, algorithm, n):
        def work(comm):
            for root in range(comm.size):
                blocks = (
                    [bytes([i] * 4) for i in range(comm.size)]
                    if comm.rank == root else None
                )
                out = comm.scatter_bytes(blocks, root)
                assert out == bytes([comm.rank] * 4)
        run_forced("scatter", algorithm, n, work)

    def test_scatter_unequal_blocks_rejected(self):
        def work(comm):
            blocks = [b"a", b"bb"] if comm.rank == 0 else None
            if comm.rank == 0:
                with pytest.raises(CountError):
                    comm.scatter_bytes(blocks, 0)
        run_on_threads(1, work)


class TestAllgather:
    @pytest.mark.parametrize("algorithm", selector.available("allgather"))
    @pytest.mark.parametrize("n", (2, 4, 8))
    def test_algorithms_pow2(self, algorithm, n):
        def work(comm):
            out = comm.allgather_bytes(bytes([comm.rank] * 5))
            assert out == [bytes([r] * 5) for r in range(comm.size)]
        run_forced("allgather", algorithm, n, work)

    @pytest.mark.parametrize("n", (3, 5, 7))
    def test_non_pow2_sizes(self, n):
        def work(comm):
            out = comm.allgather_bytes(bytes([comm.rank]))
            assert out == [bytes([r]) for r in range(comm.size)]
        run_on_threads(n, work)


class TestAlltoall:
    @pytest.mark.parametrize("algorithm", selector.available("alltoall"))
    @pytest.mark.parametrize("n", (2, 3, 4, 5, 8))
    def test_algorithms(self, algorithm, n):
        def work(comm):
            blocks = [
                bytes([comm.rank, j, 0xAB]) for j in range(comm.size)
            ]
            out = comm.alltoall_bytes(blocks)
            assert out == [
                bytes([i, comm.rank, 0xAB]) for i in range(comm.size)
            ]
        run_forced("alltoall", algorithm, n, work)

    def test_block_count_mismatch_rejected(self):
        def work(comm):
            with pytest.raises(CountError):
                comm.alltoall_bytes([b"x"] * (comm.size + 1))
        run_on_threads(2, work)


class TestReduceScatter:
    @pytest.mark.parametrize(
        "algorithm", selector.available("reduce_scatter")
    )
    @pytest.mark.parametrize("n", (2, 4, 8))
    def test_algorithms(self, algorithm, n):
        def work(comm):
            p = comm.size
            send = np.arange(p * 4, dtype="f8") * (comm.rank + 1)
            out = comm.reduce_scatter_array(send, [4] * p, ops.SUM)
            factor = sum(range(1, p + 1))
            expect = np.arange(
                comm.rank * 4, comm.rank * 4 + 4, dtype="f8"
            ) * factor
            assert np.allclose(out, expect)
        run_forced("reduce_scatter", algorithm, n, work)

    def test_uneven_counts(self):
        def work(comm):
            counts = [1, 2, 3][: comm.size]
            send = np.ones(sum(counts))
            out = comm.reduce_scatter_array(send, counts, ops.SUM)
            assert out.shape[0] == counts[comm.rank]
            assert np.allclose(out, comm.size)
        run_on_threads(3, work)

    def test_count_sum_mismatch_rejected(self):
        def work(comm):
            with pytest.raises(CountError):
                comm.reduce_scatter_array(
                    np.ones(5), [1] * comm.size, ops.SUM
                )
        run_on_threads(3, work)


class TestScan:
    @pytest.mark.parametrize("algorithm", selector.available("scan"))
    @pytest.mark.parametrize("n", (1, 2, 4, 5, 8))
    def test_inclusive_prefix_sum(self, algorithm, n):
        def work(comm):
            out = comm.scan_array(
                np.array([comm.rank + 1.0, 1.0]), ops.SUM
            )
            assert out[0] == sum(range(1, comm.rank + 2))
            assert out[1] == comm.rank + 1
        run_forced("scan", algorithm, n, work)

    def test_scan_noncommutative_order(self):
        # Concatenation-like op encoded numerically: keep lower-rank value.
        first = ops.create(lambda a, b: a, commute=False)
        def work(comm):
            out = comm.scan_array(np.array([float(comm.rank)]), first)
            assert out[0] == 0.0  # prefix always starts at rank 0's value
        run_on_threads(4, work)


class TestVectorCollectives:
    @pytest.mark.parametrize("n", (1, 2, 4, 5))
    def test_gatherv_ragged(self, n):
        def work(comm):
            mine = bytes([comm.rank]) * (comm.rank + 1)
            out = comm.gatherv_bytes(mine, None, 0)
            if comm.rank == 0:
                assert out == [
                    bytes([r]) * (r + 1) for r in range(comm.size)
                ]
        run_on_threads(n, work)

    def test_gatherv_with_explicit_counts(self):
        def work(comm):
            counts = [r + 1 for r in range(comm.size)]
            mine = b"k" * (comm.rank + 1)
            out = comm.gatherv_bytes(mine, counts, 0)
            if comm.rank == 0:
                assert [len(b) for b in out] == counts
        run_on_threads(4, work)

    @pytest.mark.parametrize("n", (2, 4, 5))
    def test_scatterv_ragged(self, n):
        def work(comm):
            blocks = (
                [bytes([j]) * (j + 2) for j in range(comm.size)]
                if comm.rank == 1 % comm.size else None
            )
            out = comm.scatterv_bytes(blocks, 1 % comm.size)
            assert out == bytes([comm.rank]) * (comm.rank + 2)
        run_on_threads(n, work)

    @pytest.mark.parametrize("n", (2, 3, 5))
    def test_allgatherv(self, n):
        def work(comm):
            counts = [r * 2 + 1 for r in range(comm.size)]
            mine = bytes([comm.rank]) * counts[comm.rank]
            out = comm.allgatherv_bytes(mine, counts)
            assert out == [
                bytes([r]) * counts[r] for r in range(comm.size)
            ]
        run_on_threads(n, work)

    def test_allgatherv_count_mismatch_rejected(self):
        def work(comm):
            counts = [5] * comm.size
            with pytest.raises(CountError):
                comm.allgatherv_bytes(b"xx", counts)  # claims 5, sends 2
        run_on_threads(2, work)

    @pytest.mark.parametrize("n", (2, 3, 5, 8))
    def test_alltoallv_ragged(self, n):
        def work(comm):
            blocks = [
                bytes([comm.rank]) * (j + 1) for j in range(comm.size)
            ]
            out = comm.alltoallv_bytes(blocks)
            assert out == [
                bytes([i]) * (comm.rank + 1) for i in range(comm.size)
            ]
        run_on_threads(n, work)


class TestConcurrentCollectives:
    def test_back_to_back_mixed_collectives(self):
        """Consecutive different collectives must not cross-match."""
        def work(comm):
            for i in range(5):
                comm.barrier()
                b = comm.bcast_bytes(
                    bytes([i]) if comm.rank == 0 else None, 0
                )
                assert b == bytes([i])
                s = comm.allreduce_array(
                    np.array([float(i)]), ops.SUM
                )
                assert s[0] == i * comm.size
                g = comm.allgather_bytes(bytes([comm.rank, i]))
                assert g[comm.rank] == bytes([comm.rank, i])
        run_on_threads(5, work)
