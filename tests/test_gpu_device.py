"""Simulated-device tests: allocation, transfers, accounting, streams."""

import numpy as np
import pytest

from repro.gpu.device import Device, DeviceError, Stream


@pytest.fixture
def dev():
    return Device(0, memory_bytes=1 << 20)  # 1 MB device for tests


class TestAllocation:
    def test_malloc_free(self, dev):
        alloc = dev.malloc(256)
        assert alloc.nbytes == 256
        assert dev.allocated_bytes() == 256
        dev.free(alloc.ptr)
        assert dev.allocated_bytes() == 0

    def test_distinct_pointers(self, dev):
        a, b = dev.malloc(16), dev.malloc(16)
        assert a.ptr != b.ptr

    def test_oom(self, dev):
        dev.malloc(1 << 19)
        with pytest.raises(DeviceError, match="out of device memory"):
            dev.malloc(1 << 20)

    def test_negative_size_rejected(self, dev):
        with pytest.raises(DeviceError, match="negative"):
            dev.malloc(-1)

    def test_double_free_rejected(self, dev):
        alloc = dev.malloc(8)
        dev.free(alloc.ptr)
        with pytest.raises(DeviceError, match="unknown device pointer"):
            dev.free(alloc.ptr)

    def test_resolve_unknown_pointer(self, dev):
        with pytest.raises(DeviceError, match="live allocation"):
            dev.resolve(0x1234)

    def test_resolve_after_free_rejected(self, dev):
        alloc = dev.malloc(8)
        dev.free(alloc.ptr)
        with pytest.raises(DeviceError):
            dev.resolve(alloc.ptr)

    def test_live_allocation_count(self, dev):
        a = dev.malloc(8)
        dev.malloc(8)
        assert dev.live_allocations() == 2
        dev.free(a.ptr)
        assert dev.live_allocations() == 1


class TestTransfers:
    def test_h2d_d2h_roundtrip(self, dev):
        alloc = dev.malloc(8)
        dev.memcpy_htod(alloc, b"\x01\x02\x03\x04\x05\x06\x07\x08")
        out = bytearray(8)
        dev.memcpy_dtoh(out, alloc, 8)
        assert bytes(out) == b"\x01\x02\x03\x04\x05\x06\x07\x08"

    def test_h2d_offset(self, dev):
        alloc = dev.malloc(8)
        dev.memcpy_htod(alloc, b"\xff\xff", offset=4)
        out = bytearray(8)
        dev.memcpy_dtoh(out, alloc, 8)
        assert bytes(out) == b"\x00" * 4 + b"\xff\xff" + b"\x00" * 2

    def test_h2d_overrun_rejected(self, dev):
        alloc = dev.malloc(4)
        with pytest.raises(DeviceError, match="overruns"):
            dev.memcpy_htod(alloc, b"12345")

    def test_d2h_overrun_rejected(self, dev):
        alloc = dev.malloc(4)
        with pytest.raises(DeviceError, match="overruns"):
            dev.memcpy_dtoh(bytearray(8), alloc, 8)

    def test_d2d(self, dev):
        a, b = dev.malloc(4), dev.malloc(4)
        dev.memcpy_htod(a, b"abcd")
        dev.memcpy_dtod(b, a, 4)
        out = bytearray(4)
        dev.memcpy_dtoh(out, b, 4)
        assert bytes(out) == b"abcd"

    def test_stats_accumulate(self, dev):
        alloc = dev.malloc(16)
        dev.memcpy_htod(alloc, b"x" * 16)
        dev.memcpy_dtoh(bytearray(16), alloc, 16)
        assert dev.stats.h2d_bytes == 16
        assert dev.stats.d2h_bytes == 16
        assert dev.stats.h2d_calls == 1
        assert dev.stats.d2h_calls == 1
        dev.stats.reset()
        assert dev.stats.h2d_bytes == 0


class TestStreamsAndOverhead:
    def test_stream_synchronize_counts(self, dev):
        s = Stream(dev)
        before = dev.sync_count
        s.synchronize()
        assert dev.sync_count == before + 1

    def test_destroyed_stream_rejected(self, dev):
        s = Stream(dev)
        s.destroyed = True
        with pytest.raises(DeviceError):
            s.synchronize()

    def test_access_overhead_injection(self, dev):
        import time

        dev.set_access_overhead("numba", 0.001)
        t0 = time.perf_counter()
        dev.account_access("numba")
        assert time.perf_counter() - t0 >= 0.001

    def test_zero_overhead_fast(self, dev):
        import time

        t0 = time.perf_counter()
        for _ in range(100):
            dev.account_access("cupy")
        assert time.perf_counter() - t0 < 0.1

    def test_negative_overhead_rejected(self, dev):
        with pytest.raises(DeviceError):
            dev.set_access_overhead("cupy", -1.0)

    def test_kernel_launch_accounting(self, dev):
        dev.launch_kernel()
        dev.launch_kernel()
        assert dev.stats.kernel_launches == 2
