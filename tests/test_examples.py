"""Every example script must run end-to-end (scaled-down arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Latency (us)" in out
        assert "Allreduce" in out

    def test_distributed_ml(self):
        out = run_example("distributed_ml.py", "--ranks", "2",
                          "--scale", "0.004")
        assert "speedup" in out
        assert "k-NN" in out

    def test_gpu_buffers(self):
        out = run_example("gpu_buffers.py", "--ranks", "2")
        assert "cupy allreduce" in out
        assert "device traffic" in out

    def test_cluster_projection(self):
        out = run_example("cluster_projection.py", "--cluster", "RI2")
        assert "RI2" in out
        assert "Projected distributed-ML speedups" in out

    def test_task_pool_and_rma(self):
        out = run_example("task_pool_and_rma.py", "--ranks", "3")
        assert "accumulated counter" in out
        assert "halo exchange verified" in out

    def test_heat_diffusion(self):
        out = run_example(
            "heat_diffusion.py", "--ranks", "4", "--n", "24",
            "--iters", "40",
        )
        assert "block mean temperature" in out
        assert "hotter" in out

    def test_monte_carlo_pi(self):
        out = run_example("monte_carlo_pi.py", "--ranks", "3",
                          "--samples", "200000")
        assert "pi ~=" in out

    def test_quickstart_under_launcher(self):
        from repro.mpi.launcher import launch

        rc = launch(2, [str(EXAMPLES / "quickstart.py")], timeout=240)
        assert rc == 0

    def test_monte_carlo_under_launcher(self):
        from repro.mpi.launcher import launch

        rc = launch(
            2,
            [str(EXAMPLES / "monte_carlo_pi.py"), "--samples", "100000"],
            timeout=240,
        )
        assert rc == 0
