"""The runtime MPI verifier (``repro.analysis.verify``).

All fixtures run on the threads transport, where ranks share one
cross-rank state and wait-for-graph deadlock detection is exact.  The
key property throughout: buggy programs that would otherwise *hang*
instead raise a bounded, descriptive diagnostic.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import (
    CollectiveMismatchError,
    CountMismatchError,
    DeadlockError,
    PendingOperationError,
    verify,
)
from repro.bindings.comm_api import Comm as BindingsComm
from repro.mpi import ops
from repro.mpi.world import run_on_threads

FAST = dict(grace=0.1, op_timeout=5.0)


class TestDeadlockDetection:
    def test_head_to_head_recv_raises_not_hangs(self):
        """The classic 2-rank deadlock: both ranks block in recv."""

        def body(comm):
            with verify(comm, **FAST):
                comm.recv_bytes(1 - comm.rank, 7, 64)

        start = time.monotonic()
        with pytest.raises(DeadlockError) as excinfo:
            run_on_threads(2, body, timeout=30)
        elapsed = time.monotonic() - start
        # Bounded: detection is driven by `grace`, not op_timeout.
        assert elapsed < 10
        msg = str(excinfo.value)
        # The diagnostic names both ranks and their pending operations.
        assert "rank 0" in msg and "rank 1" in msg
        assert "recv(source=1, tag=7" in msg
        assert "recv(source=0, tag=7" in msg

    def test_three_rank_cycle(self):
        """0 waits on 1 waits on 2 waits on 0."""

        def body(comm):
            with verify(comm, **FAST):
                comm.recv_bytes((comm.rank + 1) % 3, 0, 64)

        with pytest.raises(DeadlockError) as excinfo:
            run_on_threads(3, body, timeout=30)
        msg = str(excinfo.value)
        assert "rank 0" in msg and "rank 1" in msg and "rank 2" in msg

    def test_timeout_escalation_without_cycle(self):
        """A rank waiting on a peer that exited cleanly has no wait-for
        cycle; the per-op timeout still converts the hang into an error."""

        def body(comm):
            with verify(comm, grace=0.1, op_timeout=0.5):
                if comm.rank == 0:
                    comm.recv_bytes(1, 9, 64)

        with pytest.raises(DeadlockError, match="rank 0"):
            run_on_threads(2, body, timeout=30)

    def test_ping_pong_not_a_false_positive(self):
        """Alternating blocking traffic momentarily looks like mutual
        waiting; the done()-recheck must keep it clean."""

        def body(comm):
            peer = 1 - comm.rank
            with verify(comm, **FAST) as v:
                for i in range(50):
                    if comm.rank == 0:
                        comm.send_bytes(b"x" * 8, peer, i)
                        comm.recv_bytes(peer, i, 8)
                    else:
                        comm.recv_bytes(peer, i, 8)
                        comm.send_bytes(b"y" * 8, peer, i)
                return v.findings

        results = run_on_threads(2, body, timeout=60)
        assert results == [[], []]


class TestCollectiveMismatch:
    def test_bcast_root_mismatch(self):
        def body(comm):
            with verify(comm, **FAST):
                # A root-only bcast never blocks, so a leading barrier
                # keeps both ranks inside one verify session; then every
                # rank names itself as root (and so supplies a payload)
                # — the disagreement is the bug under test.
                comm.barrier()
                comm.bcast_bytes(b"x", root=comm.rank)

        with pytest.raises((CollectiveMismatchError, DeadlockError)) as exc:
            run_on_threads(2, body, timeout=30)
        # The shared ledger catches the root disagreement by name.
        if isinstance(exc.value, CollectiveMismatchError):
            assert "bcast" in str(exc.value)
            assert "root" in str(exc.value)

    def test_different_collectives_same_slot(self):
        def body(comm):
            with verify(comm, **FAST):
                if comm.rank == 0:
                    comm.barrier()
                else:
                    comm.bcast_bytes(None, root=0)

        with pytest.raises((CollectiveMismatchError, DeadlockError)):
            run_on_threads(2, body, timeout=30)

    def test_reduce_op_mismatch(self):
        def body(comm):
            op = ops.SUM if comm.rank == 0 else ops.MAX
            with verify(comm, **FAST):
                comm.allreduce_array(np.ones(4), op)

        with pytest.raises((CollectiveMismatchError, DeadlockError)) as exc:
            run_on_threads(2, body, timeout=30)
        if isinstance(exc.value, CollectiveMismatchError):
            assert "allreduce" in str(exc.value)

    def test_matching_collectives_clean(self):
        def body(comm):
            with verify(comm, **FAST) as v:
                comm.barrier()
                comm.bcast_bytes(b"abc" if comm.rank == 0 else None, root=0)
                comm.allreduce_array(np.ones(8), ops.SUM)
                comm.barrier()
                return v.findings

        results = run_on_threads(4, body, timeout=60)
        assert all(f == [] for f in results)


class TestCountMismatch:
    def test_short_receive_strict_raises(self):
        def body(comm):
            b = BindingsComm(comm)
            with verify(comm, **FAST):
                if comm.rank == 0:
                    b.Send(np.zeros(4, dtype="f8"), 1)
                else:
                    b.Recv(np.zeros(8, dtype="f8"), 0)

        with pytest.raises(CountMismatchError, match="32 bytes"):
            run_on_threads(2, body, timeout=30)

    def test_short_receive_nonstrict_records(self):
        def body(comm):
            b = BindingsComm(comm)
            with verify(comm, grace=0.1, op_timeout=5.0, strict=False) as v:
                if comm.rank == 0:
                    b.Send(np.zeros(4, dtype="f8"), 1)
                else:
                    b.Recv(np.zeros(8, dtype="f8"), 0)
                comm.barrier()
                return [f.rule for f in v.findings]

        results = run_on_threads(2, body, timeout=30)
        assert results[0] == []
        assert results[1] == ["OMB101"]

    def test_exact_receive_clean(self):
        def body(comm):
            b = BindingsComm(comm)
            with verify(comm, **FAST) as v:
                if comm.rank == 0:
                    b.Send(np.arange(8, dtype="f8"), 1)
                else:
                    buf = np.zeros(8, dtype="f8")
                    b.Recv(buf, 0)
                    assert buf[7] == 7.0
                return v.findings

        results = run_on_threads(2, body, timeout=30)
        assert results == [[], []]


class TestFinalizeLeaks:
    def test_unmatched_irecv_raises_at_exit(self):
        def body(comm):
            with verify(comm, **FAST):
                if comm.rank == 0:
                    comm.irecv_bytes(1, 3, 64)
                comm.barrier()

        with pytest.raises(PendingOperationError) as excinfo:
            run_on_threads(2, body, timeout=30)
        assert "pending at finalize" in str(excinfo.value)
        assert "tag=3" in str(excinfo.value)

    def test_completed_irecv_clean(self):
        def body(comm):
            with verify(comm, **FAST) as v:
                if comm.rank == 0:
                    ticket = comm.irecv_bytes(1, 3, 64)
                    ticket.wait(5.0)
                else:
                    comm.send_bytes(b"done", 0, 3)
                comm.barrier()
                return v.findings

        results = run_on_threads(2, body, timeout=30)
        assert results == [[], []]


class TestCleanTraffic:
    def test_mixed_workload_passes(self):
        """Representative benchmark-shaped traffic is undisturbed."""

        def body(comm):
            with verify(comm, **FAST) as v:
                if comm.rank == 0:
                    comm.send_bytes(b"hello", 1, 5)
                elif comm.rank == 1:
                    got, _status = comm.recv_bytes(0, 5, 16)
                    assert got == b"hello"
                comm.barrier()
                out = comm.allreduce_array(np.ones(16), ops.SUM)
                assert out[0] == comm.size
                return v.findings

        results = run_on_threads(4, body, timeout=60)
        assert all(f == [] for f in results)

    def test_sequential_verify_sessions_do_not_leak_state(self):
        """The collective ledger must reset between verified regions."""

        def body(comm):
            with verify(comm, **FAST):
                comm.barrier()
            # Second session re-registers on the same fabric; a stale
            # ledger entry would mis-flag this barrier as call #0 again.
            with verify(comm, **FAST) as v:
                comm.bcast_bytes(b"x" if comm.rank == 0 else None, root=0)
                return v.findings

        results = run_on_threads(2, body, timeout=30)
        assert results == [[], []]


class TestRunnerIntegration:
    def test_validate_flag_runs_benchmark_under_verifier(self):
        from repro.core import Options, get_benchmark
        from repro.core.runner import BenchContext

        bench = get_benchmark("osu_latency")
        opts = Options(
            min_size=1, max_size=64, iterations=2, warmup=1, validate=True
        )
        tables = run_on_threads(
            2, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)

    def test_validate_collective_benchmark(self):
        from repro.core import Options, get_benchmark
        from repro.core.runner import BenchContext

        bench = get_benchmark("osu_allreduce")
        opts = Options(
            min_size=4, max_size=64, iterations=2, warmup=1, validate=True
        )
        tables = run_on_threads(
            4, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)


class TestResolveTargets:
    def test_accepts_bindings_comm(self):
        def body(comm):
            b = BindingsComm(comm)
            with verify(b, **FAST) as v:
                b.Barrier()
                return v.findings

        assert run_on_threads(2, body, timeout=30) == [[], []]

    def test_rejects_non_communicator(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            with verify(object()):
                pass
