"""End-to-end ``ombpy-campaign`` CLI tests (cold backend, tiny grids)."""

import json
import os

import pytest

from repro.campaign import cli
from repro.campaign.config import ENV_CONCURRENCY
from repro.campaign.journal import CAMPAIGN_RESUMED, CELL_DONE, replay
from repro.campaign.store import JOURNAL_FILE, SPEC_FILE, ResultsStore

SPEC_DOC = {
    "name": "cli-e2e",
    "sweep": [
        {
            "benchmarks": ["osu_latency"],
            "transports": ["threads"],
            "ranks": [2],
            "sizes": ["1:16"],
            "iterations": 3,
            "warmup": 1,
        }
    ],
}

KNOBS = ["--backend", "cold", "--cell-timeout", "120"]


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_DOC))
    return str(path)


@pytest.fixture
def out_dir(tmp_path):
    return str(tmp_path / "campaign")


def test_run_resume_status_report_cycle(spec_file, out_dir, tmp_path,
                                        capsys):
    assert cli.main(["run", spec_file, "--out", out_dir, *KNOBS]) == 0
    out = capsys.readouterr().out
    assert "complete — 1/1 cells done" in out

    store = ResultsStore(out_dir)
    manifest = store.read_manifest()
    assert manifest["status"] == "complete"
    assert len(manifest["completed"]) == 1
    records = store.load()
    assert len(records) == 1
    assert records[0]["rows"]                 # real benchmark output
    assert records[0]["backend"] == "cold"

    # A no-op resume completes without re-running anything.
    assert cli.main(["resume", out_dir, *KNOBS]) == 0
    state = replay(os.path.join(out_dir, JOURNAL_FILE))
    assert state.resumes == 1
    done_records = sum(
        1 for r in _journal(out_dir) if r["type"] == CELL_DONE
    )
    assert done_records == 1                  # exactly once, ever

    assert cli.main(["status", out_dir]) == 0
    out = capsys.readouterr().out
    assert "done=1" in out and "pending=0" in out

    csv_path = str(tmp_path / "results.csv")
    assert cli.main(["report", out_dir, "--csv", csv_path]) == 0
    out = capsys.readouterr().out
    assert "complete" in out and "wrote" in out
    with open(csv_path, encoding="utf-8") as fh:
        lines = fh.read().strip().splitlines()
    assert lines[0].startswith("cell,benchmark,")
    assert len(lines) > 1

    # Gate the campaign against its own results: trivially clean.
    baseline = os.path.join(out_dir, "results.jsonl")
    assert cli.main(["report", out_dir, "--gate", baseline]) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_rerun_of_existing_journal_refused(spec_file, out_dir, capsys):
    assert cli.main(["run", spec_file, "--out", out_dir, *KNOBS]) == 0
    capsys.readouterr()
    assert cli.main(["run", spec_file, "--out", out_dir, *KNOBS]) == 2
    assert "resume" in capsys.readouterr().err


def test_resume_rejects_fingerprint_mismatch(spec_file, out_dir, capsys):
    assert cli.main(["run", spec_file, "--out", out_dir, *KNOBS]) == 0
    capsys.readouterr()
    spec_path = os.path.join(out_dir, SPEC_FILE)
    with open(spec_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    doc["sweep"][0]["iterations"] = 99        # a different sweep now
    with open(spec_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    assert cli.main(["resume", out_dir, *KNOBS]) == 2
    err = capsys.readouterr().err
    assert "fingerprint mismatch" in err
    # No resume record was appended to the refused journal.
    assert all(r["type"] != CAMPAIGN_RESUMED for r in _journal(out_dir))


def test_resume_without_journal_refused(out_dir, capsys):
    assert cli.main(["resume", out_dir, *KNOBS]) == 2
    assert "no journal" in capsys.readouterr().err


def test_bad_env_knob_fails_fast_naming_variable(spec_file, out_dir,
                                                 monkeypatch, capsys):
    monkeypatch.setenv(ENV_CONCURRENCY, "0")
    assert cli.main(["run", spec_file, "--out", out_dir, *KNOBS]) == 2
    assert ENV_CONCURRENCY in capsys.readouterr().err


def test_cli_knob_overrides_env(spec_file, out_dir, monkeypatch):
    monkeypatch.setenv(ENV_CONCURRENCY, "0")  # invalid, but overridden
    assert cli.main(["run", spec_file, "--out", out_dir,
                     "--concurrency", "1", *KNOBS]) == 0


def test_report_gate_failure_exits_nonzero(spec_file, out_dir, tmp_path,
                                           capsys):
    assert cli.main(["run", spec_file, "--out", out_dir, *KNOBS]) == 0
    capsys.readouterr()
    # A snapshot baseline claiming latency used to be 1000x lower.
    records = ResultsStore(out_dir).load()
    sizes = [row["size"] for row in records[0]["rows"]]
    baseline = tmp_path / "BENCH_fast.json"
    baseline.write_text(json.dumps({
        "results": {"osu_latency": {"sizes": sizes,
                                    "off": [1e-9] * len(sizes)}}
    }))
    assert cli.main(["report", out_dir, "--gate", str(baseline)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def _journal(out_dir):
    with open(os.path.join(out_dir, JOURNAL_FILE),
              encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]
