"""Benchmark service tests: admission control, deadlines, isolation.

The chaos/degradation suite lives in ``test_service_chaos.py``; this
file covers the non-destructive contract — config validation, the wire
protocol, the happy path over a real UDS socket, queue backpressure,
priority ordering, deadline enforcement, cancellation, drain, and
concurrent-job isolation under the runtime verifier.
"""

import os
import threading
import time

import pytest

from repro.core.results import ResultRow, ResultTable
from repro.service import BenchmarkService, JobSpec, ServiceClient, ServiceConfig
from repro.service.client import ServiceError
from repro.service.config import (
    ENV_DEADLINE, ENV_DRAIN_GRACE, ENV_QUEUE_DEPTH, ENV_RETRY_MAX,
)
from repro.service.pool import MAX_JOB_SERIAL, ThreadRankPool, job_context
from repro.service.protocol import (
    CANCELLED, DEADLINE, DONE, FAILED, KIND_SLEEP, table_from_wire,
    table_to_wire,
)
from repro.service.server import DEGRADED, DRAINING, SERVING, STOPPED

FAST = {"min_size": 1, "max_size": 16, "iterations": 3, "warmup": 1}


@pytest.fixture
def service(tmp_path):
    """A running 4-rank threads-pool service over a UDS socket."""
    svc = BenchmarkService(
        pool_size=4,
        socket_path=str(tmp_path / "svc.sock"),
        config=ServiceConfig(queue_depth=4, default_deadline_s=60.0),
    )
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    with ServiceClient(socket_path=service.address, timeout=30.0) as c:
        yield c


class TestConfig:
    def test_defaults(self):
        cfg = ServiceConfig.from_env()
        assert cfg.queue_depth == 64
        assert cfg.default_deadline_s == 120.0
        assert cfg.retry_max == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_QUEUE_DEPTH, "7")
        monkeypatch.setenv(ENV_DEADLINE, "3.5")
        monkeypatch.setenv(ENV_RETRY_MAX, "0")
        cfg = ServiceConfig.from_env()
        assert (cfg.queue_depth, cfg.default_deadline_s, cfg.retry_max) \
            == (7, 3.5, 0)

    def test_cli_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_QUEUE_DEPTH, "7")
        assert ServiceConfig.from_env(queue_depth=9).queue_depth == 9

    @pytest.mark.parametrize("var,value", [
        (ENV_QUEUE_DEPTH, "zero"),
        (ENV_QUEUE_DEPTH, "0"),
        (ENV_DEADLINE, "-1"),
        (ENV_DEADLINE, "soon"),
        (ENV_RETRY_MAX, "-2"),
        (ENV_DRAIN_GRACE, "-0.1"),
    ])
    def test_malformed_env_names_variable(self, monkeypatch, var, value):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=var):
            ServiceConfig.from_env()

    def test_backoff_caps(self):
        cfg = ServiceConfig(retry_backoff_ms=100.0)
        assert cfg.retry_backoff_s(1) == pytest.approx(0.1)
        assert cfg.retry_backoff_s(2) == pytest.approx(0.2)
        assert cfg.retry_backoff_s(100) == 5.0


class TestProtocol:
    def test_spec_roundtrip(self):
        spec = JobSpec(benchmark="osu_bw", ranks=3, priority=2,
                       options={"min_size": 4}, deadline_s=9.0)
        assert JobSpec.from_wire(spec.to_wire()) == spec

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_wire({"benchmark": "osu_bw", "bogus": 1})

    @pytest.mark.parametrize("kw", [
        {"kind": "dance"}, {"ranks": 0}, {"deadline_s": 0.0},
        {"max_retries": -1}, {"kind": KIND_SLEEP, "seconds": -1.0},
    ])
    def test_spec_validation(self, kw):
        with pytest.raises(ValueError):
            JobSpec(**kw)

    def test_table_roundtrip(self):
        table = ResultTable(benchmark="osu_latency", metric="Latency (us)",
                            ranks=2, buffer="numpy", api="buffer")
        table.add(ResultRow(size=8, value=1.5, minimum=1.0, maximum=2.0,
                            iterations=100))
        back = table_from_wire(table_to_wire(table))
        assert back.benchmark == table.benchmark
        assert back.rows[0].size == 8
        assert back.rows[0].value == pytest.approx(1.5)

    def test_job_context_unique_and_bounded(self):
        contexts = {job_context(s) for s in (1, 2, 3, 1000)}
        assert len(contexts) == 4
        # Headroom: one in-job derivation must stay below the ULFM flag.
        assert job_context(MAX_JOB_SERIAL - 1) << 16 < 1 << 62
        with pytest.raises(ValueError):
            job_context(0)


class TestHappyPath:
    def test_submit_and_result(self, client):
        job = client.run(JobSpec(benchmark="osu_latency", ranks=2,
                                 options=FAST), timeout=60)
        assert job["state"] == DONE
        table = table_from_wire(job["result"])
        assert table.benchmark == "osu_latency"
        assert [r.size for r in table.rows] == [1, 2, 4, 8, 16]

    def test_collective_uses_whole_pool(self, client):
        job = client.run(JobSpec(benchmark="osu_allreduce", ranks=4,
                                 options={**FAST, "min_size": 4}),
                         timeout=60)
        assert job["state"] == DONE
        assert table_from_wire(job["result"]).ranks == 4

    def test_status_is_health_probe(self, client):
        status = client.status()
        assert status["state"] == SERVING
        assert status["pool"]["live"] == 4
        assert status["pool"]["failed_ranks"] == []
        assert "service.jobs.submitted" in status["metrics"]["counters"]

    def test_unknown_benchmark_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown benchmark"):
            client.submit(JobSpec(benchmark="osu_nope", ranks=2))

    def test_bad_options_rejected(self, client):
        with pytest.raises(ServiceError, match="invalid benchmark options"):
            client.submit(JobSpec(benchmark="osu_latency", ranks=2,
                                  options={"iterations": -5}))

    def test_too_many_ranks_rejected(self, client):
        with pytest.raises(ServiceError, match="only 4 are live"):
            client.submit(JobSpec(benchmark="osu_latency", ranks=5))


class TestAdmissionControl:
    def test_queue_full_is_backpressure(self, client):
        # Occupy all 4 ranks, then fill the depth-4 queue.
        blocker = client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                        seconds=3.0))
        client.wait_state(blocker, states=("RUNNING",), timeout=10)
        queued = [client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                        seconds=0.05))
                  for _ in range(4)]
        with pytest.raises(ServiceError, match="queue full"):
            client.submit(JobSpec(kind=KIND_SLEEP, ranks=2, seconds=0.05))
        client.cancel(blocker)
        for job_id in queued:
            job = client.result(job_id, wait=True, timeout=30)
            assert job["state"] == DONE

    def test_priority_orders_queue(self, client):
        blocker = client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                        seconds=2.0))
        client.wait_state(blocker, states=("RUNNING",), timeout=10)
        low = client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                    seconds=0.05, priority=0))
        high = client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                     seconds=0.05, priority=5))
        client.cancel(blocker)
        high_rec = client.result(high, wait=True, timeout=30)
        low_rec = client.result(low, wait=True, timeout=30)
        assert high_rec["state"] == DONE and low_rec["state"] == DONE
        assert high_rec["started_at"] < low_rec["started_at"]

    def test_draining_rejects_submits(self, service, client):
        client.drain()
        with pytest.raises(ServiceError, match="draining"):
            client.submit(JobSpec(kind=KIND_SLEEP, ranks=2, seconds=0.0))


class TestDeadlines:
    def test_deadline_kills_job(self, client):
        start = time.monotonic()
        job = client.run(JobSpec(kind=KIND_SLEEP, ranks=2, seconds=30.0,
                                 deadline_s=0.3), timeout=20)
        assert job["state"] == DEADLINE
        assert "deadline exceeded" in job["error"]
        assert time.monotonic() - start < 10.0

    def test_pool_survives_deadline_kill(self, client):
        job = client.run(JobSpec(kind=KIND_SLEEP, ranks=4, seconds=30.0,
                                 deadline_s=0.3), timeout=20)
        assert job["state"] == DEADLINE
        # All four ranks must be reusable afterwards.
        after = client.run(JobSpec(benchmark="osu_allreduce", ranks=4,
                                   options={**FAST, "min_size": 4}),
                           timeout=60)
        assert after["state"] == DONE

    def test_deadline_is_not_retried(self, client):
        job = client.run(JobSpec(kind=KIND_SLEEP, ranks=2, seconds=30.0,
                                 deadline_s=0.2, max_retries=5), timeout=20)
        assert job["state"] == DEADLINE
        assert job["attempts"] == 1


class TestCancelAndDrain:
    def test_cancel_queued_job(self, client):
        blocker = client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                        seconds=2.0))
        client.wait_state(blocker, states=("RUNNING",), timeout=10)
        queued = client.submit(JobSpec(kind=KIND_SLEEP, ranks=2,
                                       seconds=0.1))
        assert client.cancel(queued)["state"] == CANCELLED
        assert client.cancel(blocker)["state"] == CANCELLED

    def test_cancel_running_job_frees_ranks(self, client):
        job_id = client.submit(JobSpec(kind=KIND_SLEEP, ranks=4,
                                       seconds=30.0))
        client.wait_state(job_id, states=("RUNNING",), timeout=10)
        client.cancel(job_id)
        job = client.result(job_id, wait=True, timeout=20)
        assert job["state"] == CANCELLED
        after = client.run(JobSpec(kind=KIND_SLEEP, ranks=4, seconds=0.0),
                           timeout=20)
        assert after["state"] == DONE

    def test_drain_finishes_queued_work(self, service, client):
        job_id = client.submit(JobSpec(kind=KIND_SLEEP, ranks=2,
                                       seconds=0.3))
        client.drain()
        job = client.result(job_id, wait=True, timeout=20)
        assert job["state"] == DONE
        deadline = time.monotonic() + 15.0
        while service.state != STOPPED and time.monotonic() < deadline:
            time.sleep(0.05)
        assert service.state == STOPPED

    def test_stop_is_idempotent(self, tmp_path):
        svc = BenchmarkService(pool_size=2,
                               socket_path=str(tmp_path / "s.sock"))
        svc.start()
        svc.stop()
        svc.stop()
        assert svc.state == STOPPED


class TestIsolation:
    def test_concurrent_jobs_do_not_cross_match(self, client):
        """Two identical benchmarks on disjoint rank pairs, both under
        the runtime verifier: overlapping tags in different job contexts
        must never cross-match or trip the collective ledger."""
        ids = [
            client.submit(JobSpec(benchmark="osu_latency", ranks=2,
                                  options=FAST, validate=True))
            for _ in range(2)
        ]
        jobs = [client.result(j, wait=True, timeout=60) for j in ids]
        states = [j["state"] for j in jobs]
        assert states == [DONE, DONE], [j.get("error") for j in jobs]

    def test_concurrent_submitters(self, service):
        """Four client threads hammering the same service; every job
        completes with a coherent result."""
        outcomes = []
        lock = threading.Lock()

        def one(i):
            with ServiceClient(socket_path=service.address,
                               timeout=30.0) as c:
                job = c.run(JobSpec(benchmark="osu_latency", ranks=2,
                                    options=FAST), timeout=60)
                with lock:
                    outcomes.append(job["state"])

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert outcomes == [DONE] * 4

    def test_app_error_fails_only_that_job(self, client):
        # osu_mbw_mr passes admission (min_ranks=2) but raises on the
        # pool ranks: it needs an even rank count and gets 3.
        job = client.run(JobSpec(benchmark="osu_mbw_mr", ranks=3,
                                 options=FAST), timeout=30)
        assert job["state"] == FAILED
        assert "even number of ranks" in job["error"]
        assert job["attempts"] == 1    # app errors are never retried
        # The pool must keep serving, all four ranks intact.
        after = client.run(JobSpec(benchmark="osu_allreduce", ranks=4,
                                   options={**FAST, "min_size": 4}),
                           timeout=60)
        assert after["state"] == DONE


class TestPoolLifecycle:
    def test_pool_stop_idempotent(self):
        pool = ThreadRankPool(2)
        pool.stop()
        pool.stop()

    def test_describe(self):
        pool = ThreadRankPool(3)
        try:
            d = pool.describe()
            assert d["substrate"] == "threads"
            assert (d["size"], d["live"], d["free"]) == (3, 3, 3)
        finally:
            pool.stop()
