"""Property tests: wildcard receives match in MPI-conformant order.

MPI's matching rule (MPI-4.1 §3.5): a receive matches the *earliest*
message it satisfies, and messages between one (sender, receiver) pair
are non-overtaking.  Hypothesis drives randomized delivery/post orders
through :class:`repro.mpi.matching.MatchingEngine` and checks the
outcome against the specification directly — complementing the stateful
model test with properties phrased over whole schedules.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import Envelope, MatchingEngine

#: (source, tag) pools small enough to force collisions.
envelopes = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)),
    min_size=1, max_size=12,
)

SETTINGS = settings(max_examples=100, deadline=None)


def _deliver(engine, src, tag, payload):
    engine.deliver(Envelope(0, src, 0, tag, len(payload)), payload)


@given(msgs=envelopes)
@SETTINGS
def test_wildcard_recv_takes_earliest_unexpected(msgs):
    """A wildcard receive posted after N deliveries matches message 0."""
    engine = MatchingEngine()
    for i, (src, tag) in enumerate(msgs):
        _deliver(engine, src, tag, bytes([i]))
    ticket = engine.post_recv(0, ANY_SOURCE, ANY_TAG, 1 << 16)
    assert ticket.done()
    assert ticket.wait(0.1) == bytes([0])
    assert ticket.status.Get_source() == msgs[0][0]
    assert ticket.status.Get_tag() == msgs[0][1]


@given(msgs=envelopes)
@SETTINGS
def test_wildcard_drain_preserves_delivery_order(msgs):
    """Draining with wildcard receives yields messages in delivery order."""
    engine = MatchingEngine()
    for i, (src, tag) in enumerate(msgs):
        _deliver(engine, src, tag, bytes([i]))
    for i in range(len(msgs)):
        ticket = engine.post_recv(0, ANY_SOURCE, ANY_TAG, 1 << 16)
        assert ticket.wait(0.1) == bytes([i])
    assert engine.pending_unexpected() == 0


@given(msgs=envelopes)
@SETTINGS
def test_posted_wildcards_complete_in_posting_order(msgs):
    """With wildcard receives posted *first*, delivery i completes
    posted receive i: the earliest satisfying post wins every match."""
    engine = MatchingEngine()
    tickets = [
        engine.post_recv(0, ANY_SOURCE, ANY_TAG, 1 << 16)
        for _ in msgs
    ]
    for i, (src, tag) in enumerate(msgs):
        _deliver(engine, src, tag, bytes([i]))
        assert tickets[i].done(), (
            "delivery must complete the earliest pending wildcard post"
        )
        assert tickets[i].wait(0.1) == bytes([i])
        assert not any(t.done() for t in tickets[i + 1:])


@given(msgs=envelopes, source=st.integers(0, 2), tag=st.integers(0, 2))
@SETTINGS
def test_specific_recv_takes_earliest_satisfying(msgs, source, tag):
    """A (source, tag)-specific receive matches the earliest message
    with that envelope, skipping non-matching earlier traffic."""
    engine = MatchingEngine()
    for i, (src, t) in enumerate(msgs):
        _deliver(engine, src, t, bytes([i]))
    ticket = engine.post_recv(0, source, tag, 1 << 16)
    expected = next(
        (i for i, (src, t) in enumerate(msgs)
         if src == source and t == tag),
        None,
    )
    if expected is None:
        assert not ticket.done()
        assert engine.cancel_recv(ticket)
    else:
        assert ticket.wait(0.1) == bytes([expected])


@given(
    msgs=envelopes,
    pattern=st.tuples(
        st.one_of(st.just(ANY_SOURCE), st.integers(0, 2)),
        st.one_of(st.just(ANY_TAG), st.integers(0, 2)),
    ),
)
@SETTINGS
def test_post_then_deliver_agrees_with_deliver_then_post(msgs, pattern):
    """Matching is schedule-independent for a single receive: posting
    before all deliveries and after all deliveries select the same
    message (MPI's ordering rule has one legal outcome here)."""
    source, tag = pattern

    early = MatchingEngine()
    early_ticket = early.post_recv(0, source, tag, 1 << 16)
    for i, (src, t) in enumerate(msgs):
        _deliver(early, src, t, bytes([i]))

    late = MatchingEngine()
    for i, (src, t) in enumerate(msgs):
        _deliver(late, src, t, bytes([i]))
    late_ticket = late.post_recv(0, source, tag, 1 << 16)

    assert early_ticket.done() == late_ticket.done()
    if early_ticket.done():
        assert early_ticket.wait(0.1) == late_ticket.wait(0.1)


@given(msgs=envelopes)
@SETTINGS
def test_per_sender_nonovertaking(msgs):
    """Messages from one sender arrive at wildcard receives in the order
    that sender delivered them (non-overtaking, MPI-4.1 §3.5)."""
    engine = MatchingEngine()
    for i, (src, tag) in enumerate(msgs):
        _deliver(engine, src, tag, bytes([i]))
    got: dict[int, list[int]] = {}
    for _ in msgs:
        ticket = engine.post_recv(0, ANY_SOURCE, ANY_TAG, 1 << 16)
        payload = ticket.wait(0.1)
        got.setdefault(ticket.status.Get_source(), []).append(payload[0])
    for src, indices in got.items():
        sent = [i for i, (s, _t) in enumerate(msgs) if s == src]
        assert indices == sent
