"""LogGP/Hockney network-model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.loggp import NetworkModel, effective_model


def _net(**kw):
    defaults = dict(
        alpha_us=1.0,
        beta_us_per_byte=1e-4,
        rendezvous_bytes=1024,
        rendezvous_alpha_us=2.0,
        rendezvous_beta_us_per_byte=5e-5,
        gap_us_per_byte=5e-5,
    )
    defaults.update(kw)
    return NetworkModel(**defaults)


class TestLatency:
    def test_zero_byte_is_alpha(self):
        assert _net().latency_us(0) == 1.0

    def test_eager_linear(self):
        net = _net()
        assert net.latency_us(1000) == pytest.approx(1.0 + 0.1)

    def test_rendezvous_switch_adds_handshake(self):
        net = _net()
        eager_edge = net.latency_us(1024)
        past_edge = net.latency_us(1025)
        # Past the switch: alpha + rendezvous_alpha + lower beta.
        assert past_edge == pytest.approx(1.0 + 2.0 + 1025 * 5e-5)
        assert past_edge > eager_edge

    def test_rendezvous_beta_defaults_to_eager(self):
        net = NetworkModel(
            alpha_us=1.0, beta_us_per_byte=1e-4, rendezvous_bytes=10
        )
        assert net.latency_us(100) == pytest.approx(1.0 + 100 * 1e-4)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            _net().latency_us(-1)

    @given(st.integers(0, 1 << 22))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_size(self, n):
        net = _net()
        assert net.latency_us(n + 1) >= net.latency_us(n)


class TestBandwidth:
    def test_zero_size_zero_bw(self):
        assert _net().bandwidth_mbs(0) == 0.0

    def test_increases_with_size_initially(self):
        net = _net()
        assert net.bandwidth_mbs(4096) > net.bandwidth_mbs(64)

    def test_approaches_gap_ceiling(self):
        net = _net()
        # At very large messages, bw -> 1/gap bytes/us == MB/s.
        bw = net.bandwidth_mbs(1 << 22)
        assert bw == pytest.approx(1 / 5e-5, rel=0.05)

    def test_larger_window_helps_small_messages(self):
        net = _net()
        assert net.bandwidth_mbs(64, window=256) > net.bandwidth_mbs(
            64, window=4
        )

    def test_gap_defaults_to_beta(self):
        net = NetworkModel(alpha_us=1.0, beta_us_per_byte=1e-4)
        assert net.gap_us(1000) == pytest.approx(0.1)


class TestEffectiveModel:
    def test_placement_selects_link(self):
        intra, inter = _net(alpha_us=0.2), _net(alpha_us=1.5)
        assert effective_model(intra, inter, True) is intra
        assert effective_model(intra, inter, False) is inter
