"""API-surface tests for the three simulated GPU array libraries."""

import numpy as np
import pytest

from repro.gpu import cupy_sim as cp
from repro.gpu import numba_sim, pycuda_sim
from repro.gpu.device import current_device


class TestCupySim:
    def test_zeros_ones_empty(self):
        assert np.allclose(cp.zeros(4).get(), 0)
        assert np.allclose(cp.ones(4).get(), 1)
        assert cp.empty(4).shape == (4,)

    def test_arange_array_asnumpy(self):
        arr = cp.arange(5, dtype="i8")
        assert np.array_equal(cp.asnumpy(arr), np.arange(5))
        arr2 = cp.array([[1.0, 2.0], [3.0, 4.0]])
        assert arr2.shape == (2, 2)

    def test_set_get_roundtrip(self):
        arr = cp.empty(3, dtype="f4")
        arr.set(np.array([1, 2, 3], dtype="f4"))
        assert np.array_equal(arr.get(), [1, 2, 3])

    def test_set_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            cp.zeros(3).set(np.zeros(4))

    def test_arithmetic(self):
        a = cp.array(np.array([1.0, 2.0]))
        b = cp.array(np.array([3.0, 4.0]))
        assert np.array_equal((a + b).get(), [4.0, 6.0])
        assert np.array_equal((a * 2).get(), [2.0, 4.0])
        assert np.array_equal((b - a).get(), [2.0, 2.0])
        assert np.array_equal((2 * a).get(), [2.0, 4.0])

    def test_matmul(self):
        a = cp.array(np.eye(3))
        b = cp.array(np.arange(9.0).reshape(3, 3))
        assert np.array_equal((a @ b).get(), np.arange(9.0).reshape(3, 3))

    def test_sum_fill_astype_reshape(self):
        a = cp.ones(6)
        assert a.sum() == 6.0
        a.fill(3)
        assert np.allclose(a.get(), 3)
        assert a.astype("f4").dtype == np.dtype("f4")
        assert a.reshape(2, 3).shape == (2, 3)

    def test_kernel_launches_accounted(self):
        before = current_device().stats.kernel_launches
        cp.ones(4) + cp.ones(4)
        assert current_device().stats.kernel_launches > before

    def test_asarray_identity(self):
        a = cp.zeros(2)
        assert cp.asarray(a) is a

    def test_allclose_helper(self):
        assert cp.allclose(cp.ones(3), np.ones(3))

    def test_cuda_stream_namespace(self):
        s = cp.cuda.get_current_stream()
        s.synchronize()

    def test_properties(self):
        a = cp.zeros((2, 3), dtype="f4")
        assert a.size == 6
        assert a.nbytes == 24
        assert a.ndim == 2


class TestPycudaSim:
    def test_to_gpu_get(self):
        arr = pycuda_sim.gpuarray.to_gpu(np.array([5.0, 6.0]))
        assert np.array_equal(arr.get(), [5.0, 6.0])

    def test_gpudata_is_pointer(self):
        arr = pycuda_sim.gpuarray.zeros(4)
        alloc = current_device().resolve(arr.gpudata)
        assert alloc.nbytes == 32

    def test_driver_memcpy_htod_dtoh(self):
        arr = pycuda_sim.gpuarray.empty(3, dtype="f8")
        pycuda_sim.driver.memcpy_htod(arr, np.array([7.0, 8.0, 9.0]))
        out = np.zeros(3)
        pycuda_sim.driver.memcpy_dtoh(out, arr)
        assert np.array_equal(out, [7.0, 8.0, 9.0])

    def test_driver_accepts_raw_pointer(self):
        arr = pycuda_sim.gpuarray.empty(2, dtype="f8")
        pycuda_sim.driver.memcpy_htod(arr.gpudata, np.array([1.0, 2.0]))
        assert np.array_equal(arr.get(), [1.0, 2.0])

    def test_fill_and_arithmetic(self):
        a = pycuda_sim.gpuarray.zeros(3).fill(2.0)
        b = pycuda_sim.gpuarray.zeros(3).fill(3.0)
        assert np.allclose((a + b).get(), 5.0)
        assert np.allclose((a * b).get(), 6.0)

    def test_nbytes_size(self):
        a = pycuda_sim.gpuarray.zeros((4, 2), dtype="f4")
        assert a.size == 8 and a.nbytes == 32


class TestNumbaSim:
    def test_to_device_copy_to_host(self):
        arr = numba_sim.cuda.to_device(np.array([1, 2, 3], dtype="i4"))
        assert np.array_equal(arr.copy_to_host(), [1, 2, 3])

    def test_copy_to_host_into_existing(self):
        arr = numba_sim.cuda.to_device(np.arange(4.0))
        out = np.zeros(4)
        ret = arr.copy_to_host(out)
        assert ret is out and np.array_equal(out, np.arange(4.0))

    def test_device_array_like(self):
        src = numba_sim.cuda.to_device(np.zeros((2, 3), dtype="f4"))
        like = numba_sim.cuda.device_array_like(src)
        assert like.shape == (2, 3) and like.dtype == np.dtype("f4")

    def test_device_to_device_copy(self):
        a = numba_sim.cuda.to_device(np.array([9.0, 8.0]))
        b = numba_sim.cuda.device_array(2)
        b.copy_to_device(a)
        assert np.array_equal(b.copy_to_host(), [9.0, 8.0])

    def test_is_cuda_array(self):
        assert numba_sim.cuda.is_cuda_array(numba_sim.cuda.device_array(1))
        assert not numba_sim.cuda.is_cuda_array(np.zeros(1))

    def test_cai_rebuilt_per_access(self):
        arr = numba_sim.cuda.device_array(4)
        c1 = arr.__cuda_array_interface__
        c2 = arr.__cuda_array_interface__
        assert c1 == c2
        assert c1 is not c2  # rebuilt each time, like real numba

    def test_cupy_cai_cached(self):
        from repro.gpu import cupy_sim

        arr = cupy_sim.zeros(4)
        assert (
            arr.__cuda_array_interface__ is arr.__cuda_array_interface__
        )

    def test_synchronize(self):
        before = current_device().sync_count
        numba_sim.cuda.synchronize()
        assert current_device().sync_count == before + 1

    def test_strides_match_c_layout(self):
        arr = numba_sim.cuda.device_array((3, 4), dtype="f8")
        assert arr.strides == (32, 8)
