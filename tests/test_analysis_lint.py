"""The ``ombpy-lint`` static checker: one TP + one TN per rule, plus
pragma suppression, rule selection, JSON output, and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lint import lint_source, main
from repro.analysis.rules import RULES


def rules_of(findings):
    return [f.rule for f in findings]


class TestOMB001PickleBuffer:
    def test_numpy_send_flagged(self):
        src = (
            "import numpy as np\n"
            "data = np.zeros(1024)\n"
            "comm.send(data, dest=1, tag=0)\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB001"]
        assert findings[0].line == 3
        assert "Send()" in findings[0].message

    def test_isend_and_bcast_flagged(self):
        src = (
            "import numpy as np\n"
            "req = comm.isend(np.ones(8), dest=1)\n"
            "req.wait()\n"
            "comm.bcast(np.ones(8), root=0)\n"
        )
        assert set(rules_of(lint_source(src))) == {"OMB001"}

    def test_plain_object_send_clean(self):
        # Pickling a dict is the point of the lower-case API.
        src = "comm.send({'k': 1}, dest=1, tag=0)\n"
        assert lint_source(src) == []

    def test_non_comm_receiver_clean(self):
        # socket.send(bytes) is not an MPI call.
        src = (
            "import numpy as np\n"
            "sock.send(np.zeros(4).tobytes())\n"
        )
        assert lint_source(src) == []


class TestOMB002LeakedRequest:
    def test_discarded_isend_flagged(self):
        src = "comm.isend(obj, dest=1, tag=0)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB002"]
        assert findings[0].severity == "error"

    def test_never_waited_request_flagged(self):
        src = (
            "req = comm.Irecv(buf, source=0)\n"
            "print('hi')\n"
        )
        assert rules_of(lint_source(src)) == ["OMB002"]

    def test_waited_request_clean(self):
        src = (
            "req = comm.Irecv(buf, source=0)\n"
            "req.Wait()\n"
        )
        assert lint_source(src) == []


class TestOMB002AliasTracking:
    """The dataflow rewrite follows tuple unpacking and list.append."""

    def test_tuple_unpacked_requests_clean(self):
        src = (
            "r1, r2 = comm.isend(obj, 1, 0), comm.irecv(0, 0)\n"
            "r1.wait()\n"
            "r2.wait()\n"
        )
        assert lint_source(src) == []

    def test_tuple_unpacked_leak_flagged(self):
        src = (
            "r1, r2 = comm.isend(obj, 1, 0), comm.irecv(0, 0)\n"
            "r2.wait()\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB002"]
        assert "'r1'" in findings[0].message

    def test_appended_then_waited_clean(self):
        src = (
            "reqs = []\n"
            "for peer in range(4):\n"
            "    reqs.append(comm.isend(obj, peer, 0))\n"
            "waitall(reqs)\n"
        )
        assert lint_source(src) == []

    def test_list_literal_then_waited_clean(self):
        src = (
            "reqs = [comm.isend(obj, 1, 0), comm.irecv(0, 0)]\n"
            "waitall(reqs)\n"
        )
        assert lint_source(src) == []

    def test_escaping_request_not_flagged(self):
        # The request lands in a call argument: its lifetime is not
        # visible here, so the rule must stay quiet.
        src = "track(comm.isend(obj, 1, 0))\n"
        assert lint_source(src) == []


class TestOMB003CaseMismatch:
    def test_lower_send_upper_recv_flagged(self):
        src = (
            "if comm.rank == 0:\n"
            "    comm.send(obj, dest=1)\n"
            "else:\n"
            "    comm.Recv(buf, source=0)\n"
        )
        assert "OMB003" in rules_of(lint_source(src))

    def test_matched_cases_clean(self):
        src = (
            "if comm.rank == 0:\n"
            "    comm.Send(buf, 1)\n"
            "else:\n"
            "    comm.Recv(buf, source=0)\n"
        )
        assert lint_source(src) == []


class TestOMB004ReservedTag:
    def test_reserved_band_flagged(self):
        findings = lint_source("comm.Send(buf, 1, 2**30)\n")
        assert rules_of(findings) == ["OMB004"]
        assert "2**30" in findings[0].message or "1073741824" in \
            findings[0].message

    def test_negative_tag_on_send_flagged(self):
        assert rules_of(lint_source("comm.Send(buf, 1, -5)\n")) == ["OMB004"]

    def test_any_tag_on_recv_clean(self):
        # -1 is ANY_TAG, legal on the receive side.
        assert lint_source("comm.Recv(buf, 0, -1)\n") == []

    def test_user_tag_clean(self):
        assert lint_source("comm.Send(buf, 1, 1234)\n") == []


class TestOMB005DeprecatedConstant:
    def test_ub_flagged(self):
        src = "from mpi4py import MPI\nx = MPI.UB\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB005"]
        assert findings[0].line == 2

    def test_sum_clean(self):
        src = "from mpi4py import MPI\nx = MPI.SUM\n"
        assert lint_source(src) == []


class TestOMB006HeadToHeadRecv:
    def test_both_branches_recv_first_flagged(self):
        src = (
            "if comm.rank == 0:\n"
            "    got = comm.recv(source=1)\n"
            "    comm.send(obj, dest=1)\n"
            "else:\n"
            "    got = comm.recv(source=0)\n"
            "    comm.send(obj, dest=0)\n"
        )
        assert "OMB006" in rules_of(lint_source(src))

    def test_ordered_exchange_clean(self):
        src = (
            "if comm.rank == 0:\n"
            "    comm.send(obj, dest=1)\n"
            "    got = comm.recv(source=1)\n"
            "else:\n"
            "    got = comm.recv(source=0)\n"
            "    comm.send(obj, dest=0)\n"
        )
        assert lint_source(src) == []

    def test_sendrecv_clean(self):
        src = (
            "if comm.rank == 0:\n"
            "    got = comm.sendrecv(obj, dest=1, source=1)\n"
            "else:\n"
            "    got = comm.sendrecv(obj, dest=0, source=0)\n"
        )
        assert lint_source(src) == []


class TestOMB007BufferMutation:
    def test_store_between_post_and_wait_flagged(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Isend(buf, 1, 7)\n"
            "buf[0] = 3\n"
            "req.wait()\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB007"]
        assert findings[0].line == 4
        assert "'buf'" in findings[0].message
        assert "line 3" in findings[0].message

    def test_augassign_and_fill_flagged(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Irecv(buf, 0, 7)\n"
            "buf += 1\n"
            "buf.fill(0)\n"
            "req.wait()\n"
        )
        assert rules_of(lint_source(src)) == ["OMB007", "OMB007"]

    def test_mutation_after_wait_clean(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Isend(buf, 1, 7)\n"
            "req.wait()\n"
            "buf[0] = 3\n"
        )
        assert lint_source(src) == []

    def test_pickle_path_isend_mutation_clean(self):
        # Lower-case isend serializes at post time; later mutation is safe.
        src = (
            "import numpy as np\n"
            "data = np.zeros(8)\n"
            # ndarray-through-pickle would be OMB001; use a list.
            "items = [1, 2, 3]\n"
            "req = comm.isend(items, 1, 7)\n"
            "items.append(4)\n"
            "req.wait()\n"
        )
        assert lint_source(src) == []

    def test_rebinding_name_clean(self):
        # `buf = other` rebinds the name; pinned memory is untouched.
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Isend(buf, 1, 7)\n"
            "buf = np.ones(8)\n"
            "req.wait()\n"
        )
        assert lint_source(src) == []


class TestOMB008PrematureRead:
    def test_read_before_wait_flagged(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Irecv(buf, 0, 7)\n"
            "total = buf.sum()\n"
            "req.wait()\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB008"]
        assert findings[0].line == 4
        assert "line 3" in findings[0].message

    def test_metadata_access_clean(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Irecv(buf, 0, 7)\n"
            "n = len(buf)\n"
            "shape = buf.shape\n"
            "req.wait()\n"
            "total = buf.sum()\n"
        )
        assert lint_source(src) == []

    def test_send_buffer_read_clean(self):
        # Reading a buffer pending on Isend is legal (MPI-3).
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "req = comm.Isend(buf, 1, 7)\n"
            "total = buf.sum()\n"
            "req.wait()\n"
        )
        assert lint_source(src) == []


class TestOMB009UnwaitedRequestList:
    def test_dropped_list_flagged(self):
        src = (
            "reqs = []\n"
            "for peer in range(4):\n"
            "    reqs.append(comm.isend(obj, peer, 0))\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB009"]
        assert "'reqs'" in findings[0].message

    def test_comprehension_list_dropped_flagged(self):
        src = "reqs = [comm.isend(obj, p, 0) for p in range(4)]\n"
        assert rules_of(lint_source(src)) == ["OMB009"]

    def test_waited_list_clean(self):
        src = (
            "reqs = []\n"
            "for peer in range(4):\n"
            "    reqs.append(comm.isend(obj, peer, 0))\n"
            "waitall(reqs)\n"
        )
        assert lint_source(src) == []

    def test_foreign_container_clean(self):
        # Appending to a parameter: its lifetime is the caller's business.
        src = (
            "def post(comm, reqs):\n"
            "    reqs.append(comm.isend(1, 1, 0))\n"
        )
        assert lint_source(src) == []


class TestOMB010ConcurrentBufferPosts:
    def test_two_pending_recvs_flagged(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "r1 = comm.Irecv(buf, 0, 1)\n"
            "r2 = comm.Irecv(buf, 0, 2)\n"
            "r1.wait()\n"
            "r2.wait()\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB010"]
        assert findings[0].line == 4
        assert "line 3" in findings[0].message

    def test_send_racing_recv_flagged(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "r1 = comm.Isend(buf, 1, 1)\n"
            "r2 = comm.Irecv(buf, 0, 2)\n"
            "r1.wait()\n"
            "r2.wait()\n"
        )
        assert rules_of(lint_source(src)) == ["OMB010"]

    def test_send_window_clean(self):
        # Concurrent sends of one buffer are MPI-legal (osu_bw's window).
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "reqs = [comm.Isend(buf, 1, 7) for _ in range(64)]\n"
            "waitall(reqs)\n"
        )
        assert lint_source(src) == []

    def test_sequential_posts_clean(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(8)\n"
            "r1 = comm.Irecv(buf, 0, 1)\n"
            "r1.wait()\n"
            "r2 = comm.Irecv(buf, 0, 2)\n"
            "r2.wait()\n"
        )
        assert lint_source(src) == []


class TestSuppressionAndSelection:
    SRC = (
        "import numpy as np\n"
        "comm.send(np.zeros(4), dest=1)  # ombpy-lint: ignore[OMB001]\n"
        "comm.send(np.zeros(4), dest=1)  # ombpy-lint: ignore\n"
        "comm.send(np.zeros(4), dest=1)\n"
    )

    def test_pragma_suppresses(self):
        findings = lint_source(self.SRC)
        assert [f.line for f in findings] == [4]

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = "comm.send(np.zeros(4), dest=1)  # ombpy-lint: ignore[OMB004]\n"
        assert rules_of(lint_source("import numpy as np\n" + src)) == \
            ["OMB001"]

    def test_select_and_ignore(self):
        src = (
            "import numpy as np\n"
            "comm.isend(np.zeros(4), dest=1)\n"   # OMB001 + OMB002
        )
        assert rules_of(lint_source(src, select={"OMB002"})) == ["OMB002"]
        assert rules_of(lint_source(src, ignore={"OMB002"})) == ["OMB001"]

    def test_syntax_error_reported_as_omb000(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == ["OMB000"]
        assert findings[0].severity == "error"


class TestCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("print('hello')\n")
        assert main([str(f)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(
            "import numpy as np\ncomm.send(np.zeros(4), dest=1)\n"
        )
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert f"{f}:2:1: OMB001" in out

    def test_json_format(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(
            "import numpy as np\ncomm.send(np.zeros(4), dest=1)\n"
        )
        assert main([str(f), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "OMB001"
        assert doc["findings"][0]["line"] == 2

    def test_directory_recursion(self, tmp_path, capsys):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "a.py").write_text("comm.isend(x, dest=1)\n")
        (sub / "b.py").write_text("print('fine')\n")
        assert main([str(tmp_path)]) == 1
        assert "OMB002" in capsys.readouterr().out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("pass\n")
        assert main([str(f), "--select", "OMB999"]) == 2
        assert "OMB999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules_covers_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


#: The load-bearing subset of the SARIF 2.1.0 schema: enough structure to
#: catch a malformed log (wrong version, missing tool/results, bad region
#: bounds) without shipping the full 400 kB upstream document.
SARIF_21_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifFormat:
    def _sarif_for(self, tmp_path, capsys, source):
        f = tmp_path / "bad.py"
        f.write_text(source)
        main([str(f), "--format", "sarif"])
        return json.loads(capsys.readouterr().out)

    def test_sarif_validates_against_schema(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        doc = self._sarif_for(
            tmp_path, capsys,
            "import numpy as np\ncomm.send(np.zeros(4), dest=1)\n",
        )
        jsonschema.validate(doc, SARIF_21_SCHEMA)

    def test_sarif_carries_findings_and_catalogue(self, tmp_path, capsys):
        doc = self._sarif_for(
            tmp_path, capsys,
            "import numpy as np\ncomm.send(np.zeros(4), dest=1)\n",
        )
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "ombpy-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(RULES) <= rule_ids
        results = run["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "OMB001"
        assert results[0]["level"] == "warning"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1

    def test_sarif_clean_run_has_empty_results(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("print('fine')\n")
        assert main([str(f), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []

    def test_runtime_finding_lines_clamped(self):
        # Verifier findings carry line 0; SARIF regions must start at 1.
        from repro.analysis.findings import Finding, findings_to_sarif

        doc = json.loads(findings_to_sarif([
            Finding("OMB101", "error", "rank 0", 0, 0, "deadlock"),
        ]))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert region["startColumn"] == 1


def test_every_rule_has_tp_and_tn_coverage():
    """Guard: the catalogue and this test file must not drift apart."""
    assert set(RULES) == {
        "OMB001", "OMB002", "OMB003", "OMB004", "OMB005", "OMB006",
        "OMB007", "OMB008", "OMB009", "OMB010",
    }
