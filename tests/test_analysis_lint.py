"""The ``ombpy-lint`` static checker: one TP + one TN per rule, plus
pragma suppression, rule selection, JSON output, and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lint import lint_source, main
from repro.analysis.rules import RULES


def rules_of(findings):
    return [f.rule for f in findings]


class TestOMB001PickleBuffer:
    def test_numpy_send_flagged(self):
        src = (
            "import numpy as np\n"
            "data = np.zeros(1024)\n"
            "comm.send(data, dest=1, tag=0)\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB001"]
        assert findings[0].line == 3
        assert "Send()" in findings[0].message

    def test_isend_and_bcast_flagged(self):
        src = (
            "import numpy as np\n"
            "req = comm.isend(np.ones(8), dest=1)\n"
            "req.wait()\n"
            "comm.bcast(np.ones(8), root=0)\n"
        )
        assert set(rules_of(lint_source(src))) == {"OMB001"}

    def test_plain_object_send_clean(self):
        # Pickling a dict is the point of the lower-case API.
        src = "comm.send({'k': 1}, dest=1, tag=0)\n"
        assert lint_source(src) == []

    def test_non_comm_receiver_clean(self):
        # socket.send(bytes) is not an MPI call.
        src = (
            "import numpy as np\n"
            "sock.send(np.zeros(4).tobytes())\n"
        )
        assert lint_source(src) == []


class TestOMB002LeakedRequest:
    def test_discarded_isend_flagged(self):
        src = "comm.isend(obj, dest=1, tag=0)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB002"]
        assert findings[0].severity == "error"

    def test_never_waited_request_flagged(self):
        src = (
            "req = comm.Irecv(buf, source=0)\n"
            "print('hi')\n"
        )
        assert rules_of(lint_source(src)) == ["OMB002"]

    def test_waited_request_clean(self):
        src = (
            "req = comm.Irecv(buf, source=0)\n"
            "req.Wait()\n"
        )
        assert lint_source(src) == []


class TestOMB003CaseMismatch:
    def test_lower_send_upper_recv_flagged(self):
        src = (
            "if comm.rank == 0:\n"
            "    comm.send(obj, dest=1)\n"
            "else:\n"
            "    comm.Recv(buf, source=0)\n"
        )
        assert "OMB003" in rules_of(lint_source(src))

    def test_matched_cases_clean(self):
        src = (
            "if comm.rank == 0:\n"
            "    comm.Send(buf, 1)\n"
            "else:\n"
            "    comm.Recv(buf, source=0)\n"
        )
        assert lint_source(src) == []


class TestOMB004ReservedTag:
    def test_reserved_band_flagged(self):
        findings = lint_source("comm.Send(buf, 1, 2**30)\n")
        assert rules_of(findings) == ["OMB004"]
        assert "2**30" in findings[0].message or "1073741824" in \
            findings[0].message

    def test_negative_tag_on_send_flagged(self):
        assert rules_of(lint_source("comm.Send(buf, 1, -5)\n")) == ["OMB004"]

    def test_any_tag_on_recv_clean(self):
        # -1 is ANY_TAG, legal on the receive side.
        assert lint_source("comm.Recv(buf, 0, -1)\n") == []

    def test_user_tag_clean(self):
        assert lint_source("comm.Send(buf, 1, 1234)\n") == []


class TestOMB005DeprecatedConstant:
    def test_ub_flagged(self):
        src = "from mpi4py import MPI\nx = MPI.UB\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["OMB005"]
        assert findings[0].line == 2

    def test_sum_clean(self):
        src = "from mpi4py import MPI\nx = MPI.SUM\n"
        assert lint_source(src) == []


class TestOMB006HeadToHeadRecv:
    def test_both_branches_recv_first_flagged(self):
        src = (
            "if comm.rank == 0:\n"
            "    got = comm.recv(source=1)\n"
            "    comm.send(obj, dest=1)\n"
            "else:\n"
            "    got = comm.recv(source=0)\n"
            "    comm.send(obj, dest=0)\n"
        )
        assert "OMB006" in rules_of(lint_source(src))

    def test_ordered_exchange_clean(self):
        src = (
            "if comm.rank == 0:\n"
            "    comm.send(obj, dest=1)\n"
            "    got = comm.recv(source=1)\n"
            "else:\n"
            "    got = comm.recv(source=0)\n"
            "    comm.send(obj, dest=0)\n"
        )
        assert lint_source(src) == []

    def test_sendrecv_clean(self):
        src = (
            "if comm.rank == 0:\n"
            "    got = comm.sendrecv(obj, dest=1, source=1)\n"
            "else:\n"
            "    got = comm.sendrecv(obj, dest=0, source=0)\n"
        )
        assert lint_source(src) == []


class TestSuppressionAndSelection:
    SRC = (
        "import numpy as np\n"
        "comm.send(np.zeros(4), dest=1)  # ombpy-lint: ignore[OMB001]\n"
        "comm.send(np.zeros(4), dest=1)  # ombpy-lint: ignore\n"
        "comm.send(np.zeros(4), dest=1)\n"
    )

    def test_pragma_suppresses(self):
        findings = lint_source(self.SRC)
        assert [f.line for f in findings] == [4]

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = "comm.send(np.zeros(4), dest=1)  # ombpy-lint: ignore[OMB004]\n"
        assert rules_of(lint_source("import numpy as np\n" + src)) == \
            ["OMB001"]

    def test_select_and_ignore(self):
        src = (
            "import numpy as np\n"
            "comm.isend(np.zeros(4), dest=1)\n"   # OMB001 + OMB002
        )
        assert rules_of(lint_source(src, select={"OMB002"})) == ["OMB002"]
        assert rules_of(lint_source(src, ignore={"OMB002"})) == ["OMB001"]

    def test_syntax_error_reported_as_omb000(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == ["OMB000"]
        assert findings[0].severity == "error"


class TestCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("print('hello')\n")
        assert main([str(f)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(
            "import numpy as np\ncomm.send(np.zeros(4), dest=1)\n"
        )
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert f"{f}:2:1: OMB001" in out

    def test_json_format(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(
            "import numpy as np\ncomm.send(np.zeros(4), dest=1)\n"
        )
        assert main([str(f), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "OMB001"
        assert doc["findings"][0]["line"] == 2

    def test_directory_recursion(self, tmp_path, capsys):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "a.py").write_text("comm.isend(x, dest=1)\n")
        (sub / "b.py").write_text("print('fine')\n")
        assert main([str(tmp_path)]) == 1
        assert "OMB002" in capsys.readouterr().out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("pass\n")
        assert main([str(f), "--select", "OMB999"]) == 2
        assert "OMB999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules_covers_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


def test_every_rule_has_tp_and_tn_coverage():
    """Guard: the catalogue and this test file must not drift apart."""
    assert set(RULES) == {
        "OMB001", "OMB002", "OMB003", "OMB004", "OMB005", "OMB006",
    }
