"""Hierarchical (two-level) collectives: equivalence with the flat
algorithms, and the connection-scaling regression they exist for.

The equivalence property is the load-bearing one: for any communicator
size, group shape, op, dtype, and payload size, the hierarchical
algorithm must produce byte-for-byte the result of its flat counterpart
— integer ops are bitwise-deterministic regardless of combining order,
and the grouped float check pins the reduction tree shape instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ops
from repro.mpi.collectives import selector
from repro.mpi.topology import parse_groups
from repro.mpi.world import run_on_threads

_SETTINGS = dict(max_examples=15, deadline=None)

world_sizes = st.integers(3, 8)
seeds = st.integers(0, 2**31 - 1)
#: Integer ops are exact under any association — bitwise comparison.
exact_ops = st.sampled_from(["SUM", "MAX", "MIN", "BAND", "BOR", "BXOR"])
int_dtypes = st.sampled_from(["i4", "i8", "u8"])
elem_counts = st.integers(1, 33)


@st.composite
def group_specs(draw, n):
    """A random group shape for an n-rank world: uniform, ragged, or
    auto."""
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return "auto"
    if kind == 1:
        return str(draw(st.integers(1, n)))  # uniform size, ragged tail
    sizes = []
    left = n
    while left > 0:
        g = draw(st.integers(1, left))
        sizes.append(g)
        left -= g
    return ",".join(str(g) for g in sizes)


def _rank_ints(seed: int, rank: int, count: int, dtype: str) -> np.ndarray:
    rng = np.random.default_rng(seed * 4099 + rank)
    return rng.integers(0, 2**31 - 1, count).astype(dtype)


def _flat_and_hier(n: int, spec: str, fn):
    """Run fn(comm) once without and once with the group map."""
    flat = run_on_threads(n, fn)
    hier = run_on_threads(n, fn, groups=spec)
    return flat, hier


@given(st.data())
@settings(**_SETTINGS)
def test_hier_allreduce_bitwise_matches_flat(data):
    n = data.draw(world_sizes)
    spec = data.draw(group_specs(n))
    opname = data.draw(exact_ops)
    dtype = data.draw(int_dtypes)
    count = data.draw(elem_counts)
    seed = data.draw(seeds)
    op = getattr(ops, opname)

    def work(comm):
        return comm.allreduce_array(
            _rank_ints(seed, comm.rank, count, dtype), op
        )

    flat, hier = _flat_and_hier(n, spec, work)
    for f, h in zip(flat, hier):
        assert f.dtype == h.dtype
        assert f.tobytes() == h.tobytes()


@given(st.data())
@settings(**_SETTINGS)
def test_hier_bcast_gather_allgather_bitwise_match_flat(data):
    n = data.draw(world_sizes)
    spec = data.draw(group_specs(n))
    nbytes = data.draw(st.integers(0, 96))
    seed = data.draw(seeds)
    root = seed % n
    rng = np.random.default_rng(seed)
    payload = bytes(rng.integers(0, 256, nbytes, dtype=np.uint8))
    blocks = [
        bytes(rng.integers(0, 256, max(1, nbytes), dtype=np.uint8))
        for _ in range(n)
    ]

    def work(comm):
        got = comm.bcast_bytes(
            payload if comm.rank == root else None, root
        )
        gathered = comm.gather_bytes(blocks[comm.rank], root)
        comm.barrier()
        everyone = comm.allgather_bytes(blocks[comm.rank])
        return got, gathered, everyone

    flat, hier = _flat_and_hier(n, spec, work)
    assert flat == hier
    for got, gathered, everyone in hier:
        assert got == payload
        assert everyone == blocks
    assert hier[root][1] == blocks


@given(world_sizes, st.data())
@settings(**_SETTINGS)
def test_hier_float_sum_allclose_to_flat(n, data):
    """Float sums may legally differ between trees; they must still be
    numerically indistinguishable for benign magnitudes."""
    spec = data.draw(group_specs(n))
    seed = data.draw(seeds)

    def work(comm):
        rng = np.random.default_rng(seed * 31 + comm.rank)
        return comm.allreduce_array(rng.random(17), ops.SUM)

    flat, hier = _flat_and_hier(n, spec, work)
    for f, h in zip(flat, hier):
        assert np.allclose(f, h)


def test_selector_goes_hierarchical_only_with_groups():
    part = [[0, 1], [2, 3]]
    assert selector.pick("allreduce", 64, 4, groups=part) == "hierarchical"
    assert selector.pick("allreduce", 64, 4, groups=None) != "hierarchical"
    # Ops without a two-level variant keep their flat choice.
    assert selector.pick("alltoall", 64, 4, groups=part) != "hierarchical"


def test_partition_none_for_singleton_groups():
    """A map of all-singleton groups degenerates to the flat path."""
    from repro.mpi.collectives.hierarchy import partition

    def work(comm):
        part = partition(comm)
        comm.barrier()
        return part

    for part in run_on_threads(4, work, groups="1,1,1,1"):
        assert part is None


@pytest.mark.slow
def test_grouped_process_connections_stay_o_group_plus_groups():
    """The acceptance regression: at 32 process ranks with a group map,
    no rank's established-connection count may reach the flat mesh's
    O(N) — the bound is group_size + n_groups."""
    from repro.core.scaling import measure_process

    ranks = 32
    gmap = parse_groups("auto", ranks)
    result = measure_process(
        "allreduce", ranks, 64, transport="uds", groups="auto",
        iterations=4, warmup=1, timeout=240.0,
    )
    bound = gmap.max_group_size + gmap.n_groups
    assert result["max_connections"] is not None
    assert result["max_connections"] <= bound, (
        f"per-rank connections {result['connections']} exceed "
        f"group_size + n_groups = {bound}"
    )
    assert result["max_connections"] < ranks - 1


@pytest.mark.slow
def test_grouped_connections_strictly_below_flat():
    """Contrast case: at the same N the grouped fabric opens strictly
    fewer channels than the flat algorithms — the bound above is not
    vacuously true.  (Flat is already sub-mesh because the lazy fabric
    dials only algorithm-used peers; grouping must still beat it.)"""
    from repro.core.scaling import measure_process

    flat = measure_process(
        "allreduce", 8, 64, transport="uds", groups=None,
        iterations=4, warmup=1, timeout=120.0,
    )
    hier = measure_process(
        "allreduce", 8, 64, transport="uds", groups="auto",
        iterations=4, warmup=1, timeout=120.0,
    )
    assert hier["max_connections"] is not None
    assert flat["max_connections"] is not None
    assert hier["max_connections"] < flat["max_connections"]
