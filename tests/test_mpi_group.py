"""Unit + property tests for process groups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.constants import IDENT, SIMILAR, UNDEFINED, UNEQUAL
from repro.mpi.exceptions import GroupError
from repro.mpi.group import Group


class TestConstruction:
    def test_size(self):
        assert Group([0, 1, 2]).Get_size() == 3

    def test_empty_group(self):
        assert Group([]).size == 0

    def test_duplicate_rank_rejected(self):
        with pytest.raises(GroupError, match="duplicate"):
            Group([0, 1, 1])

    def test_negative_rank_rejected(self):
        with pytest.raises(GroupError, match="negative"):
            Group([0, -1])

    def test_order_preserved(self):
        assert Group([5, 2, 9]).world_ranks() == (5, 2, 9)


class TestRankMapping:
    def test_rank_of(self):
        g = Group([10, 20, 30])
        assert g.rank_of(20) == 1
        assert g.rank_of(99) == UNDEFINED

    def test_world_rank(self):
        g = Group([10, 20, 30])
        assert g.world_rank(2) == 30

    def test_world_rank_out_of_range(self):
        with pytest.raises(GroupError, match="out of range"):
            Group([0, 1]).world_rank(2)

    def test_translate_ranks(self):
        g1 = Group([0, 1, 2, 3])
        g2 = Group([3, 1])
        assert g1.Translate_ranks([0, 1, 3], g2) == [UNDEFINED, 1, 0]


class TestCompare:
    def test_ident(self):
        assert Group([1, 2]).Compare(Group([1, 2])) == IDENT

    def test_similar(self):
        assert Group([1, 2]).Compare(Group([2, 1])) == SIMILAR

    def test_unequal(self):
        assert Group([1, 2]).Compare(Group([1, 3])) == UNEQUAL

    def test_eq_and_hash(self):
        assert Group([1, 2]) == Group([1, 2])
        assert hash(Group([1, 2])) == hash(Group([1, 2]))
        assert Group([1, 2]) != Group([2, 1])


class TestAlgebra:
    def test_incl(self):
        g = Group([10, 20, 30, 40])
        assert g.Incl([2, 0]).world_ranks() == (30, 10)

    def test_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.Excl([1, 3]).world_ranks() == (10, 30)

    def test_excl_out_of_range(self):
        with pytest.raises(GroupError):
            Group([0, 1]).Excl([5])

    def test_union_order(self):
        u = Group([1, 2]).Union(Group([3, 2, 4]))
        assert u.world_ranks() == (1, 2, 3, 4)

    def test_intersection(self):
        i = Group([1, 2, 3]).Intersection(Group([3, 1, 9]))
        assert i.world_ranks() == (1, 3)

    def test_difference(self):
        d = Group([1, 2, 3]).Difference(Group([2]))
        assert d.world_ranks() == (1, 3)

    def test_range_incl(self):
        g = Group(list(range(10)))
        assert g.Range_incl([(0, 6, 2)]).world_ranks() == (0, 2, 4, 6)

    def test_range_incl_negative_stride(self):
        g = Group(list(range(10)))
        assert g.Range_incl([(4, 0, -2)]).world_ranks() == (4, 2, 0)

    def test_range_incl_zero_stride(self):
        with pytest.raises(GroupError, match="zero stride"):
            Group([0, 1]).Range_incl([(0, 1, 0)])


class TestProperties:
    ranks = st.lists(
        st.integers(0, 63), min_size=0, max_size=16, unique=True
    )

    @given(ranks, ranks)
    @settings(max_examples=60, deadline=None)
    def test_union_contains_both(self, a, b):
        u = Group(a).Union(Group(b))
        assert set(u.world_ranks()) == set(a) | set(b)

    @given(ranks, ranks)
    @settings(max_examples=60, deadline=None)
    def test_intersection_difference_partition(self, a, b):
        ga, gb = Group(a), Group(b)
        inter = set(ga.Intersection(gb).world_ranks())
        diff = set(ga.Difference(gb).world_ranks())
        assert inter | diff == set(a)
        assert inter & diff == set()

    @given(ranks)
    @settings(max_examples=60, deadline=None)
    def test_rank_roundtrip(self, a):
        g = Group(a)
        for i, wr in enumerate(a):
            assert g.rank_of(wr) == i
            assert g.world_rank(i) == wr
