"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.mpi.world import run_on_threads

# Most collective tests run at these world sizes: 1 (degenerate), 2
# (pairs), 4 (power of two), 5 (odd), 8 (deeper trees).
WORLD_SIZES = (1, 2, 4, 5, 8)


def run_world(n: int, fn, timeout: float = 60.0):
    """Run fn(comm) on n ranks-as-threads with a test-friendly timeout."""
    return run_on_threads(n, fn, timeout=timeout)


@pytest.fixture
def world4():
    """Run the decorated body on 4 ranks: usage — world4(lambda comm: ...)."""
    def runner(fn, timeout: float = 60.0):
        return run_on_threads(4, fn, timeout=timeout)

    return runner


@pytest.fixture(autouse=True)
def _reset_collective_overrides():
    """Keep selector.force() leaks from crossing test boundaries."""
    from repro.mpi.collectives import selector

    yield
    for op in (
        "bcast", "allreduce", "allgather", "alltoall", "reduce",
        "reduce_scatter", "gather", "scatter", "scan", "barrier",
    ):
        selector.force(op, None)
