"""Unit tests for repro.mpi.datatypes."""

import numpy as np
import pytest

from repro.mpi import datatypes
from repro.mpi.exceptions import DatatypeError


class TestPredefined:
    def test_byte_size(self):
        assert datatypes.BYTE.Get_size() == 1

    def test_double_size(self):
        assert datatypes.DOUBLE.Get_size() == 8

    def test_int_size(self):
        assert datatypes.INT.Get_size() == 4

    def test_complex_sizes(self):
        assert datatypes.COMPLEX.Get_size() == 8
        assert datatypes.DOUBLE_COMPLEX.Get_size() == 16

    def test_pair_type_sizes(self):
        assert datatypes.FLOAT_INT.Get_size() == 8
        assert datatypes.DOUBLE_INT.Get_size() == 12

    def test_names(self):
        assert datatypes.DOUBLE.Get_name() == "MPI_DOUBLE"
        assert datatypes.BYTE.Get_name() == "MPI_BYTE"

    def test_all_predefined_listed(self):
        names = datatypes.predefined_names()
        assert "MPI_DOUBLE" in names
        assert "MPI_BYTE" in names
        assert len(names) == len(set(names))

    def test_every_predefined_size_matches_numpy(self):
        for name in datatypes.predefined_names():
            dt = datatypes.lookup(name)
            if dt.np_dtype is not None:
                assert np.dtype(dt.np_dtype).itemsize == dt.size, name


class TestLookup:
    def test_lookup_known(self):
        assert datatypes.lookup("MPI_INT") is datatypes.INT

    def test_lookup_unknown_raises(self):
        with pytest.raises(DatatypeError, match="unknown datatype"):
            datatypes.lookup("MPI_BOGUS")


class TestNumpyMapping:
    @pytest.mark.parametrize(
        "np_name, expected",
        [
            ("float64", datatypes.DOUBLE),
            ("float32", datatypes.FLOAT),
            ("int32", datatypes.INT),
            ("int64", datatypes.LONG),
            ("uint8", datatypes.UNSIGNED_CHAR),
            ("bool", datatypes.C_BOOL),
            ("complex128", datatypes.DOUBLE_COMPLEX),
        ],
    )
    def test_from_numpy(self, np_name, expected):
        assert datatypes.from_numpy_dtype(np_name) is expected

    def test_from_numpy_dtype_object(self):
        assert datatypes.from_numpy_dtype(np.dtype("f4")) is datatypes.FLOAT

    def test_unsupported_numpy_dtype(self):
        with pytest.raises(DatatypeError, match="no MPI datatype"):
            datatypes.from_numpy_dtype(np.dtype("U10"))

    def test_roundtrip_to_numpy(self):
        assert datatypes.DOUBLE.to_numpy() == np.dtype("f8")
        assert datatypes.BYTE.to_numpy() == np.dtype("u1")


class TestContiguous:
    def test_create_contiguous(self):
        t = datatypes.DOUBLE.Create_contiguous(4)
        assert t.Get_size() == 32
        assert t.count == 4

    def test_nested_contiguous(self):
        t = datatypes.INT.Create_contiguous(3).Create_contiguous(2)
        assert t.Get_size() == 24
        assert t.count == 6

    def test_zero_count(self):
        assert datatypes.INT.Create_contiguous(0).Get_size() == 0

    def test_negative_count_raises(self):
        with pytest.raises(DatatypeError, match="negative count"):
            datatypes.INT.Create_contiguous(-1)
