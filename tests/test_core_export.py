"""CSV/JSON export tests."""

import csv
import io

import pytest

from repro.core.export import (
    figure_to_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
    write_figure,
)
from repro.core.results import ResultRow, ResultTable


def _table(values=((1, 1.5), (2, 2.5)), api="buffer"):
    t = ResultTable(
        benchmark="osu_latency", metric="latency_us", ranks=2,
        buffer="numpy", api=api,
    )
    for size, v in values:
        t.add(ResultRow(size, v, v - 0.1, v + 0.1, 10))
    return t


class TestCsv:
    def test_table_csv_roundtrip_values(self):
        text = table_to_csv(_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["size", "latency_us"]
        assert rows[1] == ["1", "1.5"]
        assert rows[2] == ["2", "2.5"]

    def test_full_stats_columns(self):
        text = table_to_csv(_table(), full_stats=True)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["size", "latency_us", "min", "max", "iterations"]
        assert rows[1][-1] == "10"

    def test_figure_csv_side_by_side(self):
        a = _table(api="native")
        b = _table(values=((1, 9.0), (2, 9.5)))
        text = figure_to_csv([a, b], ["OMB", "OMB-Py"])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["size", "OMB", "OMB-Py"]
        assert rows[1] == ["1", "1.5", "9"]

    def test_figure_csv_missing_size_empty_cell(self):
        a = _table(values=((1, 1.0), (2, 2.0)))
        b = _table(values=((1, 5.0),))
        rows = list(csv.reader(io.StringIO(figure_to_csv([a, b]))))
        assert rows[2][2] == ""

    def test_figure_csv_default_labels(self):
        text = figure_to_csv([_table(api="pickle")])
        assert "pickle/numpy" in text.splitlines()[0]

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError, match="no tables"):
            figure_to_csv([])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            figure_to_csv([_table()], ["a", "b"])

    def test_write_figure_creates_dirs(self, tmp_path):
        path = write_figure(tmp_path / "deep" / "fig.csv", [_table()])
        assert path.exists()
        assert "size" in path.read_text()


class TestJson:
    def test_roundtrip(self):
        original = _table()
        restored = table_from_json(table_to_json(original))
        assert restored.benchmark == original.benchmark
        assert restored.metric == original.metric
        assert restored.sizes() == original.sizes()
        assert restored.values() == original.values()
        assert restored.rows[0].iterations == 10

    def test_json_contains_metadata(self):
        import json

        data = json.loads(table_to_json(_table()))
        assert data["ranks"] == 2
        assert data["buffer"] == "numpy"


class TestGeneratorTool:
    def test_generates_all_figures(self, tmp_path):
        import sys
        sys.path.insert(0, "tools")
        try:
            from generate_figure_data import generate
        finally:
            sys.path.pop(0)

        written = generate(tmp_path)
        assert len(written) == 19
        names = {p.name for p in written}
        assert "fig04_05_intra_frontera.csv" in names
        assert "fig22_23_gpu_pt2pt.csv" in names
        assert "fig36_ml_knn.csv" in names
        for path in written:
            lines = path.read_text().splitlines()
            assert len(lines) >= 2, path
