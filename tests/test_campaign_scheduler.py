"""Scheduler tests: retry, backoff, quarantine, manifests, exactly-once.

All tests run against :class:`ScriptedBackend` — a deterministic
in-process backend whose per-cell failure scripts let each test target
one scheduler policy without subprocess cost.
"""

import json
import os
import random
import threading

from repro.campaign import backends as bk
from repro.campaign.config import RETRY_BACKOFF_CAP_S, CampaignConfig
from repro.campaign.journal import (
    CAMPAIGN_BEGIN, CAMPAIGN_RESUMED, CELL_DONE, CELL_PLANNED,
    CELL_QUARANTINED, Journal, replay,
)
from repro.campaign.scheduler import (
    COMPLETE, DEGRADED, FREE_RETRY_CAP, INTERRUPTED, CampaignScheduler,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultsStore

_TABLE = {
    "metric": "latency_us",
    "rows": [{"size": 1, "value": 1.0, "min": 1.0, "max": 1.0,
              "iterations": 1}],
}


class ScriptedBackend:
    """Fails each cell per its script (a list of outcome kinds), then
    succeeds; records every execution."""

    name = "scripted"

    def __init__(self, scripts: dict | None = None) -> None:
        self.scripts = {k: list(v) for k, v in (scripts or {}).items()}
        self.executed: list[str] = []
        self._lock = threading.Lock()
        self.interrupts = 0

    def supports(self, cell) -> bool:
        return True

    def interrupt(self) -> None:
        self.interrupts += 1

    def run(self, cell, timeout_s: float) -> bk.CellOutcome:
        with self._lock:
            self.executed.append(cell.cell_id)
            script = self.scripts.get(cell.cell_id)
        if script:
            kind = script.pop(0)
            return bk.CellOutcome(
                ok=False, kind=kind, backend=self.name, elapsed_s=0.0,
                error=f"scripted {kind}",
            )
        return bk.CellOutcome(
            ok=True, kind=bk.OK, backend=self.name, elapsed_s=0.01,
            table=dict(_TABLE),
        )


def make_doc(sizes=("1:16",), benchmarks=("osu_latency",)):
    return {
        "name": "t",
        "sweep": [
            {
                "benchmarks": list(benchmarks),
                "transports": ["threads"],
                "ranks": [2],
                "sizes": list(sizes),
            }
        ],
    }


def start_journal(journal: Journal, spec: CampaignSpec) -> None:
    journal.append(CAMPAIGN_BEGIN, name=spec.name,
                   fingerprint=spec.fingerprint(), cells=len(spec.cells))
    for cell in spec.cells:
        journal.append(CELL_PLANNED, cell=cell.cell_id)


def build(tmp_path, doc=None, scripts=None, resume=False, sleep=None,
          **config_kw):
    """Wire up spec + journal + store + scripted backend + scheduler."""
    spec = CampaignSpec.from_document(doc or make_doc())
    path = str(tmp_path / "journal.jsonl")
    journal = Journal(path)
    if not resume:
        start_journal(journal, spec)
    else:
        journal.append(CAMPAIGN_RESUMED, fingerprint=spec.fingerprint())
    backend = ScriptedBackend(scripts)
    scheduler = CampaignScheduler(
        spec, journal, ResultsStore(str(tmp_path)), backend,
        config=CampaignConfig(**config_kw), state=replay(path),
        sleep=sleep if sleep is not None else (lambda _s: None),
        rng=random.Random(7),
    )
    return spec, scheduler, backend, journal


def journal_records(tmp_path):
    with open(tmp_path / "journal.jsonl", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


class TestHappyPath:
    def test_all_cells_complete(self, tmp_path):
        doc = make_doc(sizes=["1:4", "8:16", "32:64"])
        spec, scheduler, backend, journal = build(tmp_path, doc)
        result = scheduler.run()
        journal.close()
        assert result.status == COMPLETE
        assert result.completed == sorted(spec.cell_ids())
        assert result.missed == []
        assert sorted(backend.executed) == sorted(spec.cell_ids())
        manifest = ResultsStore(str(tmp_path)).read_manifest()
        assert manifest["status"] == "complete"
        assert manifest["completed"] == sorted(spec.cell_ids())

    def test_results_durable_before_done_record(self, tmp_path):
        spec, scheduler, _, journal = build(tmp_path)
        scheduler.run()
        journal.close()
        store = ResultsStore(str(tmp_path))
        assert store.completed_cells() == set(spec.cell_ids())
        # Every CELL_DONE in the journal has rows behind it in the store.
        done = {r["cell"] for r in journal_records(tmp_path)
                if r["type"] == CELL_DONE}
        assert done <= store.completed_cells()

    def test_concurrent_workers_complete_everything(self, tmp_path):
        doc = make_doc(sizes=[f"{1 << i}:{2 << i}" for i in range(6)])
        spec, scheduler, _, journal = build(tmp_path, doc, concurrency=4)
        result = scheduler.run()
        journal.close()
        assert result.status == COMPLETE
        assert len(result.completed) == 6


class TestRetry:
    def test_transient_failure_retries_to_success(self, tmp_path):
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        _, scheduler, backend, journal = build(
            tmp_path, scripts={cell: ["app_error"]}, retry_max=2,
        )
        result = scheduler.run()
        journal.close()
        assert result.status == COMPLETE
        assert backend.executed.count(cell) == 2
        state = replay(str(tmp_path / "journal.jsonl"))
        assert state.failures[cell] == 1    # the charged first attempt

    def test_retries_exhausted_lands_in_missed(self, tmp_path):
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        _, scheduler, backend, journal = build(
            tmp_path, scripts={cell: ["app_error"] * 10},
            retry_max=1, quarantine_after=50,
        )
        result = scheduler.run()
        journal.close()
        assert result.status == DEGRADED
        assert backend.executed.count(cell) == 2    # initial + 1 retry
        assert len(result.missed) == 1
        assert "retries exhausted" in result.missed[0]["reason"]
        assert result.missed[0]["last_error"] == "scripted app_error"

    def test_degraded_campaign_keeps_other_cells(self, tmp_path):
        doc = make_doc(sizes=["1:4", "8:16"])
        spec = CampaignSpec.from_document(doc)
        bad = spec.cells[0].cell_id
        _, scheduler, _, journal = build(
            tmp_path, doc, scripts={bad: ["app_error"] * 10},
            retry_max=0, quarantine_after=50,
        )
        result = scheduler.run()
        journal.close()
        assert result.status == DEGRADED
        assert len(result.completed) == 1
        manifest = ResultsStore(str(tmp_path)).read_manifest()
        assert manifest["status"] == "degraded"
        assert [m["cell"] for m in manifest["missed"]] == [bad]

    def test_backoff_sleeps_between_attempts(self, tmp_path):
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        delays: list[float] = []
        _, scheduler, _, journal = build(
            tmp_path, scripts={cell: ["app_error"] * 3}, retry_max=3,
            quarantine_after=50, retry_backoff_ms=100.0,
            sleep=delays.append,
        )
        scheduler.run()
        journal.close()
        assert len(delays) == 3
        # Jittered doubling: each delay within +/-50% of 0.1 * 2^(n-1).
        for index, delay in enumerate(delays):
            nominal = 0.1 * (2 ** index)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_backoff_is_capped(self):
        config = CampaignConfig(retry_backoff_ms=1000.0)
        assert config.retry_backoff_s(50) == RETRY_BACKOFF_CAP_S
        rng = random.Random(3)
        assert config.retry_backoff_s(50, rng) <= 1.5 * RETRY_BACKOFF_CAP_S


class TestQuarantine:
    def test_repeat_offender_quarantined(self, tmp_path):
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        _, scheduler, backend, journal = build(
            tmp_path, scripts={cell: ["app_error"] * 10},
            retry_max=10, quarantine_after=3,
        )
        result = scheduler.run()
        journal.close()
        assert result.status == DEGRADED
        assert backend.executed.count(cell) == 3
        assert "quarantined after 3 failures" in result.missed[0]["reason"]
        assert any(r["type"] == CELL_QUARANTINED
                   for r in journal_records(tmp_path))

    def test_replayed_failures_quarantine_without_another_attempt(
            self, tmp_path):
        """A resume whose journal already shows >= threshold failures
        must not burn another attempt on the doomed cell."""
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            start_journal(journal, spec)
            for attempt in (1, 2, 3):
                journal.append("CELL_FAILED", cell=cell, attempt=attempt,
                               error="boom", kind="app_error", charged=True)
        backend = ScriptedBackend()
        with Journal(path) as journal:
            scheduler = CampaignScheduler(
                spec, journal, ResultsStore(str(tmp_path)), backend,
                config=CampaignConfig(quarantine_after=3),
                state=replay(path), sleep=lambda _s: None,
            )
            result = scheduler.run()
        assert result.status == DEGRADED
        assert backend.executed == []
        assert replay(path).quarantined == {cell}

    def test_uncharged_kinds_never_quarantine(self, tmp_path):
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        _, scheduler, backend, journal = build(
            tmp_path, scripts={cell: ["rejected", "backend_error"]},
            retry_max=0, quarantine_after=1,
        )
        result = scheduler.run()
        journal.close()
        assert result.status == COMPLETE
        assert backend.executed.count(cell) == 3
        assert replay(str(tmp_path / "journal.jsonl")).failures == {}

    def test_free_retries_are_capped(self, tmp_path):
        """A permanently broken backend must not spin a cell forever:
        past FREE_RETRY_CAP its failures start charging."""
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        _, scheduler, backend, journal = build(
            tmp_path, scripts={cell: ["backend_error"] * 100},
            retry_max=2, quarantine_after=3,
        )
        result = scheduler.run()
        journal.close()
        assert result.status == DEGRADED
        assert backend.executed.count(cell) <= FREE_RETRY_CAP + 4


class TestInterrupt:
    def test_stop_checkpoints_and_reports_interrupted(self, tmp_path):
        doc = make_doc(sizes=["1:4", "8:16", "32:64", "64:128"])
        spec = CampaignSpec.from_document(doc)
        _, scheduler, backend, journal = build(tmp_path, doc, concurrency=1)

        fired = []

        original = backend.run

        def stop_after_first(cell, timeout_s):
            outcome = original(cell, timeout_s)
            if not fired:
                fired.append(True)
                scheduler.request_stop()
            return outcome

        backend.run = stop_after_first
        result = scheduler.run()
        journal.close()
        assert result.status == INTERRUPTED
        assert backend.interrupts == 1
        state = replay(str(tmp_path / "journal.jsonl"))
        assert state.ended == INTERRUPTED
        assert len(state.done) == 1
        assert len(state.pending()) == 3

    def test_interrupted_attempt_is_uncharged_and_resumable(self, tmp_path):
        spec = CampaignSpec.from_document(make_doc())
        cell = spec.cells[0].cell_id
        _, scheduler, _, journal = build(
            tmp_path, scripts={cell: ["interrupted"] * 1},
            retry_max=0, quarantine_after=1,
        )
        scheduler.request_stop()    # already stopping when the worker runs
        result = scheduler.run()
        journal.close()
        state = replay(str(tmp_path / "journal.jsonl"))
        assert result.status == INTERRUPTED
        assert state.failures == {}
        assert state.pending() == [cell]


class TestResume:
    def test_resume_runs_only_pending_cells(self, tmp_path):
        doc = make_doc(sizes=["1:4", "8:16", "32:64"])
        spec = CampaignSpec.from_document(doc)
        path = str(tmp_path / "journal.jsonl")
        first_cell = spec.cells[0].cell_id
        with Journal(path) as journal:
            start_journal(journal, spec)
            journal.append(CELL_DONE, cell=first_cell, attempt=1)
        backend = ScriptedBackend()
        with Journal(path) as journal:
            journal.append(CAMPAIGN_RESUMED, fingerprint=spec.fingerprint())
            scheduler = CampaignScheduler(
                spec, journal, ResultsStore(str(tmp_path)), backend,
                state=replay(path), sleep=lambda _s: None,
            )
            result = scheduler.run()
        assert result.status == COMPLETE
        assert set(result.completed) == set(spec.cell_ids())
        assert first_cell not in backend.executed
        assert len(backend.executed) == 2

    def test_completed_campaign_resume_is_a_noop(self, tmp_path):
        spec, scheduler, backend, journal = build(tmp_path)
        scheduler.run()
        journal.close()
        path = str(tmp_path / "journal.jsonl")
        backend2 = ScriptedBackend()
        with Journal(path) as journal2:
            journal2.append(CAMPAIGN_RESUMED, fingerprint=spec.fingerprint())
            scheduler2 = CampaignScheduler(
                spec, journal2, ResultsStore(str(tmp_path)), backend2,
                state=replay(path), sleep=lambda _s: None,
            )
            result = scheduler2.run()
        assert result.status == COMPLETE
        assert backend2.executed == []
