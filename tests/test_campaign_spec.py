"""Campaign spec tests: expansion, fingerprinting, validation."""

import json

import pytest

from repro.campaign.spec import SPEC_SCHEMA, CampaignSpec, CellSpec


def doc(**kw):
    base = {
        "name": "t",
        "sweep": [
            {
                "benchmarks": ["osu_latency"],
                "transports": ["threads"],
                "ranks": [2],
                "sizes": ["1:16"],
            }
        ],
    }
    base.update(kw)
    return base


class TestExpansion:
    def test_cartesian_product(self):
        spec = CampaignSpec.from_document(doc(sweep=[{
            "benchmarks": ["osu_latency", "osu_allreduce"],
            "transports": ["threads", "tcp"],
            "ranks": [2, 4],
            "sizes": ["1:16", "32:64"],
        }]))
        assert len(spec.cells) == 16
        assert len(set(spec.cell_ids())) == 16

    def test_multiple_blocks_concatenate(self):
        spec = CampaignSpec.from_document(doc(sweep=[
            {"benchmarks": ["osu_latency"], "transports": ["threads"],
             "ranks": [2], "sizes": ["1:16"]},
            {"benchmarks": ["osu_allreduce"], "transports": ["tcp"],
             "ranks": [4], "sizes": ["4:64"], "iterations": 5},
        ]))
        assert len(spec.cells) == 2
        assert spec.cells[1].iterations == 5

    def test_duplicate_cells_dedup(self):
        block = {"benchmarks": ["osu_latency"], "transports": ["threads"],
                 "ranks": [2], "sizes": ["1:16"]}
        spec = CampaignSpec.from_document(doc(sweep=[block, dict(block)]))
        assert len(spec.cells) == 1

    def test_scalar_axis_promoted_to_list(self):
        spec = CampaignSpec.from_document(doc(sweep=[{
            "benchmarks": "osu_latency", "transports": "threads",
            "ranks": 2, "sizes": "1:16",
        }]))
        assert len(spec.cells) == 1

    def test_size_forms(self):
        spec = CampaignSpec.from_document(doc(sweep=[{
            "benchmarks": ["osu_latency"], "transports": ["threads"],
            "ranks": [2],
            "sizes": ["1:16", {"min": 32, "max": 64}, 128],
        }]))
        ranges = {(c.min_size, c.max_size) for c in spec.cells}
        assert ranges == {(1, 16), (32, 64), (128, 128)}

    def test_underranked_cells_skipped_not_fatal(self):
        spec = CampaignSpec.from_document(doc(sweep=[{
            "benchmarks": ["osu_latency"], "transports": ["threads"],
            "ranks": [1, 2], "sizes": ["1:16"],
        }]))
        assert len(spec.cells) == 1
        assert spec.cells[0].ranks == 2
        assert len(spec.skipped) == 1
        assert "at least" in spec.skipped[0]


class TestFingerprint:
    def test_stable_across_document_cosmetics(self):
        a = CampaignSpec.from_document(doc())
        b = CampaignSpec.from_document(
            {"schema": SPEC_SCHEMA, **doc()}    # explicit schema, same grid
        )
        assert a.fingerprint() == b.fingerprint()

    def test_changes_when_any_cell_changes(self):
        a = CampaignSpec.from_document(doc())
        changed = doc()
        changed["sweep"][0]["iterations"] = 99
        b = CampaignSpec.from_document(changed)
        assert a.fingerprint() != b.fingerprint()

    def test_changes_with_name(self):
        a = CampaignSpec.from_document(doc())
        b = CampaignSpec.from_document(doc(name="other"))
        assert a.fingerprint() != b.fingerprint()

    def test_cell_id_hash_distinguishes_flag_only_changes(self):
        a = CellSpec(benchmark="osu_latency", transport="threads", ranks=2,
                     min_size=1, max_size=16)
        b = CellSpec(benchmark="osu_latency", transport="threads", ranks=2,
                     min_size=1, max_size=16, iterations=99)
        assert a.cell_id != b.cell_id
        assert a.cell_id.startswith("osu_latency.threads.n2.s1-16.")


class TestValidation:
    @pytest.mark.parametrize("bad, match", [
        (doc(name=""), "name"),
        (doc(sweep=[]), "sweep"),
        (doc(sweep=[{"benchmarks": ["osu_latency"]}]), "missing"),
        (doc(schema="nope/9"), "schema"),
        (doc(sweep=[{"benchmarks": ["osu_latency"],
                     "transports": ["threads"], "ranks": [2],
                     "sizes": ["1:16"], "bogus": 1}]), "unknown field"),
        (doc(sweep=[{"benchmarks": ["osu_latency"],
                     "transports": ["threads"], "ranks": [2],
                     "sizes": ["x:y"]}]), "MIN:MAX"),
        (doc(sweep=[{"benchmarks": ["osu_latency"],
                     "transports": ["carrier-pigeon"], "ranks": [2],
                     "sizes": ["1:16"]}]), "transport"),
    ])
    def test_malformed_documents_rejected(self, bad, match):
        with pytest.raises(ValueError, match=match):
            CampaignSpec.from_document(bad)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="osu_nope"):
            CampaignSpec.from_document(doc(sweep=[{
                "benchmarks": ["osu_nope"], "transports": ["threads"],
                "ranks": [2], "sizes": ["1:16"],
            }]))

    def test_all_cells_skipped_is_an_error(self):
        with pytest.raises(ValueError, match="zero runnable"):
            CampaignSpec.from_document(doc(sweep=[{
                "benchmarks": ["osu_latency"], "transports": ["threads"],
                "ranks": [1], "sizes": ["1:16"],
            }]))

    def test_cell_wire_round_trip_rejects_unknown_fields(self):
        cell = CampaignSpec.from_document(doc()).cells[0]
        assert CellSpec.from_wire(cell.to_wire()) == cell
        with pytest.raises(ValueError, match="unknown cell field"):
            CellSpec.from_wire({**cell.to_wire(), "surprise": 1})

    def test_options_feed_the_benchmark_runner(self):
        from repro.core.options import Options

        cell = CampaignSpec.from_document(doc()).cells[0]
        options = Options(**cell.options())
        assert options.min_size == 1 and options.max_size == 16


class TestLoad:
    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc()))
        assert len(CampaignSpec.load(str(path)).cells) == 1

    def test_yaml_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            "name: t\n"
            "sweep:\n"
            "  - benchmarks: [osu_latency]\n"
            "    transports: [threads]\n"
            "    ranks: [2]\n"
            "    sizes: ['1:16']\n"
        )
        assert len(CampaignSpec.load(str(path)).cells) == 1
