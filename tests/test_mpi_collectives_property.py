"""Property-based collective tests: semantics match a NumPy reference for
arbitrary payloads, ops, and world sizes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ops
from repro.mpi.world import run_on_threads

world_sizes = st.integers(2, 6)
elem_counts = st.integers(1, 40)
seeds = st.integers(0, 2**31 - 1)

_SETTINGS = dict(max_examples=20, deadline=None)


def _rank_data(seed: int, rank: int, count: int) -> np.ndarray:
    rng = np.random.default_rng(seed * 1000 + rank)
    return rng.integers(-100, 100, count).astype("f8")


@given(world_sizes, elem_counts, seeds)
@settings(**_SETTINGS)
def test_allreduce_sum_matches_numpy(n, count, seed):
    def work(comm):
        return comm.allreduce_array(
            _rank_data(seed, comm.rank, count), ops.SUM
        )

    results = run_on_threads(n, work)
    expect = np.sum(
        [_rank_data(seed, r, count) for r in range(n)], axis=0
    )
    for out in results:
        assert np.allclose(out, expect)


@given(world_sizes, elem_counts, seeds, st.sampled_from(["MAX", "MIN"]))
@settings(**_SETTINGS)
def test_allreduce_extrema_matches_numpy(n, count, seed, opname):
    op = getattr(ops, opname)
    reduction = np.max if opname == "MAX" else np.min

    def work(comm):
        return comm.allreduce_array(
            _rank_data(seed, comm.rank, count), op
        )

    results = run_on_threads(n, work)
    expect = reduction(
        [_rank_data(seed, r, count) for r in range(n)], axis=0
    )
    for out in results:
        assert np.allclose(out, expect)


@given(world_sizes, st.integers(0, 64), seeds)
@settings(**_SETTINGS)
def test_bcast_delivers_root_payload(n, nbytes, seed):
    rng = np.random.default_rng(seed)
    payload = bytes(rng.integers(0, 256, nbytes, dtype=np.uint8))
    root = seed % n

    def work(comm):
        return comm.bcast_bytes(
            payload if comm.rank == root else None, root
        )

    for out in run_on_threads(n, work):
        assert out == payload


@given(world_sizes, st.integers(1, 32), seeds)
@settings(**_SETTINGS)
def test_allgather_roundtrip(n, nbytes, seed):
    rng = np.random.default_rng(seed)
    blocks = [
        bytes(rng.integers(0, 256, nbytes, dtype=np.uint8))
        for _ in range(n)
    ]

    def work(comm):
        return comm.allgather_bytes(blocks[comm.rank])

    for out in run_on_threads(n, work):
        assert out == blocks


@given(world_sizes, st.integers(1, 16), seeds)
@settings(**_SETTINGS)
def test_alltoall_is_transpose(n, nbytes, seed):
    rng = np.random.default_rng(seed)
    matrix = [
        [bytes(rng.integers(0, 256, nbytes, dtype=np.uint8))
         for _ in range(n)]
        for _ in range(n)
    ]

    def work(comm):
        return comm.alltoall_bytes(matrix[comm.rank])

    results = run_on_threads(n, work)
    for r, out in enumerate(results):
        assert out == [matrix[i][r] for i in range(n)]


@given(world_sizes, elem_counts, seeds)
@settings(**_SETTINGS)
def test_scan_prefix_property(n, count, seed):
    def work(comm):
        return comm.scan_array(_rank_data(seed, comm.rank, count), ops.SUM)

    results = run_on_threads(n, work)
    running = np.zeros(count)
    for r in range(n):
        running = running + _rank_data(seed, r, count)
        assert np.allclose(results[r], running)


@given(world_sizes, st.integers(1, 8), seeds)
@settings(**_SETTINGS)
def test_reduce_scatter_equals_reduce_then_slice(n, per_rank, seed):
    def work(comm):
        send = _rank_data(seed, comm.rank, per_rank * comm.size)
        return comm.reduce_scatter_array(
            send, [per_rank] * comm.size, ops.SUM
        )

    results = run_on_threads(n, work)
    total = np.sum(
        [_rank_data(seed, r, per_rank * n) for r in range(n)], axis=0
    )
    for r in range(n):
        assert np.allclose(
            results[r], total[r * per_rank:(r + 1) * per_rank]
        )


@given(world_sizes, seeds)
@settings(**_SETTINGS)
def test_gatherv_concatenation_order(n, seed):
    rng = np.random.default_rng(seed)
    lengths = [int(rng.integers(0, 10)) + 1 for _ in range(n)]
    blocks = [
        bytes(rng.integers(0, 256, lengths[r], dtype=np.uint8))
        for r in range(n)
    ]

    def work(comm):
        return comm.gatherv_bytes(blocks[comm.rank], None, 0)

    results = run_on_threads(n, work)
    assert results[0] == blocks
    for r in range(1, n):
        assert results[r] is None
