"""Journal tests: durability, replay, and the crash-resume property.

The hypothesis property at the bottom is the campaign driver's core
guarantee: kill the driver after *any* prefix of journal records (the
SIGKILL can land between any two fsyncs, or mid-append), resume, and
the completed-cell set is identical to an uninterrupted run with no
cell executed twice.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.journal import (
    CAMPAIGN_BEGIN, CAMPAIGN_END, CAMPAIGN_RESUMED, CELL_DONE, CELL_FAILED,
    CELL_PLANNED, CELL_QUARANTINED, CELL_STARTED, Journal, replay,
)
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultsStore
from tests.test_campaign_scheduler import (
    ScriptedBackend, make_doc, start_journal,
)


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append(CAMPAIGN_BEGIN, name="t", fingerprint="f00",
                           cells=2)
            journal.append(CELL_PLANNED, cell="a")
            journal.append(CELL_PLANNED, cell="b")
            journal.append(CELL_STARTED, cell="a", attempt=1, backend="x")
            journal.append(CELL_DONE, cell="a", attempt=1, elapsed_s=0.1,
                           backend="x")
            journal.append(CELL_FAILED, cell="b", attempt=1, error="boom",
                           kind="app_error", charged=True)
        state = replay(path)
        assert state.name == "t" and state.fingerprint == "f00"
        assert state.planned == ["a", "b"]
        assert state.done == {"a"}
        assert state.failures == {"b": 1}
        assert state.last_error == {"b": "boom"}
        assert state.pending() == ["b"]
        assert state.ended is None

    def test_uncharged_failures_do_not_count(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append(CELL_PLANNED, cell="a")
            journal.append(CELL_FAILED, cell="a", attempt=1,
                           error="driver stopping", kind="interrupted",
                           charged=False)
        assert replay(path).failures == {}

    def test_quarantine_and_end_and_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append(CELL_PLANNED, cell="a")
            journal.append(CELL_QUARANTINED, cell="a", failures=3)
            journal.append(CAMPAIGN_END, status="degraded", done=0,
                           missed=["a"])
            journal.append(CAMPAIGN_RESUMED, fingerprint="f00")
        state = replay(path)
        assert state.quarantined == {"a"}
        assert state.pending() == []
        assert state.ended is None       # the resume reopened it
        assert state.resumes == 1

    def test_inflight_tracking(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append(CELL_PLANNED, cell="a")
            journal.append(CELL_STARTED, cell="a", attempt=1, backend="x")
        state = replay(path)
        assert state.inflight == {"a"}
        assert state.pending() == ["a"]  # crash mid-cell: re-run it

    def test_missing_file_is_empty_state(self, tmp_path):
        state = replay(str(tmp_path / "nope.jsonl"))
        assert state.records == 0 and state.pending() == []

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append(CELL_PLANNED, cell="a")
            journal.append(CELL_DONE, cell="a", attempt=1)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "CELL_DONE", "cel')   # crash mid-append
        state = replay(path)
        assert state.torn_tail
        assert state.done == {"a"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("garbage\n")
            fh.write(json.dumps({"type": CELL_PLANNED, "cell": "a"}) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            replay(path)

    def test_unknown_record_type_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "CELL_EXPLODED", "cell": "a"}))
            fh.write("\n")
        with pytest.raises(ValueError, match="CELL_EXPLODED"):
            replay(path)
        with Journal(str(tmp_path / "k.jsonl")) as journal:
            with pytest.raises(ValueError, match="CELL_EXPLODED"):
                journal.append("CELL_EXPLODED", cell="a")

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append(CELL_PLANNED, cell="a")


# ---------------------------------------------------------------------------
# The crash-resume property.
# ---------------------------------------------------------------------------
def _run_campaign(root: str, spec: CampaignSpec,
                  journal_lines: list[str] | None = None) -> tuple:
    """One driver run (fresh or resumed) with a scripted backend."""
    path = os.path.join(root, "journal.jsonl")
    if journal_lines is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(journal_lines)
    state = replay(path)
    backend = ScriptedBackend()
    with Journal(path) as journal:
        if state.records == 0:
            start_journal(journal, spec)
            state = replay(path)
        else:
            journal.append(CAMPAIGN_RESUMED, fingerprint=spec.fingerprint())
        scheduler = CampaignScheduler(
            spec, journal, ResultsStore(root), backend,
            state=state, sleep=lambda _s: None,
        )
        result = scheduler.run()
    return result, backend, path


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_resume_after_any_journal_prefix_is_exactly_once(tmp_path_factory,
                                                         data):
    """Truncate the journal after any record (+ optionally a torn half
    record, as a real SIGKILL mid-``write`` leaves), resume, and check:
    identical completed-cell set, and no cell executed twice."""
    spec = CampaignSpec.from_document(make_doc(sizes=["1:4", "8:16",
                                                      "32:64"]))
    root = str(tmp_path_factory.mktemp("full"))
    full_result, _, full_path = _run_campaign(root, spec)
    assert full_result.status == "complete"
    with open(full_path, encoding="utf-8") as fh:
        lines = fh.readlines()

    cut = data.draw(st.integers(min_value=0, max_value=len(lines)),
                    label="records kept")
    torn = data.draw(st.booleans(), label="torn half-record at the cut")
    prefix = lines[:cut]
    if torn and cut < len(lines):
        prefix = prefix + [lines[cut][: max(1, len(lines[cut]) // 2)]]

    done_in_prefix = {
        json.loads(line)["cell"]
        for line in lines[:cut]
        if json.loads(line).get("type") == CELL_DONE
    }

    resume_root = str(tmp_path_factory.mktemp("resume"))
    result, backend, resumed_path = _run_campaign(
        resume_root, spec, journal_lines=prefix,
    )
    assert result.status == "complete"
    assert set(result.completed) == set(full_result.completed)

    # Nothing that was durably DONE before the crash ran again.
    assert not (set(backend.executed) & done_in_prefix)

    # Exactly one CELL_DONE per cell across crash + resume.
    counts: dict[str, int] = {}
    with open(resumed_path, encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("type") == CELL_DONE:
                counts[record["cell"]] = counts.get(record["cell"], 0) + 1
    assert counts == {c: 1 for c in spec.cell_ids()}
