"""Result tables, overhead statistics, and OSU-style output formatting."""

import pytest

from repro.core.output import format_comparison, format_table
from repro.core.results import ResultRow, ResultTable, average_overhead


def _table(name="osu_latency", values=None, metric="latency_us"):
    t = ResultTable(
        benchmark=name, metric=metric, ranks=2, buffer="numpy", api="buffer"
    )
    for size, v in (values or [(1, 1.0), (2, 2.0), (4, 4.0)]):
        t.add(ResultRow(size, v, v * 0.9, v * 1.1, 100))
    return t


class TestResultTable:
    def test_sizes_values(self):
        t = _table()
        assert t.sizes() == [1, 2, 4]
        assert t.values() == [1.0, 2.0, 4.0]

    def test_row_for(self):
        assert _table().row_for(2).value == 2.0

    def test_row_for_missing(self):
        with pytest.raises(KeyError):
            _table().row_for(999)

    def test_len_iter(self):
        t = _table()
        assert len(t) == 3
        assert [r.size for r in t] == [1, 2, 4]

    def test_scaled_row(self):
        r = ResultRow(8, 10.0, 9.0, 11.0, 5).scaled(2.0)
        assert (r.value, r.minimum, r.maximum) == (20.0, 18.0, 22.0)
        assert r.size == 8 and r.iterations == 5


class TestAverageOverhead:
    def test_basic(self):
        base = _table(values=[(1, 1.0), (2, 2.0)])
        other = _table(values=[(1, 1.5), (2, 3.0)])
        assert average_overhead(base, other) == pytest.approx(0.75)

    def test_subset_of_sizes(self):
        base = _table(values=[(1, 1.0), (2, 2.0), (4, 4.0)])
        other = _table(values=[(1, 2.0), (2, 4.0), (4, 8.0)])
        assert average_overhead(base, other, [4]) == pytest.approx(4.0)

    def test_disjoint_sizes_rejected(self):
        base = _table(values=[(1, 1.0)])
        other = _table(values=[(8, 1.0)])
        with pytest.raises(ValueError, match="share no message sizes"):
            average_overhead(base, other)


class TestOutput:
    def test_header_contains_metadata(self):
        text = format_table(_table())
        assert "# OMB-Py" in text
        assert "ranks: 2" in text
        assert "buffer: numpy" in text
        assert "Latency (us)" in text

    def test_rows_formatted(self):
        text = format_table(_table())
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(lines) == 3
        assert lines[0].startswith("1")
        assert "1.00" in lines[0]

    def test_full_stats_columns(self):
        text = format_table(_table(), full_stats=True)
        assert "Min" in text and "Max" in text and "Iters" in text

    def test_bandwidth_header(self):
        text = format_table(_table(metric="bandwidth_mbs"))
        assert "Bandwidth (MB/s)" in text

    def test_comparison_side_by_side(self):
        a = _table(values=[(1, 1.0), (2, 2.0)])
        b = _table(values=[(1, 1.5), (2, 2.5)])
        text = format_comparison([a, b], ["OMB", "OMB-Py"])
        assert "OMB" in text and "OMB-Py" in text
        assert "1.50" in text

    def test_comparison_missing_size_dash(self):
        a = _table(values=[(1, 1.0), (2, 2.0)])
        b = _table(values=[(1, 1.5)])
        assert "-" in format_comparison([a, b])

    def test_empty_comparison(self):
        assert format_comparison([]) == ""
