"""Point-to-point semantics over the threads transport."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, waitall, waitany
from repro.mpi.request import testall as request_testall
from repro.mpi.exceptions import RankError, TruncationError
from repro.mpi.world import run_on_threads


class TestBlockingSendRecv:
    def test_ping(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"ping", 1, 5)
            elif comm.rank == 1:
                data, st = comm.recv_bytes(0, 5, 16)
                assert data == b"ping"
                assert st.Get_source() == 0 and st.Get_tag() == 5
        run_on_threads(2, work)

    def test_empty_message(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"", 1, 1)
            else:
                data, st = comm.recv_bytes(0, 1, 0)
                assert data == b"" and st.count_bytes == 0
        run_on_threads(2, work)

    def test_large_message(self):
        payload = bytes(range(256)) * 4096  # 1 MB
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(payload, 1, 1)
            else:
                data, _ = comm.recv_bytes(0, 1, len(payload))
                assert data == payload
        run_on_threads(2, work)

    def test_non_overtaking_same_pair(self):
        def work(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send_bytes(bytes([i]), 1, 9)
            else:
                for i in range(50):
                    data, _ = comm.recv_bytes(0, 9, 1)
                    assert data == bytes([i])
        run_on_threads(2, work)

    def test_any_source_any_tag(self):
        def work(comm):
            if comm.rank == 0:
                got = set()
                for _ in range(2):
                    data, st = comm.recv_bytes(ANY_SOURCE, ANY_TAG, 8)
                    got.add((st.Get_source(), st.Get_tag(), data))
                assert got == {(1, 11, b"one"), (2, 22, b"two")}
            elif comm.rank == 1:
                comm.send_bytes(b"one", 0, 11)
            elif comm.rank == 2:
                comm.send_bytes(b"two", 0, 22)
        run_on_threads(3, work)

    def test_truncation_raises(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"too long", 1, 1)
            else:
                with pytest.raises(TruncationError):
                    comm.recv_bytes(0, 1, 3)
        run_on_threads(2, work)

    def test_self_send(self):
        def work(comm):
            req = comm.isend_bytes(b"me", comm.rank, 3)
            data, _ = comm.recv_bytes(comm.rank, 3, 8)
            req.wait()
            assert data == b"me"
        run_on_threads(2, work)

    def test_invalid_dest_raises(self):
        def work(comm):
            with pytest.raises(RankError):
                comm.send_bytes(b"x", 99, 0)
        run_on_threads(2, work)

    def test_proc_null_send_recv(self):
        def work(comm):
            comm.send_bytes(b"ignored", PROC_NULL, 0)
            data, st = comm.recv_bytes(PROC_NULL, 0, 16)
            assert data == b""
            assert st.cancelled or st.count_bytes == 0
        run_on_threads(2, work)

    def test_proc_null_recv_never_swallows_real_messages(self):
        """Regression: a PROC_NULL receive must not touch the matching
        engine — a posted-then-cancelled wildcard could steal a real
        message with the same tag arriving in the window (the halo-
        exchange deadlock)."""
        def work(comm):
            tag = 7
            if comm.rank == 0:
                # Interleave PROC_NULL recvs with real traffic on one tag.
                for i in range(50):
                    data, _ = comm.recv_bytes(PROC_NULL, tag, 16)
                    assert data == b""
                    real, _ = comm.recv_bytes(1, tag, 16)
                    assert real == bytes([i])
            elif comm.rank == 1:
                for i in range(50):
                    comm.send_bytes(bytes([i]), 0, tag)
        run_on_threads(2, work)


class TestNonBlocking:
    def test_isend_irecv(self):
        def work(comm):
            if comm.rank == 0:
                reqs = [comm.isend_bytes(bytes([i]), 1, i) for i in range(8)]
                waitall(reqs)
            else:
                reqs = [comm.irecv_bytes(0, i, 1) for i in range(8)]
                waitall(reqs)
                for i, r in enumerate(reqs):
                    assert r.payload() == bytes([i])
        run_on_threads(2, work)

    def test_irecv_sink_buffer(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"fill", 1, 1)
            else:
                sink = bytearray(4)
                req = comm.irecv_bytes(0, 1, 4, sink=sink)
                req.wait()
                assert bytes(sink) == b"fill"
        run_on_threads(2, work)

    def test_testall_incomplete_then_complete(self):
        def work(comm):
            if comm.rank == 0:
                req = comm.irecv_bytes(1, 1, 4)
                done, _ = request_testall([req])
                # May or may not be done yet; after barrier+wait must be.
                comm.barrier()
                req.wait()
                done, statuses = request_testall([req])
                assert done and statuses[0].Get_source() == 1
            else:
                comm.send_bytes(b"data", 0, 1)
                comm.barrier()
        run_on_threads(2, work)

    def test_waitany_returns_completed_index(self):
        def work(comm):
            if comm.rank == 0:
                never = comm.irecv_bytes(1, 99, 4)   # never satisfied
                soon = comm.irecv_bytes(1, 1, 4)
                idx = waitany([never, soon])
                assert idx == 1
                comm.endpoint.engine.cancel_recv(never._ticket)
            else:
                comm.send_bytes(b"data", 0, 1)
        run_on_threads(2, work)

    def test_send_request_completes_immediately(self):
        def work(comm):
            req = comm.isend_bytes(b"x", comm.rank, 0)
            assert req.done()
            comm.recv_bytes(comm.rank, 0, 1)
        run_on_threads(1, work)


class TestSendrecv:
    def test_exchange(self):
        def work(comm):
            other = 1 - comm.rank
            data, st = comm.sendrecv_bytes(
                bytes([comm.rank]), other, 7, other, 7, 1
            )
            assert data == bytes([other])
        run_on_threads(2, work)

    def test_ring_shift(self):
        def work(comm):
            p, r = comm.size, comm.rank
            data, _ = comm.sendrecv_bytes(
                bytes([r]), (r + 1) % p, 3, (r - 1) % p, 3, 1
            )
            assert data == bytes([(r - 1) % p])
        run_on_threads(5, work)


class TestProbeAPI:
    def test_probe_then_recv(self):
        def work(comm):
            if comm.rank == 0:
                comm.send_bytes(b"hello", 1, 42)
            else:
                st = comm.probe(0, 42, timeout=10)
                assert st.count_bytes == 5
                data, _ = comm.recv_bytes(0, 42, st.count_bytes)
                assert data == b"hello"
        run_on_threads(2, work)

    def test_iprobe_none_when_empty(self):
        def work(comm):
            assert comm.iprobe(ANY_SOURCE, ANY_TAG) is None
        run_on_threads(2, work)


class TestErrorPropagation:
    def test_rank_exception_propagates(self):
        def work(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 explodes")
        with pytest.raises(ValueError, match="rank 1 explodes"):
            run_on_threads(2, work)

    def test_timeout_reported_with_rank_names(self):
        def work(comm):
            if comm.rank == 0:
                comm.recv_bytes(1, 1, 4)  # never sent
        with pytest.raises(TimeoutError, match="rank-0"):
            run_on_threads(2, work, timeout=0.5)
