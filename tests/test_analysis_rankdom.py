"""Symbolic-rank domain: expression folding, three-valued predicates,
and guard normalization (the OMB402 false-positive class)."""

from __future__ import annotations

import ast

from repro.analysis.rankdom import (
    else_guard_value,
    eval_expr,
    eval_pred,
    is_rankish,
    is_sizeish,
    mentions_scale,
    rank_guard_value,
)


def expr(src: str) -> ast.expr:
    return ast.parse(src, mode="eval").body


class TestEvalExpr:
    def test_arithmetic_over_rank_and_size(self):
        env = {"rank": 3, "size": 8}
        assert eval_expr(expr("(rank + 1) % size"), env) == 4
        assert eval_expr(expr("size - 1"), env) == 7
        assert eval_expr(expr("2 * rank"), env) == 6
        assert eval_expr(expr("rank // 2"), env) == 1
        assert eval_expr(expr("1 << rank"), env) == 8

    def test_aliases_and_attributes(self):
        env = {"rank": 2, "size": 4}
        assert eval_expr(expr("world_rank"), env) == 2
        assert eval_expr(expr("comm.rank"), env) == 2
        assert eval_expr(expr("self.world_size"), env) == 4
        assert eval_expr(expr("comm.Get_rank()"), env) == 2

    def test_locals_and_unknowns(self):
        env = {"rank": 0, "size": 2, "step": 5}
        assert eval_expr(expr("step + 1"), env) == 6
        assert eval_expr(expr("mystery"), env) is None
        assert eval_expr(expr("rank + mystery"), env) is None

    def test_division_by_zero_is_unknown(self):
        assert eval_expr(expr("rank % size"), {"rank": 1, "size": 0}) is None


class TestEvalPred:
    def test_three_valued_compare(self):
        assert eval_pred(expr("rank == 0"), {"rank": 0, "size": 2}) is True
        assert eval_pred(expr("rank == 0"), {"rank": 1, "size": 2}) is False
        assert eval_pred(expr("rank == k"), {"rank": 1, "size": 2}) is None

    def test_not_and_boolops(self):
        env = {"rank": 0, "size": 4}
        assert eval_pred(expr("not rank"), env) is True
        assert eval_pred(expr("rank == 0 and size > 2"), env) is True
        assert eval_pred(expr("rank == 1 or size == 4"), env) is True
        # An unknown operand only matters when it could decide.
        assert eval_pred(expr("rank == 1 and mystery"), env) is False
        assert eval_pred(expr("rank == 0 or mystery"), env) is True
        assert eval_pred(expr("rank == 0 and mystery"), env) is None

    def test_bare_truthiness(self):
        assert eval_pred(expr("rank"), {"rank": 0, "size": 2}) is False
        assert eval_pred(expr("rank"), {"rank": 1, "size": 2}) is True

    def test_chained_compare(self):
        env = {"rank": 2, "size": 8}
        assert eval_pred(expr("0 < rank < size"), env) is True
        assert eval_pred(expr("0 < rank < 2"), env) is False


class TestGuardNormalization:
    def test_equivalent_spellings_of_rank_eq_zero(self):
        for spelling in ("rank == 0", "0 == rank", "not rank",
                         "rank < 1", "rank <= 0"):
            assert rank_guard_value(expr(spelling)) == 0, spelling

    def test_nonzero_roles(self):
        assert rank_guard_value(expr("rank == 1")) == 1
        # Structural path: K beyond the probe sizes still names role K.
        assert rank_guard_value(expr("rank == 5")) == 5
        assert rank_guard_value(expr("rank == 31")) == 31

    def test_non_single_rank_guards(self):
        assert rank_guard_value(expr("rank % 2 == 0")) is None
        assert rank_guard_value(expr("rank != 0")) is None
        assert rank_guard_value(expr("size == 2")) is None
        assert rank_guard_value(expr("flag")) is None

    def test_else_guard(self):
        assert else_guard_value(expr("rank != 0")) == 0
        assert else_guard_value(expr("rank")) == 0
        assert else_guard_value(expr("0 != rank")) == 0
        assert else_guard_value(expr("rank == 0")) is None


class TestScaleLeaves:
    def test_rank_and_size_recognition(self):
        assert is_rankish(expr("rank"))
        assert is_rankish(expr("self.world_rank"))
        assert is_sizeish(expr("nprocs"))
        assert is_sizeish(expr("comm.Get_size()"))
        assert not is_rankish(expr("count"))

    def test_mentions_scale(self):
        assert mentions_scale(expr("range(size)"))
        assert mentions_scale(expr("range(self.world_rank)"))
        assert mentions_scale(expr("range(1, size - 1)"))
        assert not mentions_scale(expr("range(10)"))
        assert not mentions_scale(expr("items"))
