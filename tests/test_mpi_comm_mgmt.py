"""Communicator management: Dup, Split, Free, Compare, sub-groups."""

import numpy as np
import pytest

from repro.mpi import constants as C
from repro.mpi import ops
from repro.mpi.exceptions import CommError, RootError
from repro.mpi.group import Group
from repro.mpi.world import run_on_threads


class TestDup:
    def test_dup_same_rank_size(self):
        def work(comm):
            dup = comm.Dup()
            assert dup.rank == comm.rank
            assert dup.size == comm.size
            assert dup.context != comm.context
        run_on_threads(4, work)

    def test_dup_isolates_traffic(self):
        """A message sent on the dup must not match a recv on the parent."""
        def work(comm):
            dup = comm.Dup()
            if comm.rank == 0:
                dup.send_bytes(b"dup-msg", 1, 5)
                comm.send_bytes(b"parent-msg", 1, 5)
            elif comm.rank == 1:
                data, _ = comm.recv_bytes(0, 5, 32)
                assert data == b"parent-msg"
                data, _ = dup.recv_bytes(0, 5, 32)
                assert data == b"dup-msg"
            comm.barrier()
        run_on_threads(2, work)

    def test_collectives_on_dup(self):
        def work(comm):
            dup = comm.Dup()
            out = dup.allreduce_array(np.ones(3), ops.SUM)
            assert np.allclose(out, dup.size)
        run_on_threads(3, work)


class TestSplit:
    def test_split_even_odd(self):
        def work(comm):
            sub = comm.Split(comm.rank % 2, comm.rank)
            evens = (comm.size + 1) // 2
            odds = comm.size // 2
            assert sub.size == (evens if comm.rank % 2 == 0 else odds)
            # Ranks ordered by key within each color.
            assert sub.rank == comm.rank // 2
            return sub.allreduce_array(np.array([1.0]), ops.SUM)[0]
        results = run_on_threads(5, work)
        assert results == [3.0, 2.0, 3.0, 2.0, 3.0]

    def test_split_key_reverses_order(self):
        def work(comm):
            sub = comm.Split(0, -comm.rank)
            return sub.rank
        results = run_on_threads(4, work)
        assert results == [3, 2, 1, 0]

    def test_split_negative_color_returns_none(self):
        def work(comm):
            sub = comm.Split(-1 if comm.rank == 0 else 0, comm.rank)
            if comm.rank == 0:
                assert sub is None
            else:
                assert sub.size == comm.size - 1
        run_on_threads(3, work)

    def test_split_subcomm_p2p(self):
        def work(comm):
            sub = comm.Split(comm.rank % 2)
            if sub.size >= 2:
                if sub.rank == 0:
                    sub.send_bytes(b"within-color", 1, 1)
                elif sub.rank == 1:
                    data, _ = sub.recv_bytes(0, 1, 32)
                    assert data == b"within-color"
            comm.barrier()
        run_on_threads(4, work)

    def test_nested_split(self):
        def work(comm):
            half = comm.Split(comm.rank // 2)
            quarter = half.Split(half.rank)
            assert quarter.size == 1
            return quarter.allreduce_array(np.array([5.0]), ops.SUM)[0]
        assert run_on_threads(4, work) == [5.0] * 4


class TestCreateFromGroup:
    def test_subgroup_comm(self):
        def work(comm):
            sub_group = Group([0, 2])
            sub = comm.Create_from_group(sub_group)
            if comm.rank in (0, 2):
                assert sub is not None
                assert sub.size == 2
                out = sub.allreduce_array(np.array([1.0]), ops.SUM)
                assert out[0] == 2.0
            else:
                assert sub is None
        run_on_threads(4, work)


class TestFreeAndCompare:
    def test_freed_comm_rejects_operations(self):
        def work(comm):
            dup = comm.Dup()
            dup.Free()
            with pytest.raises(CommError, match="freed"):
                dup.send_bytes(b"x", 0, 0)
        run_on_threads(2, work)

    def test_compare_ident_self(self):
        def work(comm):
            assert comm.Compare(comm) == C.IDENT
        run_on_threads(2, work)

    def test_compare_congruent_dup(self):
        def work(comm):
            dup = comm.Dup()
            assert comm.Compare(dup) == C.CONGRUENT
        run_on_threads(2, work)

    def test_invalid_root_rejected(self):
        def work(comm):
            with pytest.raises(RootError):
                comm.bcast_bytes(b"x", comm.size + 3)
        run_on_threads(2, work)
