"""ombpy CLI driver tests."""

import pytest

from repro.core.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "osu_latency" in out
        assert "osu_allreduce" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["osu_quantum", "--threads", "2"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_invalid_option_combo(self, capsys):
        rc = main(["osu_latency", "--threads", "2", "-d", "cpu",
                   "-b", "cupy"])
        assert rc == 2
        assert "requires" in capsys.readouterr().err

    def test_threads_run_prints_table(self, capsys):
        rc = main([
            "osu_latency", "--threads", "2", "-m", "1:16",
            "-i", "3", "-x", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# OMB-Py" in out
        assert "Latency (us)" in out

    def test_threads_collective(self, capsys):
        rc = main([
            "osu_bcast", "--threads", "3", "-m", "1:8", "-i", "2",
            "-x", "0",
        ])
        assert rc == 0
        assert "Bcast" in capsys.readouterr().out

    def test_full_stats_flag(self, capsys):
        rc = main([
            "osu_latency", "--threads", "2", "-m", "1:4", "-i", "2",
            "-x", "0", "-f",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Min" in out and "Max" in out

    def test_gpu_buffer_run(self, capsys):
        rc = main([
            "osu_latency", "--threads", "2", "-d", "gpu", "-b", "numba",
            "-m", "1:4", "-i", "2", "-x", "0",
        ])
        assert rc == 0
        assert "numba" in capsys.readouterr().out

    def test_output_csv(self, capsys, tmp_path):
        out = tmp_path / "lat.csv"
        rc = main([
            "osu_latency", "--threads", "2", "-m", "1:8", "-i", "2",
            "-x", "0", "--output", str(out),
        ])
        assert rc == 0
        text = out.read_text()
        assert text.startswith("size,latency_us")
        assert len(text.splitlines()) == 5  # header + sizes 1,2,4,8

    def test_output_json(self, capsys, tmp_path):
        out = tmp_path / "lat.json"
        rc = main([
            "osu_latency", "--threads", "2", "-m", "1:4", "-i", "2",
            "-x", "0", "--output", str(out),
        ])
        assert rc == 0
        import json

        data = json.loads(out.read_text())
        assert data["benchmark"] == "osu_latency"
        assert len(data["rows"]) == 3

    def test_simulate_latency(self, capsys):
        rc = main(["osu_latency", "--simulate", "Frontera", "-m", "1:64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Latency (us)" in out
        assert out.count("\n") >= 7

    def test_simulate_collective_layout(self, capsys):
        rc = main([
            "osu_allreduce", "--simulate", "RI2", "--simulate-nodes", "4",
            "--simulate-ppn", "28", "-m", "4:64",
        ])
        assert rc == 0
        assert "ranks: 112" in capsys.readouterr().out

    def test_simulate_bandwidth_and_bibw_doubles(self, capsys):
        rc = main(["osu_bw", "--simulate", "Frontera", "-m", "1024:1024"])
        assert rc == 0
        bw = float(capsys.readouterr().out.splitlines()[-1].split()[-1])
        rc = main(["osu_bibw", "--simulate", "Frontera", "-m", "1024:1024"])
        assert rc == 0
        bibw = float(capsys.readouterr().out.splitlines()[-1].split()[-1])
        assert bibw == pytest.approx(2 * bw)

    def test_simulate_unknown_cluster(self, capsys):
        rc = main(["osu_latency", "--simulate", "Summit"])
        assert rc == 2
        assert "unknown cluster" in capsys.readouterr().err

    def test_simulate_unmapped_benchmark(self, capsys):
        rc = main(["osu_multi_lat", "--simulate", "Frontera"])
        assert rc == 2
        assert "no simulation mapping" in capsys.readouterr().err

    def test_singleton_world_runs_barrier(self, capsys, monkeypatch):
        from repro.mpi.world import ENV_RANK

        monkeypatch.delenv(ENV_RANK, raising=False)
        # osu_barrier needs >= 2 ranks; expect clean error (exception is
        # raised inside run, so use a 1-rank-legal invalid benchmark call).
        with pytest.raises(ValueError, match="at least 2"):
            main(["osu_barrier", "-i", "2", "-x", "0"])
