"""The buffer-race sanitizer (``repro.analysis.sanitize``).

All hazard fixtures run on the threads transport and deliberately commit
the four races the sanitizer exists for; the key property is that each
diagnostic names the buffer, the pending operation, and both source
locations.  Clean benchmark-shaped traffic must produce zero findings.

Several fixtures intentionally contain the static-lint counterparts of
these hazards (OMB002/OMB007/OMB008); those lines carry pragmas so the
self-host lint stays clean.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import (
    CollectiveBufferError,
    OverlappingPinError,
    ReadBeforeWaitError,
    VectorClock,
    WriteAfterPostError,
    sanitize,
)
from repro.bindings.comm_api import Comm as BindingsComm
from repro.mpi import persistent
from repro.mpi.world import run_on_threads


class TestVectorClock:
    def test_tick_advances_own_component(self):
        clock = VectorClock(rank=1, size=3)
        assert clock.tick() == (0, 1, 0)
        assert clock.tick() == (0, 2, 0)
        assert clock.snapshot() == (0, 2, 0)

    def test_merge_takes_componentwise_max(self):
        clock = VectorClock(rank=0, size=3)
        clock.tick()
        clock.merge((0, 5, 2))
        assert clock.snapshot() == (1, 5, 2)

    def test_leq_and_concurrent(self):
        assert VectorClock.leq((1, 2), (1, 3))
        assert not VectorClock.leq((2, 2), (1, 3))
        assert VectorClock.concurrent((2, 0), (0, 2))
        assert not VectorClock.concurrent((1, 1), (2, 2))


class TestWriteAfterIsend:
    def test_mutation_between_post_and_wait_raises(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(64, dtype="u1")
            with sanitize(comm):
                if comm.rank == 0:
                    req = b.Isend(buf, 1, 7)
                    buf[0] = 99  # ombpy-lint: ignore[OMB007]
                    req.wait()
                else:
                    b.Recv(buf, 0, 7)

        with pytest.raises(WriteAfterPostError) as excinfo:
            run_on_threads(2, body, timeout=30)
        msg = str(excinfo.value)
        # The diagnostic names the buffer, the operation, and both the
        # post site and the detection site.
        assert "ndarray" in msg and "64 bytes" in msg
        assert "'Isend'" in msg
        assert msg.count("test_analysis_race.py") == 2

    def test_nonstrict_records_finding_instead(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(64, dtype="u1")
            with sanitize(comm, strict=False) as s:
                if comm.rank == 0:
                    req = b.Isend(buf, 1, 7)
                    buf[0] = 99  # ombpy-lint: ignore[OMB007]
                    req.wait()
                else:
                    b.Recv(buf, 0, 7)
                return [f.rule for f in s.findings]

        results = run_on_threads(2, body, timeout=30)
        assert results[0] == ["OMB201"]
        assert results[1] == []


class TestTouchBeforeWait:
    def test_irecv_buffer_written_before_wait_raises(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(32, dtype="u1")
            with sanitize(comm):
                if comm.rank == 1:
                    req = b.Irecv(buf, 0, 3)
                    buf[5] = 1  # ombpy-lint: ignore[OMB007]
                    b.Send(np.ones(1, dtype="u1"), 0, 9)
                    req.Wait()
                else:
                    b.Recv(np.zeros(1, dtype="u1"), 1, 9)
                    b.Send(np.arange(32, dtype="u1"), 1, 3)

        with pytest.raises(ReadBeforeWaitError) as excinfo:
            run_on_threads(2, body, timeout=30)
        msg = str(excinfo.value)
        assert "'Irecv'" in msg
        assert "written between" in msg

    def test_blocking_send_of_pinned_recv_buffer_raises(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(32, dtype="u1")
            with sanitize(comm):
                if comm.rank == 1:
                    req = b.Irecv(buf, 0, 3)  # ombpy-lint: ignore[OMB002]
                    b.Send(buf, 0, 9)  # ombpy-lint: ignore[OMB008]
                    req.Wait()

        with pytest.raises(ReadBeforeWaitError) as excinfo:
            run_on_threads(2, body, timeout=30)
        msg = str(excinfo.value)
        assert "'Send'" in msg and "'Irecv'" in msg
        assert "reads" in msg and "overlaps" in msg


class TestOverlappingPins:
    def test_overlapping_irecv_slices_raise(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(128, dtype="u1")
            with sanitize(comm):
                if comm.rank == 1:
                    r1 = b.Irecv(buf[:64], 0, 1)  # ombpy-lint: ignore[OMB002]
                    r2 = b.Irecv(buf[32:96], 0, 2)  # ombpy-lint: ignore[OMB002]
                    r1.Wait()
                    r2.Wait()

        with pytest.raises(OverlappingPinError) as excinfo:
            run_on_threads(2, body, timeout=30)
        msg = str(excinfo.value)
        # Both post sites and the address interval appear.
        assert msg.count("test_analysis_race.py") == 2
        assert "0x" in msg

    def test_disjoint_slices_and_send_windows_clean(self):
        def body(comm):
            b = BindingsComm(comm)
            sbuf = np.ones(32, dtype="u1")
            rbuf = np.zeros(128, dtype="u1")
            with sanitize(comm) as s:
                if comm.rank == 0:
                    # osu_bw shape: a window of sends of one buffer.
                    reqs = [b.Isend(sbuf, 1, i) for i in range(4)]
                    for req in reqs:
                        req.wait()
                else:
                    reqs = [
                        b.Irecv(rbuf[i * 32:(i + 1) * 32], 0, i)
                        for i in range(4)
                    ]
                    for req in reqs:
                        req.Wait()
                return s.findings

        assert run_on_threads(2, body, timeout=30) == [[], []]


class TestCollectiveMutation:
    def test_nonroot_bcast_buffer_mutated_midflight_raises(self):
        shared = {}

        def body(comm):
            b = BindingsComm(comm)
            buf = np.full(256, comm.rank, dtype="u1")
            with sanitize(comm) as s:
                if comm.rank == 1:
                    # Publish this rank's buffer and clock, then enter the
                    # collective; rank 0 mutates the buffer once the entry
                    # snapshot is visibly taken, then joins as root.
                    shared["buf"] = buf
                    shared["baseline"] = s.clock.snapshot()[1]
                    shared["clock"] = s.clock
                    b.Bcast(buf, root=0)
                else:
                    deadline = time.monotonic() + 10
                    while "clock" not in shared or (
                        shared["clock"].snapshot()[1]
                        <= shared["baseline"]
                    ):
                        if time.monotonic() > deadline:
                            raise TimeoutError("peer never entered Bcast")
                        time.sleep(0.002)
                    shared["buf"][17] ^= 0xFF
                    b.Bcast(buf, root=0)

        with pytest.raises(CollectiveBufferError) as excinfo:
            run_on_threads(2, body, timeout=30)
        msg = str(excinfo.value)
        assert "rank 1" in msg
        assert "bcast(root=0)" in msg
        assert "entry epoch" in msg

    def test_clean_bcast_all_ranks_no_findings(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = (
                np.arange(64, dtype="u1") if comm.rank == 0
                else np.zeros(64, dtype="u1")
            )
            with sanitize(comm) as s:
                b.Bcast(buf, root=0)
                assert buf[63] == 63
                return s.findings

        results = run_on_threads(4, body, timeout=30)
        assert all(f == [] for f in results)


class TestPersistentRequests:
    def test_persistent_send_buffer_mutated_raises(self):
        def body(comm):
            buf = bytearray(b"x" * 48)
            with sanitize(comm):
                if comm.rank == 0:
                    preq = persistent.send_init(comm, buf, 1, 5)
                    preq.Start()
                    buf[0] = 0  # mutate while the instance is in flight
                    preq.Wait()
                else:
                    comm.recv_bytes(0, 5, 48)

        with pytest.raises(WriteAfterPostError, match="'Send_init'"):
            run_on_threads(2, body, timeout=30)

    def test_persistent_roundtrip_clean(self):
        def body(comm):
            buf = bytearray(48)
            with sanitize(comm) as s:
                if comm.rank == 0:
                    preq = persistent.send_init(comm, b"y" * 48, 1, 5)
                else:
                    preq = persistent.recv_init(comm, buf, 0, 5)
                for _ in range(3):
                    preq.Start()
                    preq.Wait()
                if comm.rank == 1:
                    assert bytes(buf) == b"y" * 48
                return s.findings

        assert run_on_threads(2, body, timeout=30) == [[], []]


class TestLeakedPins:
    def test_pending_pin_at_region_exit_is_warning_finding(self):
        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(16, dtype="u1")
            with sanitize(comm) as s:
                if comm.rank == 1:
                    b.Irecv(buf, 0, 4)  # ombpy-lint: ignore[OMB002]
                return s.findings

        results = run_on_threads(2, body, timeout=30)
        assert results[0] == []
        assert [f.rule for f in results[1]] == ["OMB205"]
        assert results[1][0].severity == "warning"
        assert "'Irecv'" in results[1][0].message


class TestCleanTraffic:
    def test_ping_pong_zero_findings(self):
        def body(comm):
            b = BindingsComm(comm)
            sbuf = np.ones(256, dtype="u1")
            rbuf = np.zeros(256, dtype="u1")
            peer = 1 - comm.rank
            with sanitize(comm) as s:
                for i in range(20):
                    if comm.rank == 0:
                        req = b.Isend(sbuf, peer, i)
                        req.wait()
                        b.Recv(rbuf, peer, i)
                    else:
                        b.Recv(rbuf, peer, i)
                        req = b.Isend(sbuf, peer, i)
                        req.wait()
                return s.findings

        assert run_on_threads(2, body, timeout=60) == [[], []]

    def test_composes_with_verify(self):
        from repro.analysis import verify

        def body(comm):
            b = BindingsComm(comm)
            buf = np.zeros(64, dtype="u1")
            with verify(comm, grace=0.1, op_timeout=5.0) as v:
                with sanitize(comm) as s:
                    if comm.rank == 0:
                        b.Send(np.arange(64, dtype="u1"), 1, 2)
                    else:
                        b.Recv(buf, 0, 2)
                    comm.barrier()
                    return v.findings + s.findings

        assert run_on_threads(2, body, timeout=30) == [[], []]


class TestRunnerIntegration:
    def test_sanitize_flag_runs_pt2pt_benchmark_clean(self):
        from repro.core import Options, get_benchmark
        from repro.core.runner import BenchContext

        bench = get_benchmark("osu_latency")
        opts = Options(
            min_size=1, max_size=64, iterations=2, warmup=1, sanitize=True
        )
        tables = run_on_threads(
            2, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)

    def test_sanitize_and_validate_collective_benchmark(self):
        from repro.core import Options, get_benchmark
        from repro.core.runner import BenchContext

        bench = get_benchmark("osu_allreduce")
        opts = Options(
            min_size=4, max_size=64, iterations=2, warmup=1,
            validate=True, sanitize=True,
        )
        tables = run_on_threads(
            4, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)

    def test_sanitize_bandwidth_window_clean(self):
        # osu_bw posts whole windows of Isends of one source buffer —
        # the canonical case OMB203 must not false-positive on.
        from repro.core import Options, get_benchmark
        from repro.core.runner import BenchContext

        bench = get_benchmark("osu_bw")
        opts = Options(
            min_size=1, max_size=64, iterations=2, warmup=1, sanitize=True
        )
        tables = run_on_threads(
            2, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)


class TestResolveTargets:
    def test_accepts_bindings_comm(self):
        def body(comm):
            b = BindingsComm(comm)
            with sanitize(b) as s:
                b.Barrier()
                return s.findings

        assert run_on_threads(2, body, timeout=30) == [[], []]

    def test_rejects_non_communicator(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            with sanitize(object()):
                pass
