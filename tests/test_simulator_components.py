"""Unit tests for simulator components: machine, mpilibs, congestion,
calibration formulas."""

import math

import pytest

from repro.simulator import calibration
from repro.simulator.clusters import FRONTERA, RI2_GPU
from repro.simulator.collective_cost import (
    GAMMA_US_PER_BYTE,
    collective_us,
    congested,
)
from repro.simulator.loggp import NetworkModel
from repro.simulator.machine import GPUModel, NodeModel
from repro.simulator.mpilibs import INTEL_MPI, MVAPICH2, MPILibProfile

NET = NetworkModel(
    alpha_us=1.0, beta_us_per_byte=1e-4, gap_us_per_byte=8e-5
)


class TestNodeModel:
    def test_core_count(self):
        node = NodeModel("X", sockets=2, cores_per_socket=28, ghz=2.7,
                         ram_gb=192)
        assert node.cores == 56

    def test_copy_time_scales_linearly(self):
        node = NodeModel("X", 1, 4, 2.0, 64, copy_bw_bytes_per_us=1000.0)
        assert node.copy_us(1000) == pytest.approx(1.0)
        assert node.copy_us(2000) == pytest.approx(2.0)

    def test_gpu_model_fields(self):
        gpu = GPUModel("V100", memory_gb=32)
        assert gpu.memory_gb == 32
        assert gpu.transfer_setup_us > 0


class TestMpiLibProfiles:
    def test_mvapich2_is_identity(self):
        out = MVAPICH2.apply(NET)
        assert out.alpha_us == NET.alpha_us
        assert out.gap_us_per_byte == NET.gap_us_per_byte

    def test_intel_adds_flat_alpha(self):
        out = INTEL_MPI.apply(NET)
        assert out.alpha_us == pytest.approx(NET.alpha_us + 0.36)
        # Per-byte latency untouched (the paper's diff is flat).
        assert out.beta_us_per_byte == NET.beta_us_per_byte

    def test_intel_lowers_injection_rate(self):
        out = INTEL_MPI.apply(NET)
        assert out.gap_us_per_byte > NET.gap_us_per_byte

    def test_profile_uses_beta_when_gap_missing(self):
        net = NetworkModel(alpha_us=1.0, beta_us_per_byte=2e-4)
        out = MPILibProfile("x", injection_factor=0.5).apply(net)
        assert out.gap_us_per_byte == pytest.approx(4e-4)


class TestCongestion:
    def test_single_ppn_unchanged(self):
        assert congested(NET, 1) is NET

    def test_ppn_scales_byte_terms(self):
        out = congested(NET, 8)
        assert out.beta_us_per_byte == pytest.approx(8e-4)
        assert out.gap_us_per_byte == pytest.approx(8 * 8e-5)
        assert out.alpha_us == NET.alpha_us  # latency floor unchanged

    def test_collective_cost_grows_with_ppn(self):
        one = collective_us("allgather", NET, p=16, n=8192, ppn=1)
        many = collective_us("allgather", NET, p=16, n=8192, ppn=16)
        assert many > one


class TestCollectiveCostProperties:
    @pytest.mark.parametrize("op", [
        "barrier", "bcast", "reduce", "allreduce", "allgather",
        "alltoall", "gather", "scatter", "reduce_scatter",
    ])
    def test_single_rank_free(self, op):
        assert collective_us(op, NET, p=1, n=1024) == 0.0

    @pytest.mark.parametrize("op", [
        "bcast", "allreduce", "allgather", "alltoall", "reduce",
    ])
    def test_monotone_in_message_size(self, op):
        values = [
            collective_us(op, NET, p=8, n=n)
            for n in (64, 1024, 16384, 262144)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("op", ["barrier", "allreduce", "allgather"])
    def test_monotone_in_rank_count(self, op):
        values = [
            collective_us(op, NET, p=p, n=2048) for p in (2, 4, 8, 16)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            collective_us("allfoo", NET, p=2, n=8)

    def test_reduce_includes_compute_term(self):
        # With a free network, reduce cost is pure reduction compute.
        free = NetworkModel(alpha_us=0.0, beta_us_per_byte=0.0)
        n = 1 << 20
        cost = collective_us("reduce", free, p=2, n=n)
        assert cost == pytest.approx(GAMMA_US_PER_BYTE * n)


class TestCalibrationFormulas:
    def test_cpu_collective_fixed_term(self):
        binding = FRONTERA.binding_inter
        ovh = calibration.cpu_collective_overhead_us(
            "allreduce", 0, 16, binding
        )
        assert ovh == pytest.approx(4 * binding.call_us)

    def test_cpu_byte_factor_grows_with_p(self):
        assert calibration.cpu_byte_factor(
            "allgather", 32
        ) > calibration.cpu_byte_factor("allgather", 8)

    def test_full_subscription_zero_below_cores(self):
        assert calibration.full_subscription_penalty_us(
            "allgather", 8192, 896, ppn=55, cores=56
        ) == 0.0

    def test_allgather_penalty_peaks_at_32k(self):
        args = dict(op="allgather", p=896, ppn=56, cores=56)
        peak = calibration.full_subscription_penalty_us(
            nbytes=32768, **args
        )
        for n in (1, 8192, 16384, 1 << 20):
            assert calibration.full_subscription_penalty_us(
                nbytes=n, **args
            ) <= peak

    def test_allreduce_penalty_flat_in_small_range(self):
        a = calibration.full_subscription_penalty_us(
            "allreduce", 1, 896, 56, 56
        )
        b = calibration.full_subscription_penalty_us(
            "allreduce", 8192, 896, 56, 56
        )
        assert a == b

    def test_gpu_overhead_orders_by_library(self):
        gpu = RI2_GPU.gpu_buffers
        assert gpu is not None
        cupy = calibration.gpu_collective_overhead_us(
            "allreduce", 64, 8, "cupy", gpu
        )
        numba = calibration.gpu_collective_overhead_us(
            "allreduce", 64, 8, "numba", gpu
        )
        assert numba > cupy

    def test_gpu_overhead_scales_with_log_p(self):
        gpu = RI2_GPU.gpu_buffers
        assert gpu is not None
        p8 = calibration.gpu_collective_overhead_us(
            "allgather", 64, 8, "cupy", gpu
        )
        p16 = calibration.gpu_collective_overhead_us(
            "allgather", 64, 16, "cupy", gpu
        )
        assert p16 / p8 == pytest.approx(
            math.log2(16) / math.log2(8), rel=0.01
        )

    def test_pickle_extra_piecewise(self):
        below = calibration.pickle_extra_us(1024)
        at_edge = calibration.pickle_extra_us(65536)
        above = calibration.pickle_extra_us(131072)
        assert below < at_edge < above
        # Above the knee, the large-regime slope dominates.
        slope = (above - at_edge) / 65536
        assert slope == pytest.approx(
            calibration.PICKLE_LARGE_BYTE_US + calibration.PICKLE_BYTE_US,
            rel=0.01,
        )

    def test_pickle_bw_extra_saturates_then_jumps(self):
        at_8k = calibration.pickle_bw_extra_us(8192)
        at_32k = calibration.pickle_bw_extra_us(32768)
        at_128k = calibration.pickle_bw_extra_us(131072)
        assert at_32k == at_8k  # saturation band
        assert at_128k > 10 * at_8k  # post-64K collapse
