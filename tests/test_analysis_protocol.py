"""Rank-symbolic protocol verifier (OMB501-506): parametric replay of
rank-branching functions across the job-size ladder."""

from __future__ import annotations

import ast

from repro.analysis.commgraph import run_commgraph_rules
from repro.analysis.interproc import Program, load_program
from repro.analysis.protocol import run_protocol_rules


def program_of(*sources: str) -> Program:
    prog = Program()
    for i, src in enumerate(sources):
        prog.add_module(f"mod{i}.py", ast.parse(src))
    prog.finalize()
    return prog


def rules_of(*sources: str) -> list[str]:
    findings = run_protocol_rules(program_of(*sources))
    return sorted(f.rule for f in findings)


RING_BAD = (
    "def ring(comm, rank, size, buf):\n"
    "    left = (rank - 1) % size\n"
    "    right = (rank + 1) % size\n"
    "    data = comm.recv_bytes(left, 7, 64)\n"
    "    comm.send_bytes(buf, right, 7)\n"
)

RING_OK = (
    "def ring(comm, rank, size, buf):\n"
    "    left = (rank - 1) % size\n"
    "    right = (rank + 1) % size\n"
    "    if rank == 0:\n"
    "        comm.send_bytes(buf, right, 7)\n"
    "        comm.recv_bytes(left, 7, 64)\n"
    "    else:\n"
    "        data = comm.recv_bytes(left, 7, 64)\n"
    "        comm.send_bytes(buf, right, 7)\n"
)


class TestDeadlockProofs:
    def test_symmetric_ring_deadlocks_and_commgraph_misses_it(self):
        # Every rank blocks in recv before anyone sends: a genuine
        # rank-dependent deadlock.  The syntactic commgraph is blind to
        # it (each recv has a matching send *somewhere*), which is the
        # reason this family exists.
        assert rules_of(RING_BAD) == ["OMB505"]
        assert run_commgraph_rules(program_of(RING_BAD)) == []

    def test_staggered_ring_is_clean(self):
        assert rules_of(RING_OK) == []

    def test_deadlock_reported_once_with_symbolic_peers(self):
        (finding,) = run_protocol_rules(program_of(RING_BAD))
        assert finding.severity == "error"
        assert "ring" in finding.message
        assert finding.line == 4  # anchored at the blocking recv

    def test_head_to_head_rendezvous_sends(self):
        # Both ranks Send before either receives.  The repo's buffered
        # fabric absorbs it, so this is the eager-dependent class.
        src = (
            "def swap(comm, rank, buf):\n"
            "    peer = 1 - rank\n"
            "    comm.Send(buf, peer, 3)\n"
            "    comm.Recv(buf, peer, 3)\n"
        )
        assert rules_of(src) == ["OMB506"]

    def test_unknown_trip_loop_still_proves_ring_deadlock(self):
        # The per-iteration body deadlocks regardless of the trip count,
        # so one symbolic unrolling is enough to prove it.
        src = (
            "def ring(comm, rank, size, buf, iters):\n"
            "    for _ in range(iters):\n"
            "        data = comm.recv_bytes((rank - 1) % size, 7, 64)\n"
            "        comm.send_bytes(buf, (rank + 1) % size, 7)\n"
        )
        assert rules_of(src) == ["OMB505"]


class TestCollectiveConsistency:
    def test_rank_classes_reach_different_collectives(self):
        src = (
            "def mixed(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.bcast_bytes(buf, 0)\n"
            "    else:\n"
            "        comm.barrier()\n"
        )
        assert rules_of(src) == ["OMB501"]

    def test_subset_collective(self):
        src = (
            "def subset(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.barrier()\n"
        )
        assert rules_of(src) == ["OMB502"]

    def test_same_collective_everywhere_is_clean(self):
        src = (
            "def fine(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        buf = prepare(buf)\n"
            "    comm.bcast_bytes(buf, 0)\n"
            "    comm.barrier()\n"
        )
        assert rules_of(src) == []


class TestMatching:
    def test_unreceived_send(self):
        src = (
            "def lonely(comm, rank, buf):\n"
            "    if rank == 0:\n"
            "        comm.isend_bytes(buf, 1, 9)\n"
        )
        findings = run_protocol_rules(program_of(src))
        assert [f.rule for f in findings] == ["OMB503"]
        # The message states the proof is size-parametric.
        assert "N ∈" in findings[0].message

    def test_unmatched_recv_is_an_error(self):
        src = (
            "def starved(comm, rank):\n"
            "    if rank == 1:\n"
            "        comm.recv_bytes(0, 9, 64)\n"
        )
        assert rules_of(src) == ["OMB504"]

    def test_parity_exchange_is_clean(self):
        src = (
            "def pairwise(comm, rank, size, buf):\n"
            "    if rank % 2 == 0:\n"
            "        comm.send_bytes(buf, rank + 1, 5)\n"
            "        data = comm.recv_bytes(rank + 1, 6, 64)\n"
            "    else:\n"
            "        data = comm.recv_bytes(rank - 1, 5, 64)\n"
            "        comm.send_bytes(buf, rank - 1, 6)\n"
        )
        # Eligible only at even sizes; odd sizes leave rank size-1
        # unmatched, so the verifier must not claim cleanliness there.
        findings = run_protocol_rules(program_of(src))
        assert [f.rule for f in findings] in ([], ["OMB503"], ["OMB504"])

    def test_sendrecv_ring_is_clean(self):
        src = (
            "def shift(comm, rank, size, buf):\n"
            "    out = comm.sendrecv_bytes(\n"
            "        buf, (rank + 1) % size, 7, (rank - 1) % size, 7, 64)\n"
        )
        assert rules_of(src) == []


class TestEligibility:
    def test_unresolvable_peer_makes_function_ineligible(self):
        src = (
            "def dynamic(comm, rank, peers, buf):\n"
            "    for p in peers:\n"
            "        comm.send_bytes(buf, p, 1)\n"
        )
        assert rules_of(src) == []

    def test_unknown_branch_with_comm_is_ineligible(self):
        src = (
            "def flaky(comm, rank, cond, buf):\n"
            "    if cond:\n"
            "        comm.send_bytes(buf, 0, 1)\n"
        )
        assert rules_of(src) == []

    def test_service_loop_is_ineligible(self):
        src = (
            "def serve(comm, rank, buf):\n"
            "    while True:\n"
            "        msg = comm.recv_bytes(-1, -1, 64)\n"
        )
        assert rules_of(src) == []

    def test_proc_null_shift_is_clean(self):
        # Nonperiodic boundary: PROC_NULL (-2) peers are no-ops.
        src = (
            "def shift(comm, rank, size, buf):\n"
            "    up = rank - 1 if rank > 0 else -2\n"
            "    down = rank + 1 if rank < size - 1 else -2\n"
            "    r = comm.irecv_bytes(up, 4, 64)\n"
            "    s = comm.isend_bytes(buf, down, 4)\n"
            "    r.wait()\n"
            "    s.wait()\n"
        )
        assert rules_of(src) == []


class TestSelfHost:
    def test_shipped_tree_is_protocol_clean(self):
        # The acceptance bar: zero OMB50x findings on the repo's own
        # correct benchmarks, examples, and runtime.
        program = load_program(["src", "benchmarks", "examples"])
        findings = run_protocol_rules(program)
        assert findings == [], [f.format() for f in findings]
