"""One-sided communication (RMA) tests."""

import numpy as np
import pytest

from repro.mpi import ops
from repro.mpi.rma import Win, WinError
from repro.mpi.world import run_on_threads


class TestPutGet:
    def test_put_visible_at_target(self):
        def work(comm):
            mem = bytearray(8)
            win = Win(comm, mem)
            try:
                if comm.rank == 0:
                    win.Put(b"ABCDEFGH", 1)
                win.Fence()
                if comm.rank == 1:
                    assert bytes(mem) == b"ABCDEFGH"
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_put_with_offset(self):
        def work(comm):
            mem = bytearray(8)
            win = Win(comm, mem)
            try:
                if comm.rank == 0:
                    win.Put(b"XY", 1, offset=3)
                win.Fence()
                if comm.rank == 1:
                    assert bytes(mem) == b"\x00\x00\x00XY\x00\x00\x00"
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_get_reads_remote(self):
        def work(comm):
            mem = bytearray(b"%d" % comm.rank * 2)
            win = Win(comm, mem)
            try:
                win.Fence()
                if comm.rank == 0:
                    sink = bytearray(2)
                    win.Get(sink, 1)
                    assert bytes(sink) == b"11"
                win.Fence()
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_numpy_window(self):
        def work(comm):
            mem = np.zeros(4, dtype="f8")
            win = Win(comm, mem)
            try:
                if comm.rank == 0:
                    win.Put(np.arange(4.0), 1)
                win.Fence()
                if comm.rank == 1:
                    assert np.array_equal(mem, np.arange(4.0))
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_all_ranks_put_to_ring_neighbor(self):
        def work(comm):
            p, r = comm.size, comm.rank
            mem = bytearray(1)
            win = Win(comm, mem)
            try:
                win.Put(bytes([r]), (r + 1) % p)
                win.Fence()
                assert mem[0] == (r - 1) % p
            finally:
                win.Free()
        run_on_threads(4, work)

    def test_self_put(self):
        def work(comm):
            mem = bytearray(2)
            win = Win(comm, mem)
            try:
                win.Put(b"me", comm.rank)
                win.Fence()
                assert bytes(mem) == b"me"
            finally:
                win.Free()
        run_on_threads(2, work)


class TestAccumulate:
    def test_sum_accumulate(self):
        def work(comm):
            mem = np.zeros(3, dtype="f8")
            win = Win(comm, mem)
            try:
                win.Accumulate(np.full(3, float(comm.rank + 1)), 0, ops.SUM)
                win.Fence()
                if comm.rank == 0:
                    total = sum(range(1, comm.size + 1))
                    assert np.allclose(mem, total)
            finally:
                win.Free()
        run_on_threads(3, work)

    def test_max_accumulate(self):
        def work(comm):
            mem = np.zeros(1, dtype="i8")
            win = Win(comm, mem)
            try:
                win.Accumulate(
                    np.array([comm.rank * 10], dtype="i8"), 0, ops.MAX
                )
                win.Fence()
                if comm.rank == 0:
                    assert mem[0] == (comm.size - 1) * 10
            finally:
                win.Free()
        run_on_threads(3, work)


class TestLocking:
    def test_lock_unlock_roundtrip(self):
        def work(comm):
            mem = bytearray(4)
            win = Win(comm, mem)
            try:
                if comm.rank == 0:
                    win.Lock(1)
                    win.Put(b"lock", 1)
                    win.Unlock(1)
                win.Fence()
                if comm.rank == 1:
                    assert bytes(mem) == b"lock"
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_contended_counter_increment(self):
        """Lock-protected read-modify-write from all ranks is atomic."""
        def work(comm):
            mem = np.zeros(1, dtype="i8")
            win = Win(comm, mem)
            try:
                for _ in range(5):
                    win.Lock(0)
                    current = np.zeros(1, dtype="i8")
                    win.Get(current, 0)
                    win.Put(
                        np.array([current[0] + 1], dtype="i8"), 0
                    )
                    win.Unlock(0)
                win.Fence()
                if comm.rank == 0:
                    assert mem[0] == comm.size * 5
            finally:
                win.Free()
        run_on_threads(4, work)


class TestValidation:
    def test_readonly_window_rejected(self):
        def work(comm):
            with pytest.raises(WinError, match="writable"):
                Win(comm, b"readonly")
            comm.barrier()
        run_on_threads(2, work)

    def test_bad_target_rank(self):
        def work(comm):
            win = Win(comm, bytearray(4))
            try:
                with pytest.raises(Exception):
                    win.Put(b"x", 99)
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_window_size_property(self):
        def work(comm):
            win = Win(comm, bytearray(64))
            try:
                assert win.size == 64
            finally:
                win.Free()
        run_on_threads(2, work)

    def test_double_free_is_noop(self):
        def work(comm):
            win = Win(comm, bytearray(4))
            win.Free()
            win.Free()
        run_on_threads(2, work)
