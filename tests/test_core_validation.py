"""The -c/--validate data-integrity option."""

import pytest

from repro.core import Options, get_benchmark
from repro.core.runner import BenchContext
from repro.mpi.world import run_on_threads

VAL = Options(
    min_size=1, max_size=256, iterations=3, warmup=1, validate=True
)


class TestValidation:
    @pytest.mark.parametrize("buf", ["bytearray", "numpy"])
    def test_latency_validation_passes_cpu(self, buf):
        bench = get_benchmark("osu_latency")
        opts = VAL.with_(buffer=buf)
        tables = run_on_threads(
            2, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)

    @pytest.mark.parametrize("buf", ["cupy", "pycuda", "numba"])
    def test_latency_validation_passes_gpu(self, buf):
        bench = get_benchmark("osu_latency")
        opts = VAL.with_(device="gpu", buffer=buf, max_size=64)
        tables = run_on_threads(
            2, lambda c: bench.run(BenchContext(c, opts)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)

    def test_validation_with_extra_idle_ranks(self):
        bench = get_benchmark("osu_latency")
        tables = run_on_threads(
            4, lambda c: bench.run(BenchContext(c, VAL)), timeout=60
        )
        assert all(r.value > 0 for r in tables[0].rows)

    def test_corruption_detected(self, monkeypatch):
        """A transport that corrupts payloads must fail validation."""
        from repro.mpi.transport.inproc import InprocFabric

        original_route = InprocFabric.route

        def corrupting_route(self, dest, env, payload):
            if env.tag == 2 and payload:  # TAG+1 = the validation message
                payload = b"\xff" + payload[1:]
            original_route(self, dest, env, payload)

        monkeypatch.setattr(InprocFabric, "route", corrupting_route)
        bench = get_benchmark("osu_latency")
        opts = VAL.with_(max_size=4)
        # The detecting rank raises immediately; its peer blocks in the
        # validation barrier, so use a short join timeout — the harness
        # surfaces the recorded error, not the timeout.
        with pytest.raises(RuntimeError, match="validation failed"):
            run_on_threads(
                2, lambda c: bench.run(BenchContext(c, opts)), timeout=3
            )
