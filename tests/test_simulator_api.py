"""Shape properties of the figure-level simulation API."""

import pytest

from repro.simulator import (
    CLUSTERS,
    FRONTERA,
    RI2,
    RI2_GPU,
    STAMPEDE2,
    simulate_collective,
    simulate_ml,
    simulate_pt2pt,
)
from repro.simulator.api import DEFAULT_ML_PROCS, ML_WORKLOADS


class TestPt2ptShapes:
    def test_python_never_faster_than_native(self):
        for cluster in (FRONTERA, STAMPEDE2, RI2):
            for placement in ("intra", "inter"):
                omb = simulate_pt2pt(cluster, placement, api="native")
                py = simulate_pt2pt(cluster, placement, api="buffer")
                for size in omb.sizes():
                    assert py.row_for(size).value >= omb.row_for(size).value

    def test_relative_overhead_shrinks_with_size(self):
        omb = simulate_pt2pt(FRONTERA, "intra", api="native")
        py = simulate_pt2pt(FRONTERA, "intra", api="buffer")
        rel_small = (
            py.row_for(1).value / omb.row_for(1).value
        )
        rel_large = (
            py.row_for(1 << 20).value / omb.row_for(1 << 20).value
        )
        assert rel_small > rel_large
        assert rel_large < 1.1  # "relatively negligible for large messages"

    def test_latency_monotone_in_size(self):
        t = simulate_pt2pt(FRONTERA, "inter", api="buffer")
        vals = t.values()
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_inter_slower_than_intra(self):
        intra = simulate_pt2pt(FRONTERA, "intra", api="native")
        inter = simulate_pt2pt(FRONTERA, "inter", api="native")
        assert inter.row_for(1).value > intra.row_for(1).value

    def test_bandwidth_rises_to_fabric_ceiling(self):
        bw = simulate_pt2pt(
            FRONTERA, "inter", api="native", metric="bandwidth"
        )
        assert bw.row_for(1 << 20).value > 10 * bw.row_for(64).value
        assert bw.row_for(1 << 20).value < 13000  # HDR-100 ceiling

    def test_bad_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            simulate_pt2pt(FRONTERA, metric="throughput")

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            simulate_pt2pt(FRONTERA, placement="same-rack")

    def test_gpu_on_cpu_cluster_rejected(self):
        with pytest.raises(ValueError, match="GPU partition"):
            simulate_pt2pt(FRONTERA, api="buffer", buffer="cupy")

    def test_custom_sizes_respected(self):
        t = simulate_pt2pt(FRONTERA, sizes=[32, 64])
        assert t.sizes() == [32, 64]


class TestCollectiveShapes:
    @pytest.mark.parametrize("op", [
        "barrier", "bcast", "reduce", "allreduce", "allgather",
        "alltoall", "gather", "scatter", "reduce_scatter",
    ])
    def test_all_ops_simulate(self, op):
        t = simulate_collective(op, FRONTERA, nodes=4, api="buffer")
        assert all(r.value >= 0 for r in t.rows)

    def test_latency_grows_with_node_count(self):
        small = simulate_collective("allreduce", FRONTERA, nodes=2)
        large = simulate_collective("allreduce", FRONTERA, nodes=16)
        assert large.row_for(1024).value > small.row_for(1024).value

    def test_ppn_congestion_grows_latency(self):
        one = simulate_collective("allgather", FRONTERA, nodes=4, ppn=1)
        many = simulate_collective("allgather", FRONTERA, nodes=4, ppn=16)
        assert many.row_for(8192).value > one.row_for(8192).value

    def test_node_limit_enforced(self):
        with pytest.raises(ValueError, match="nodes"):
            simulate_collective("bcast", RI2, nodes=64)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            simulate_collective("allfuse", FRONTERA, nodes=2)

    def test_gpu_buffer_ordering(self):
        """CuPy ~= PyCUDA < Numba for every size (paper's GPU insight)."""
        tables = {
            buf: simulate_collective(
                "allreduce", RI2_GPU, nodes=8, api="buffer", buffer=buf
            )
            for buf in ("cupy", "pycuda", "numba")
        }
        for size in tables["cupy"].sizes():
            cupy_v = tables["cupy"].row_for(size).value
            pycuda_v = tables["pycuda"].row_for(size).value
            numba_v = tables["numba"].row_for(size).value
            assert numba_v > cupy_v
            assert numba_v > pycuda_v
            assert abs(cupy_v - pycuda_v) < 0.15 * cupy_v


class TestClusterRegistry:
    def test_all_paper_clusters_present(self):
        assert {"Frontera", "Stampede2", "RI2", "RI2-GPU"} <= set(CLUSTERS)

    def test_node_core_counts_match_paper(self):
        assert FRONTERA.node.cores == 56
        assert STAMPEDE2.node.cores == 48
        assert RI2.node.cores == 28

    def test_gpu_partition_has_v100(self):
        assert RI2_GPU.gpu is not None
        assert RI2_GPU.gpu.memory_gb == 32


class TestMLSimulation:
    def test_speedups_match_paper_at_224(self):
        targets = {"knn": 105.6, "kmeans_hpo": 95.0, "matmul": 129.8}
        for name, target in targets.items():
            series = simulate_ml(name)
            speedup_224 = dict(
                (p, s) for p, _t, s in series
            )[224]
            assert speedup_224 == pytest.approx(target, rel=0.05)

    def test_sequential_times_match_paper(self):
        assert ML_WORKLOADS["knn"].seq_time_s == pytest.approx(112.9)
        assert ML_WORKLOADS["kmeans_hpo"].seq_time_s == pytest.approx(1059.45)
        assert ML_WORKLOADS["matmul"].seq_time_s == pytest.approx(79.63)

    def test_speedup_monotone_in_procs(self):
        for name in ML_WORKLOADS:
            series = simulate_ml(name)
            speedups = [s for _p, _t, s in series]
            assert all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:]))

    def test_single_proc_speedup_is_one(self):
        for name in ML_WORKLOADS:
            p, t, s = simulate_ml(name, procs=[1])[0]
            assert s == pytest.approx(1.0)

    def test_default_proc_grid_matches_paper_axis(self):
        assert DEFAULT_ML_PROCS[0] == 1
        assert DEFAULT_ML_PROCS[-1] == 224
        assert 28 in DEFAULT_ML_PROCS and 56 in DEFAULT_ML_PROCS

    def test_sublinear_beyond_node(self):
        series = dict(
            (p, s) for p, _t, s in simulate_ml("knn")
        )
        assert series[224] < 224 * 0.6  # efficiency well below 1
        assert series[2] > 1.8          # near-linear at small p

    def test_invalid_procs_rejected(self):
        with pytest.raises(ValueError):
            simulate_ml("knn", procs=[0])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            simulate_ml("svm")
