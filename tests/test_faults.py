"""Fault-injection layer tests: plans, determinism, ordering invariants."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ENV_BACKSTOP_MS, CrashSpec, FaultEvent, FaultPlan, FaultyTransport,
    InjectedCrash,
)
from repro.mpi.matching import Envelope, MatchingEngine
from repro.mpi.transport.base import (
    CONTROL_CONTEXT, CTRL_HEARTBEAT, Transport, control_envelope,
)


class RecordingTransport(Transport):
    """Fake inner transport that records every delivered frame."""

    def __init__(self, world_rank=0, world_size=4):
        super().__init__(world_rank, world_size)
        self.sent = []          # (dest, env, payload) in delivery order
        self.closed = False

    def send(self, dest_world_rank, env, payload):
        self.sent.append((dest_world_rank, env, payload))

    def close(self):
        self.closed = True


def _env(dest, tag, nbytes, source=0, context=0):
    return Envelope(context, source, dest, tag, nbytes)


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=42, drop=0.1, duplicate=0.05, delay=0.2, delay_hold=5,
            truncate=0.01, stall=0.02, stall_ms=3.5,
            crash=CrashSpec(rank=1, at_op=40, exit_code=7, mode="exit"),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_roundtrip_without_crash(self):
        plan = FaultPlan(seed=1, drop=0.5)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan and restored.crash is None

    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan.chaos(7)
        path = tmp_path / "plan.json"
        plan.to_file(str(path))
        assert FaultPlan.from_file(str(path)) == plan

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan field"):
            FaultPlan.from_json(json.dumps({"seed": 1, "frobnicate": 0.5}))

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    @pytest.mark.parametrize("field", ("drop", "duplicate", "delay",
                                       "truncate", "stall"))
    def test_rate_out_of_range_rejected(self, field):
        with pytest.raises(ValueError, match="rate must be in"):
            FaultPlan(**{field: 1.5})

    def test_crash_validation(self):
        with pytest.raises(ValueError, match="mode"):
            CrashSpec(rank=0, at_op=0, mode="segfault")
        with pytest.raises(ValueError, match=">= 0"):
            CrashSpec(rank=-1, at_op=0)

    def test_active(self):
        assert not FaultPlan(seed=9).active
        assert FaultPlan(seed=9, drop=0.1).active
        assert FaultPlan(seed=9, crash=CrashSpec(rank=0, at_op=1)).active

    def test_chaos_defaults_are_survivable(self):
        plan = FaultPlan.chaos(3)
        assert plan.seed == 3 and plan.active
        # Default mix must never lose or duplicate messages — a bare
        # --fault-seed run has to complete, not deadlock the benchmark.
        assert plan.drop == 0 and plan.duplicate == 0 and plan.truncate == 0
        assert plan.delay > 0 and plan.stall > 0

    def test_chaos_overrides_enable_destructive_faults(self):
        plan = FaultPlan.chaos(3, drop=0.25)
        assert plan.drop == 0.25 and plan.delay > 0

    def test_rng_is_per_rank(self):
        plan = FaultPlan(seed=5)
        a = [plan.rng_for(0).random() for _ in range(4)]
        b = [plan.rng_for(1).random() for _ in range(4)]
        assert a != b
        assert a == [plan.rng_for(0).random() for _ in range(4)]

    def test_crashes_selects_rank(self):
        plan = FaultPlan(seed=0, crash=CrashSpec(rank=2, at_op=9))
        assert plan.crashes(2) is plan.crash
        assert plan.crashes(0) is None


class TestBackstop:
    """Satellite: the held-message wall-clock backstop as a plan field."""

    def test_plan_field_json_roundtrip(self):
        plan = FaultPlan(seed=2, delay=0.5, backstop_ms=120.0)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan and restored.backstop_ms == 120.0

    def test_default_and_validation(self):
        assert FaultPlan(seed=0).backstop_ms == 500.0
        with pytest.raises(ValueError, match="backstop_ms"):
            FaultPlan(seed=0, backstop_ms=0)

    def test_env_knob_overrides_plan(self, monkeypatch):
        plan = FaultPlan(seed=0, delay=0.1, backstop_ms=400.0)
        monkeypatch.delenv(ENV_BACKSTOP_MS, raising=False)
        faulty = FaultyTransport(RecordingTransport(), plan)
        assert faulty.max_hold_seconds == pytest.approx(0.4)
        faulty.close()
        monkeypatch.setenv(ENV_BACKSTOP_MS, "50")
        faulty = FaultyTransport(RecordingTransport(), plan)
        assert faulty.max_hold_seconds == pytest.approx(0.05)
        faulty.close()
        monkeypatch.setenv(ENV_BACKSTOP_MS, "-1")
        with pytest.raises(ValueError, match="must be > 0 ms"):
            FaultyTransport(RecordingTransport(), plan)

    def test_backstop_releases_stranded_held_message(self):
        """A sender that goes quiet cannot strand its delayed messages."""
        import time

        plan = FaultPlan(seed=0, delay=1.0, delay_hold=1000,
                         backstop_ms=50.0)
        inner = RecordingTransport()
        faulty = FaultyTransport(inner, plan)
        try:
            faulty.send(1, _env(1, 0, 2), b"hi")
            assert inner.sent == []  # held, and no further op will free it
            deadline = time.monotonic() + 5.0
            while not inner.sent and time.monotonic() < deadline:
                time.sleep(0.01)
            assert [p for _d, _e, p in inner.sent] == [b"hi"]
        finally:
            faulty.close()


def _drive(plan, ops, rank=0, size=4):
    """Run a send sequence through a fresh injector; return (inner, faulty)."""
    inner = RecordingTransport(world_rank=rank, world_size=size)
    faulty = FaultyTransport(inner, plan)
    for dest, tag, payload in ops:
        faulty.send(dest, _env(dest, tag, len(payload), source=rank), payload)
    return inner, faulty


_OPS = [(d, t, bytes([t]) * (t + 1)) for t in range(40) for d in (1, 2, 3)]


class TestDeterministicReplay:
    def test_same_plan_same_schedule(self):
        plan = FaultPlan(seed=1234, drop=0.1, duplicate=0.1, delay=0.15,
                         truncate=0.05)
        _inner_a, faulty_a = _drive(plan, _OPS)
        _inner_b, faulty_b = _drive(plan, _OPS)
        assert faulty_a.event_lines() == faulty_b.event_lines()
        assert len(faulty_a.event_lines()) > 0

    def test_replay_delivers_identical_frames(self):
        plan = FaultPlan(seed=99, drop=0.1, duplicate=0.1, delay=0.15)
        inner_a, fa = _drive(plan, _OPS)
        inner_b, fb = _drive(plan, _OPS)
        fa.flush()
        fb.flush()
        assert inner_a.sent == inner_b.sent

    def test_different_seed_different_schedule(self):
        base = dict(drop=0.1, duplicate=0.1, delay=0.15)
        _i, fa = _drive(FaultPlan(seed=1, **base), _OPS)
        _i, fb = _drive(FaultPlan(seed=2, **base), _OPS)
        assert fa.event_lines() != fb.event_lines()

    def test_event_log_written_per_rank(self, tmp_path):
        plan = FaultPlan(seed=7, drop=0.5)
        inner = RecordingTransport(world_rank=2)
        faulty = FaultyTransport(inner, plan, log_path=str(tmp_path / "ev"))
        for dest, tag, payload in _OPS[:30]:
            faulty.send(dest, _env(dest, tag, len(payload)), payload)
        faulty.close()
        logged = (tmp_path / "ev.rank2").read_text().splitlines()
        assert logged == faulty.event_lines()
        assert inner.closed

    def test_control_frames_consume_no_rng(self):
        """Heartbeat timing must not perturb the fault schedule."""
        plan = FaultPlan(seed=5, drop=0.2, delay=0.2)
        inner_a, fa = _drive(plan, _OPS[:60])

        inner_b = RecordingTransport()
        fb = FaultyTransport(inner_b, plan)
        for i, (dest, tag, payload) in enumerate(_OPS[:60]):
            if i % 3 == 0:  # interleave control traffic at arbitrary points
                fb.send(1, control_envelope(CTRL_HEARTBEAT, 0, 1), b"")
            fb.send(dest, _env(dest, tag, len(payload)), payload)
        assert fa.event_lines() == fb.event_lines()
        data_b = [f for f in inner_b.sent if f[1].context != CONTROL_CONTEXT]
        assert [f[1] for f in inner_a.sent] == [f[1] for f in data_b]


class TestInjectionMechanics:
    def test_no_faults_is_passthrough(self):
        inner, faulty = _drive(FaultPlan(seed=0), _OPS)
        assert [(d, e, p) for d, e, p in inner.sent] == [
            (d, _env(d, t, len(p)), p) for d, t, p in _OPS
        ]
        assert faulty.event_lines() == []

    def test_drop_everything(self):
        inner, faulty = _drive(FaultPlan(seed=0, drop=1.0), _OPS)
        assert inner.sent == []
        assert all(" drop " in line for line in faulty.event_lines())

    def test_duplicate_everything(self):
        inner, _f = _drive(FaultPlan(seed=0, duplicate=1.0), _OPS[:6])
        assert len(inner.sent) == 12
        for i in range(0, 12, 2):
            assert inner.sent[i] == inner.sent[i + 1]

    def test_truncate_rewrites_envelope(self):
        inner, faulty = _drive(
            FaultPlan(seed=3, truncate=1.0), [(1, 0, b"x" * 100)]
        )
        (_d, env, payload), = inner.sent
        assert env.nbytes == len(payload) < 100
        assert any("truncate" in line for line in faulty.event_lines())

    def test_delay_holds_then_releases(self):
        # Only op 0 delayed (rate 1.0 would re-trigger; use targeted seed
        # scan): simplest deterministic check uses delay=1.0 — every op to
        # dest 1 queues behind the first hold, released delay_hold ops later.
        plan = FaultPlan(seed=0, delay=1.0, delay_hold=2)
        inner = RecordingTransport()
        faulty = FaultyTransport(inner, plan)
        faulty.send(1, _env(1, 0, 1), b"a")       # op 0: held until op 2
        assert inner.sent == []
        faulty.send(1, _env(1, 1, 1), b"b")       # op 1: queues behind
        assert inner.sent == []
        faulty.send(2, _env(2, 2, 1), b"c")       # op 2: releases dest 1
        tags = [e.tag for _d, e, _p in inner.sent]
        assert tags[:2] == [0, 1]                  # FIFO within dest 1

    def test_flush_preserves_fifo(self):
        plan = FaultPlan(seed=0, delay=1.0, delay_hold=50)
        inner = RecordingTransport()
        faulty = FaultyTransport(inner, plan)
        for tag in range(5):
            faulty.send(1, _env(1, tag, 1), b"z")
        assert inner.sent == []
        faulty.flush()
        assert [e.tag for _d, e, _p in inner.sent] == list(range(5))

    def test_stall_emits_event(self):
        _inner, faulty = _drive(
            FaultPlan(seed=0, stall=1.0, stall_ms=0.0), _OPS[:3]
        )
        assert sum("stall" in line for line in faulty.event_lines()) == 3

    def test_crash_raise_mode(self):
        plan = FaultPlan(
            seed=0, crash=CrashSpec(rank=0, at_op=2, exit_code=7,
                                    mode="raise"),
        )
        inner = RecordingTransport()
        faulty = FaultyTransport(inner, plan)
        faulty.send(1, _env(1, 0, 1), b"a")
        faulty.send(1, _env(1, 1, 1), b"b")
        with pytest.raises(InjectedCrash) as exc_info:
            faulty.send(1, _env(1, 2, 1), b"c")
        assert exc_info.value.exit_code == 7
        assert exc_info.value.op == 2
        assert len(inner.sent) == 2  # the crashing op's frame never left

    def test_crash_only_on_its_rank(self):
        plan = FaultPlan(
            seed=0, crash=CrashSpec(rank=3, at_op=0, mode="raise"),
        )
        inner, _f = _drive(plan, _OPS[:9], rank=0)
        assert len(inner.sent) == 9  # rank 0 unaffected

    def test_attach_propagates_to_inner(self):
        inner = RecordingTransport()
        faulty = FaultyTransport(inner, FaultPlan(seed=0))
        engine = MatchingEngine()
        faulty.attach(engine)
        assert inner.engine is engine and faulty.engine is engine
        assert faulty.name == "faulty(RecordingTransport)"


@st.composite
def _traffic(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    dests = draw(st.lists(
        st.integers(min_value=1, max_value=3), min_size=n, max_size=n,
    ))
    return dests


class TestNonOvertakingProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        dests=_traffic(),
        seed=st.integers(min_value=0, max_value=2**31),
        drop=st.floats(min_value=0, max_value=0.5),
        duplicate=st.floats(min_value=0, max_value=0.5),
        delay=st.floats(min_value=0, max_value=0.5),
        hold=st.integers(min_value=1, max_value=8),
    )
    def test_first_delivery_per_dest_is_monotone(
        self, dests, seed, drop, duplicate, delay, hold
    ):
        """drop+delay+duplicate never violate per-sender non-overtaking.

        For each destination, the sequence numbers of *first* deliveries
        must be strictly increasing — a later message may be lost or
        repeated, but never arrive before an earlier surviving one.
        """
        plan = FaultPlan(seed=seed, drop=drop, duplicate=duplicate,
                         delay=delay, delay_hold=hold)
        inner = RecordingTransport()
        faulty = FaultyTransport(inner, plan)
        for seq, dest in enumerate(dests):
            faulty.send(dest, _env(dest, tag=seq, nbytes=1), b"m")
        faulty.flush()

        first_seen: dict[int, list[int]] = {}
        for dest, env, _payload in inner.sent:
            seqs = first_seen.setdefault(dest, [])
            if env.tag not in seqs:
                seqs.append(env.tag)
        for dest, seqs in first_seen.items():
            assert seqs == sorted(seqs), (
                f"dest {dest} saw out-of-order first deliveries: {seqs}"
            )


class TestFaultEvent:
    def test_line_is_stable(self):
        event = FaultEvent(op=3, kind="drop", source=0, dest=1, context=0,
                           tag=5, nbytes=10)
        assert event.line() == (
            "op=000003 drop src=0 dest=1 ctx=0x0 tag=5 nbytes=10"
        )

    def test_detail_appended(self):
        event = FaultEvent(op=0, kind="delay", source=0, dest=1, context=0,
                           tag=0, nbytes=0, detail="hold=3")
        assert event.line().endswith(" hold=3")
