"""The reliable-delivery layer: framing, acks, retransmit, recovery.

Unit tests drive two :class:`ReliableTransport` instances over an
in-memory wire with loss knobs; the property test (the headline
guarantee) runs real rank threads under Hypothesis-generated survivable
fault plans and asserts the delivered stream equals the sent stream —
exactly once, in order.
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.mpi.exceptions import RankFailedError
from repro.mpi.matching import Envelope, MatchingEngine
from repro.mpi.reliability import (
    ENV_RELIABLE, FRAME_SIZE, ReliableTransport, reliable_from_env,
)
from repro.mpi.transport.base import CONTROL_CONTEXT, Transport
from repro.mpi.world import reliability_stats, run_on_threads


class _Wire(Transport):
    """In-memory wire between two reliability layers, with loss knobs."""

    def __init__(self, world_rank: int, world_size: int = 2) -> None:
        super().__init__(world_rank, world_size)
        self.peers: dict[int, "_Wire"] = {}
        self.drop_next = 0          # swallow the next N primary sends
        self.sent = []              # every primary send, delivered or not
        self.unfaulted = []         # every retransmit

    def send(self, dest_world_rank, env, payload):
        self.sent.append((dest_world_rank, env, payload))
        if self.drop_next > 0:
            self.drop_next -= 1
            return
        self.peers[dest_world_rank]._deliver_local(env, payload)

    def send_unfaulted(self, dest_world_rank, env, payload):
        self.unfaulted.append((dest_world_rank, env, payload))
        self.peers[dest_world_rank]._deliver_local(env, payload)

    def close(self):
        pass


class _LossyRetransmitWire(_Wire):
    """A wire whose retransmit path is *also* dead (peer truly gone)."""

    def send_unfaulted(self, dest_world_rank, env, payload):
        self.unfaulted.append((dest_world_rank, env, payload))


def make_pair(wire_cls=_Wire, **kwargs):
    w0, w1 = wire_cls(0), wire_cls(1)
    w0.peers[1], w1.peers[0] = w1, w0
    kwargs.setdefault("rto_initial", 0.01)
    kwargs.setdefault("close_linger", 0.0)
    r0 = ReliableTransport(w0, **kwargs)
    r1 = ReliableTransport(w1, **kwargs)
    e0, e1 = MatchingEngine(), MatchingEngine()
    r0.attach(e0)
    r1.attach(e1)
    return (r0, r1), (w0, w1), (e0, e1)


def _env(tag, nbytes, source=0, dest=1, context=0):
    return Envelope(context, source, dest, tag, nbytes)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestFraming:
    def test_clean_delivery_and_ack(self):
        (r0, _r1), (w0, _w1), (_e0, e1) = make_pair()
        ticket = e1.post_recv(0, 0, 7, 64)
        r0.send(1, _env(7, 5), b"hello")
        assert ticket.wait(5) == b"hello"
        # The wire saw a framed payload, the engine the original bytes.
        _dest, wire_env, frame = w0.sent[0]
        assert wire_env.nbytes == FRAME_SIZE + 5 and len(frame) == wire_env.nbytes
        # The cumulative ACK retires the pending frame.
        assert wait_until(lambda: not r0._has_unacked())
        stats = r0.stats()
        assert stats["sent"] == 1 and stats["acks_received"] == 1
        assert r1_delivered(_r1) == 1

    def test_control_plane_bypasses_framing(self):
        (r0, _r1), (w0, _w1), _ = make_pair()
        r0.send(1, _env(0, 2, context=CONTROL_CONTEXT), b"hb")
        _dest, env, payload = w0.sent[0]
        assert env.context == CONTROL_CONTEXT and payload == b"hb"
        assert r0.stats()["sent"] == 0  # not part of the data stream

    def test_corrupt_frame_dropped(self):
        (r0, r1), (w0, _w1), (_e0, e1) = make_pair()
        w0.drop_next = 1
        r0.send(1, _env(3, 4), b"data")
        _dest, env, frame = w0.sent[0]
        corrupted = frame[:-1] + bytes([frame[-1] ^ 0xFF])
        r1._on_frame(env, corrupted)
        assert r1.stats()["corrupt_dropped"] == 1
        assert e1.pending_unexpected() == 0
        # The retransmit timer still recovers the original.
        assert e1.post_recv(0, 0, 3, 64).wait(5) == b"data"

    def test_truncated_frame_dropped(self):
        (r0, r1), (w0, _w1), (_e0, e1) = make_pair()
        w0.drop_next = 1
        r0.send(1, _env(3, 4), b"data")
        _dest, env, frame = w0.sent[0]
        r1._on_frame(env, frame[: FRAME_SIZE + 1])
        assert r1.stats()["corrupt_dropped"] == 1
        assert e1.post_recv(0, 0, 3, 64).wait(5) == b"data"


class TestDuplicatesAndReorder:
    def test_duplicate_dropped_and_reacked(self):
        (r0, r1), (w0, _w1), (_e0, e1) = make_pair()
        ticket = e1.post_recv(0, 0, 7, 64)
        r0.send(1, _env(7, 2), b"ok")
        assert ticket.wait(5) == b"ok"
        acks_before = r1.stats()["acks_sent"]
        _dest, env, frame = w0.sent[0]
        r1._on_frame(env, frame)  # replay the same wire frame
        assert r1.stats()["duplicates_dropped"] == 1
        assert e1.pending_unexpected() == 0  # not delivered twice
        assert r1.stats()["acks_sent"] == acks_before + 1  # re-acked

    def test_out_of_order_buffered_and_delivered_in_sequence(self):
        (r0, r1), (w0, _w1), (_e0, e1) = make_pair()
        w0.drop_next = 2  # swallow both primaries; we replay by hand
        r0.send(1, _env(5, 1), b"a")
        r0.send(1, _env(5, 1), b"b")
        (_d0, env_a, frame_a), (_d1, env_b, frame_b) = w0.sent[:2]
        r1._on_frame(env_b, frame_b)  # seq 1 arrives first
        assert r1.stats()["out_of_order"] == 1
        assert r1.stats()["delivered"] == 0
        r1._on_frame(env_a, frame_a)  # seq 0 releases both, in order
        assert r1.stats()["delivered"] == 2
        first = e1.post_recv(0, 0, 5, 64).wait(5)
        second = e1.post_recv(0, 0, 5, 64).wait(5)
        assert (first, second) == (b"a", b"b")


class TestRetransmit:
    def test_lost_primary_is_retransmitted(self):
        (r0, _r1), (w0, _w1), (_e0, e1) = make_pair()
        w0.drop_next = 1
        ticket = e1.post_recv(0, 0, 9, 64)
        r0.send(1, _env(9, 4), b"lost")
        assert ticket.wait(5) == b"lost"
        assert len(w0.unfaulted) >= 1  # recovered via the unfaulted path
        assert r0.stats()["retransmits"] >= 1
        assert wait_until(lambda: not r0._has_unacked())

    def test_escalates_to_engine_failure_after_max_retries(self):
        (r0, _r1), (w0, _w1), (e0, _e1) = make_pair(
            wire_cls=_LossyRetransmitWire, max_retries=2,
        )
        w0.drop_next = 10**6  # peer unreachable on every path
        r0.send(1, _env(9, 4), b"void")
        assert wait_until(lambda: r0.stats()["escalations"] >= 1, timeout=10)
        assert 1 in e0.failed_ranks()
        with pytest.raises(RankFailedError):
            e0.post_recv(0, 1, 9, 64, source_world=1).wait(5)


class TestConfig:
    def test_validation(self):
        wire = _Wire(0)
        with pytest.raises(ValueError, match="rto_initial"):
            ReliableTransport(wire, rto_initial=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ReliableTransport(wire, max_retries=0)

    def test_reliable_from_env_gating(self, monkeypatch):
        wire = _Wire(0)
        monkeypatch.delenv(ENV_RELIABLE, raising=False)
        assert reliable_from_env(wire) is wire
        monkeypatch.setenv(ENV_RELIABLE, "0")
        assert reliable_from_env(wire) is wire
        monkeypatch.setenv(ENV_RELIABLE, "1")
        wrapped = reliable_from_env(wire)
        assert isinstance(wrapped, ReliableTransport)
        assert wrapped.inner is wire

    def test_stats_helper_walks_the_stack(self):
        (r0, _r1), (w0, _w1), _ = make_pair()
        assert reliability_stats(r0) == r0.stats()
        assert reliability_stats(w0) is None

    def test_name_and_innermost(self):
        (r0, _r1), (w0, _w1), _ = make_pair()
        assert "reliable" in r0.name
        assert r0.innermost() is w0


def r1_delivered(r1) -> int:
    return r1.stats()["delivered"]


#: Survivable plans only: loss rates well below 1, no crash.  The
#: reliable layer must make every one of these invisible.
SURVIVABLE = dict(
    seed=st.integers(min_value=0, max_value=2**16),
    drop=st.floats(min_value=0.0, max_value=0.3),
    duplicate=st.floats(min_value=0.0, max_value=0.3),
    truncate=st.floats(min_value=0.0, max_value=0.2),
    delay=st.floats(min_value=0.0, max_value=0.2),
    messages=st.lists(
        st.binary(min_size=0, max_size=64), min_size=1, max_size=10
    ),
)


class TestDeliveredEqualsSent:
    """Satellite property: the app-visible stream is unaffected by faults."""

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(**SURVIVABLE)
    def test_stream_exactly_once_in_order(
        self, seed, drop, duplicate, truncate, delay, messages
    ):
        plan = FaultPlan(
            seed=seed, drop=drop, duplicate=duplicate, truncate=truncate,
            delay=delay, delay_hold=2, backstop_ms=100.0,
        )
        os.environ["OMBPY_REL_RTO_MS"] = "20"
        try:
            # One tag for the whole stream: the matching engine then
            # matches in delivery order, so equality below proves the
            # stream arrived exactly once *and in order*.
            def body(comm):
                if comm.rank == 0:
                    for payload in messages:
                        comm.send_bytes(payload, 1, 0)
                    return [
                        comm.recv_bytes(1, 1, 80)[0] for _ in messages
                    ]
                got = [comm.recv_bytes(0, 0, 80)[0] for _ in messages]
                for payload in got:
                    comm.send_bytes(payload, 0, 1)
                return got

            out = run_on_threads(
                2, body, fault_plan=plan, reliable=True, timeout=60
            )
        finally:
            os.environ.pop("OMBPY_REL_RTO_MS", None)
        assert out[1] == messages   # forward stream: exactly once, in order
        assert out[0] == messages   # echoed stream: both directions hold
