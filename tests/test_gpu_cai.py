"""CUDA Array Interface protocol tests."""

import numpy as np
import pytest

from repro.gpu import cupy_sim, numba_sim, pycuda_sim
from repro.gpu.cai import (
    CAIError,
    device_bytes,
    is_device_array,
    make_cai,
    resolve_cai,
)
from repro.gpu.device import current_device


class TestMakeCai:
    def test_required_keys(self):
        cai = make_cai(0x1000, (4, 2), "<f8")
        assert cai["shape"] == (4, 2)
        assert cai["typestr"] == "<f8"
        assert cai["data"] == (0x1000, False)
        assert cai["version"] == 3
        assert cai["strides"] is None

    def test_stream_included_when_given(self):
        assert "stream" in make_cai(1, (1,), "<f4", stream=2)
        assert "stream" not in make_cai(1, (1,), "<f4")


class TestDetection:
    def test_device_arrays_detected(self):
        assert is_device_array(cupy_sim.zeros(2))
        assert is_device_array(pycuda_sim.gpuarray.zeros(2))
        assert is_device_array(numba_sim.cuda.device_array(2))

    def test_host_objects_not_detected(self):
        assert not is_device_array(np.zeros(2))
        assert not is_device_array(bytearray(2))


class TestResolve:
    @pytest.mark.parametrize("factory,n,dtype", [
        (lambda: cupy_sim.zeros(10, dtype=np.float64), 10, "f8"),
        (lambda: pycuda_sim.gpuarray.zeros(6, dtype=np.int32), 6, "i4"),
        (lambda: numba_sim.cuda.device_array(4, dtype=np.float32), 4, "f4"),
    ])
    def test_all_libraries_resolve(self, factory, n, dtype):
        arr = factory()
        alloc, nbytes, np_dtype, shape = resolve_cai(arr)
        assert nbytes == n * np.dtype(dtype).itemsize
        assert np_dtype == np.dtype(dtype)
        assert shape == (n,)
        assert alloc.nbytes >= nbytes

    def test_non_device_object_rejected(self):
        with pytest.raises(CAIError, match="no __cuda_array_interface__"):
            resolve_cai(np.zeros(3))

    def test_unknown_pointer_rejected(self):
        class Fake:
            __cuda_array_interface__ = make_cai(0xBAD, (2,), "<f8")

        with pytest.raises(Exception):  # DeviceError from resolve
            resolve_cai(Fake())

    def test_malformed_dict_rejected(self):
        class Fake:
            __cuda_array_interface__ = {"shape": (1,)}

        with pytest.raises(CAIError, match="missing required key"):
            resolve_cai(Fake())

    def test_bad_data_field_rejected(self):
        class Fake:
            __cuda_array_interface__ = {
                "shape": (1,), "typestr": "<f8",
                "data": 123, "version": 3,
            }

        with pytest.raises(CAIError, match="pair"):
            resolve_cai(Fake())

    def test_noncontiguous_strides_rejected(self):
        real = cupy_sim.zeros(8)
        bad = dict(real._cai)
        bad["strides"] = (64,)  # bogus stride for shape (8,) f8

        class Fake:
            __cuda_array_interface__ = bad

        with pytest.raises(CAIError, match="C-contiguous"):
            resolve_cai(Fake())

    def test_explicit_contiguous_strides_accepted(self):
        real = cupy_sim.zeros(8)
        cai = dict(real._cai)
        cai["strides"] = (8,)  # itemsize for 1-D f8 = contiguous

        class Fake:
            __cuda_array_interface__ = cai

        alloc, nbytes, _, _ = resolve_cai(Fake())
        assert nbytes == 64

    def test_device_bytes_view(self):
        arr = cupy_sim.array(np.array([1, 2, 3], dtype=np.uint8))
        view = device_bytes(arr)
        assert bytes(view) == b"\x01\x02\x03"

    def test_resolve_reflects_device_writes(self):
        arr = cupy_sim.zeros(4, dtype=np.uint8)
        alloc, nbytes, _, _ = resolve_cai(arr)
        current_device().memcpy_htod(alloc, b"\x07\x07\x07\x07")
        assert arr.get().tolist() == [7, 7, 7, 7]
