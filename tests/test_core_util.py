"""Message-size sweeps and buffer allocation utilities."""

import numpy as np
import pytest

from repro.core.util import BufferHandle, allocate, allocate_pair, message_sizes
from repro.core.options import Options


class TestMessageSizes:
    def test_powers_of_two(self):
        assert list(message_sizes(1, 16)) == [1, 2, 4, 8, 16]

    def test_zero_min_emits_zero_row(self):
        assert list(message_sizes(0, 4)) == [0, 1, 2, 4]

    def test_min_rounds_up_to_power(self):
        assert list(message_sizes(3, 32)) == [4, 8, 16, 32]

    def test_non_power_max_clips(self):
        assert list(message_sizes(1, 10)) == [1, 2, 4, 8]

    def test_single_size(self):
        assert list(message_sizes(64, 64)) == [64]

    def test_empty_when_max_below_min_power(self):
        assert list(message_sizes(5, 7)) == []


class TestAllocate:
    @pytest.mark.parametrize(
        "kind", ["bytearray", "numpy", "cupy", "pycuda", "numba"]
    )
    def test_fill_verify_roundtrip(self, kind):
        h = allocate(kind, 64)
        h.fill(seed=3)
        assert h.verify(seed=3)
        assert not h.verify(seed=4)

    @pytest.mark.parametrize(
        "kind", ["bytearray", "numpy", "cupy", "pycuda", "numba"]
    )
    def test_to_numpy_shape(self, kind):
        h = allocate(kind, 32)
        out = h.to_numpy()
        assert isinstance(out, np.ndarray)
        assert out.nbytes == 32

    def test_zero_size_allocates_one_byte(self):
        assert allocate("numpy", 0).nbytes == 1

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown buffer kind"):
            allocate("vram", 8)

    def test_allocate_pair_uses_option_buffer(self):
        s, r = allocate_pair(Options(buffer="bytearray"), 16)
        assert s.kind == r.kind == "bytearray"
        assert s.obj is not r.obj

    def test_pattern_differs_by_seed(self):
        a = allocate("numpy", 16)
        b = allocate("numpy", 16)
        a.fill(1)
        b.fill(2)
        assert not np.array_equal(a.to_numpy(), b.to_numpy())
