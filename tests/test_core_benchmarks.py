"""Run every registered benchmark end-to-end (small sweeps, all APIs)."""

import pytest

from repro.core import Options, available_benchmarks, get_benchmark
from repro.core.registry import CATEGORIES, FEATURE_COLUMNS, FEATURE_MATRIX
from repro.core.runner import BenchContext
from repro.mpi.world import run_on_threads

FAST = Options(min_size=1, max_size=64, iterations=3, warmup=1)


def run_bench(name, n=4, options=FAST):
    bench = get_benchmark(name)

    def work(comm):
        return bench.run(BenchContext(comm, options))

    return run_on_threads(n, work, timeout=90)


class TestRegistry:
    def test_table2_contents(self):
        names = available_benchmarks()
        # Point-to-point row of Table II.
        for expected in ("osu_latency", "osu_bw", "osu_bibw",
                         "osu_multi_lat"):
            assert expected in names
        # Blocking collectives row.
        for expected in ("osu_allgather", "osu_allreduce", "osu_alltoall",
                         "osu_barrier", "osu_bcast", "osu_gather",
                         "osu_reduce_scatter", "osu_reduce", "osu_scatter"):
            assert expected in names
        # Vector variants row.
        for expected in ("osu_allgatherv", "osu_alltoallv", "osu_gatherv",
                         "osu_scatterv"):
            assert expected in names

    def test_category_listing(self):
        assert set(available_benchmarks("pt2pt")) <= set(
            available_benchmarks()
        )
        assert len(CATEGORIES["collective"]) == 9
        assert len(CATEGORIES["vector"]) == 4

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("osu_nope")

    def test_unknown_category(self):
        with pytest.raises(KeyError, match="unknown category"):
            available_benchmarks("quantum")

    def test_feature_matrix_table1(self):
        assert FEATURE_COLUMNS[0] == "OMB-Py"
        # OMB-Py supports everything in its own comparison table.
        for feature, row in FEATURE_MATRIX.items():
            assert row[0] == "yes", feature
        # IMB and SMB lack Python support, GPU buffers, ML benchmarks.
        assert FEATURE_MATRIX["python_support"][2:] == ("no", "no")
        assert FEATURE_MATRIX["ml_workload_benchmarks"][1:] == (
            "no", "no", "no"
        )


class TestAllBenchmarksRun:
    @pytest.mark.parametrize("name", sorted(
        set(available_benchmarks()) - {"osu_multi_lat"}
    ))
    def test_buffer_api(self, name):
        tables = run_bench(name)
        t = tables[0]
        assert len(t) >= 1
        assert all(r.value > 0 for r in t.rows)
        assert all(r.minimum <= r.value <= r.maximum for r in t.rows)

    def test_multi_lat_even_ranks(self):
        tables = run_bench("osu_multi_lat", n=4)
        assert all(r.value > 0 for r in tables[0].rows)

    def test_multi_lat_odd_ranks_rejected(self):
        with pytest.raises(ValueError, match="even number"):
            run_bench("osu_multi_lat", n=3)

    def test_mbw_mr_even_ranks(self):
        bench = get_benchmark("osu_mbw_mr")

        def work(comm):
            return bench.run(BenchContext(comm, FAST))

        tables = run_on_threads(4, work, timeout=90)
        assert all(r.value > 0 for r in tables[0].rows)
        # The message-rate companion is populated per size.
        assert set(bench.message_rate) == set(tables[0].sizes())
        assert all(v > 0 for v in bench.message_rate.values())

    def test_mbw_mr_odd_ranks_rejected(self):
        with pytest.raises(ValueError, match="even number"):
            run_bench("osu_mbw_mr", n=3)

    @pytest.mark.parametrize("name", ["osu_latency", "osu_bw",
                                      "osu_bcast", "osu_allreduce",
                                      "osu_allgather", "osu_alltoall",
                                      "osu_gather", "osu_scatter"])
    def test_pickle_api(self, name):
        tables = run_bench(name, options=FAST.with_(api="pickle"))
        assert all(r.value > 0 for r in tables[0].rows)

    @pytest.mark.parametrize("name", ["osu_latency", "osu_bw",
                                      "osu_bcast", "osu_allreduce",
                                      "osu_allgather", "osu_alltoall",
                                      "osu_reduce", "osu_reduce_scatter",
                                      "osu_gather", "osu_scatter",
                                      "osu_barrier"])
    def test_native_api(self, name):
        tables = run_bench(name, options=FAST.with_(api="native"))
        assert all(r.value > 0 for r in tables[0].rows)

    def test_vector_variants_reject_unsupported_api(self):
        with pytest.raises(ValueError, match="does not support"):
            run_bench("osu_gatherv", options=FAST.with_(api="native"))

    @pytest.mark.parametrize("buf", ["cupy", "pycuda", "numba"])
    def test_gpu_buffers_on_latency(self, buf):
        opts = Options(
            device="gpu", buffer=buf, min_size=1, max_size=16,
            iterations=3, warmup=1,
        )
        tables = run_bench("osu_latency", n=2, options=opts)
        assert all(r.value > 0 for r in tables[0].rows)

    @pytest.mark.parametrize("name", ["osu_allreduce", "osu_allgather",
                                      "osu_bcast", "osu_alltoall"])
    @pytest.mark.parametrize("buf", ["cupy", "numba"])
    def test_gpu_buffers_on_collectives(self, name, buf):
        opts = Options(
            device="gpu", buffer=buf, min_size=4, max_size=32,
            iterations=2, warmup=1,
        )
        tables = run_bench(name, n=3, options=opts)
        assert all(r.value > 0 for r in tables[0].rows)

    def test_bytearray_buffer(self):
        tables = run_bench(
            "osu_latency", n=2, options=FAST.with_(buffer="bytearray")
        )
        assert all(r.value > 0 for r in tables[0].rows)


class TestBenchmarkSemantics:
    def test_latency_needs_two_ranks(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_bench("osu_latency", n=1)

    def test_reduction_sweep_skips_sub_element_sizes(self):
        tables = run_bench("osu_allreduce")
        assert min(tables[0].sizes()) >= 4

    def test_extra_ranks_idle_in_pt2pt(self):
        # 5 ranks: ranks 2-4 idle but stats must still reduce cleanly.
        tables = run_bench("osu_latency", n=5)
        assert all(r.value > 0 for r in tables[0].rows)

    def test_all_ranks_get_same_table(self):
        tables = run_bench("osu_allreduce", n=3)
        v0 = tables[0].values()
        assert tables[1].values() == v0
        assert tables[2].values() == v0

    def test_barrier_single_row(self):
        tables = run_bench("osu_barrier")
        assert len(tables[0]) == 1
        assert tables[0].rows[0].size == 0

    def test_row_metadata(self):
        t = run_bench("osu_latency", n=2)[0]
        assert t.metric == "latency_us"
        assert t.ranks == 2
        assert t.api == "buffer"
