"""Self-hosting: the linter must pass over this repository's own code.

Every example and benchmark script ships lint-clean — any new finding
here is either a real bug in the shipped code or a linter false
positive; both need fixing before merge.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[1]


def _lint_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


@pytest.mark.parametrize(
    "tree", ["examples", "benchmarks", "src/repro", "tests", "tools"]
)
def test_repo_tree_is_lint_clean(tree):
    # tests/ and tools/ are in scope too: fixtures that intentionally
    # exercise bad patterns carry `# ombpy-lint: ignore[...]` pragmas.
    findings = lint_paths([REPO / tree])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_console_entry_point_clean_run():
    """`python -m repro.analysis.lint` over examples/ + benchmarks/."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint",
         str(REPO / "examples"), str(REPO / "benchmarks")],
        capture_output=True, text=True, env=_lint_env(),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_console_entry_point_nonzero_on_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\ncomm.send(np.zeros(4), dest=1)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(bad)],
        capture_output=True, text=True, env=_lint_env(),
    )
    assert proc.returncode == 1
    assert "OMB001" in proc.stdout
    assert f"{bad}:2:1" in proc.stdout


def test_package_module_prints_usage():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis"],
        capture_output=True, text=True, env=_lint_env(),
    )
    assert proc.returncode == 0
    assert "ombpy-lint" in proc.stdout
    assert "verify" in proc.stdout


def test_setup_registers_lint_console_script():
    text = (REPO / "setup.py").read_text()
    assert "ombpy-lint=repro.analysis.lint:main" in text
