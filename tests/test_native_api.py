"""Native (bindings-free) path tests."""

import numpy as np

from repro.mpi import ops
from repro.mpi.world import run_on_threads
from repro.native import NativeComm, RegisteredBuffer


class TestRegisteredBuffer:
    def test_from_bytearray(self):
        buf = RegisteredBuffer(bytearray(b"abcd"))
        assert buf.nbytes == 4
        assert buf.snapshot() == b"abcd"
        assert buf.snapshot(2) == b"ab"

    def test_from_numpy(self):
        arr = np.arange(4, dtype="i4")
        buf = RegisteredBuffer(arr)
        assert buf.nbytes == 16
        assert buf.array is not None

    def test_fill_from(self):
        ba = bytearray(4)
        buf = RegisteredBuffer(ba)
        buf.fill_from(b"zz", offset=1)
        assert bytes(ba) == b"\x00zz\x00"

    def test_fill_reflects_in_numpy_view(self):
        arr = np.zeros(2, dtype="u1")
        buf = RegisteredBuffer(arr)
        buf.fill_from(b"\x05\x06")
        assert arr.tolist() == [5, 6]


class TestNativeComm:
    def test_ping_pong(self):
        def work(rt):
            nat = NativeComm(rt)
            s = RegisteredBuffer(bytearray(b"1234"))
            r = RegisteredBuffer(bytearray(4))
            if nat.rank == 0:
                nat.send(s, 4, 1, 1)
                nat.recv(r, 4, 1, 2)
                assert r.snapshot() == b"1234"
            elif nat.rank == 1:
                nat.recv(r, 4, 0, 1)
                nat.send(r, 4, 0, 2)
        run_on_threads(2, work)

    def test_isend_irecv_with_sink(self):
        def work(rt):
            nat = NativeComm(rt)
            if nat.rank == 0:
                nat.isend(RegisteredBuffer(bytearray(b"xy")), 2, 1, 1).wait()
            elif nat.rank == 1:
                r = RegisteredBuffer(bytearray(2))
                req = nat.irecv(r, 2, 0, 1)
                req.wait()
                assert r.snapshot() == b"xy"
        run_on_threads(2, work)

    def test_collectives(self):
        def work(rt):
            nat = NativeComm(rt)
            p, r = nat.size, nat.rank
            # bcast
            buf = RegisteredBuffer(
                bytearray(b"data" if r == 0 else b"\x00" * 4)
            )
            nat.bcast(buf, 4, 0)
            assert buf.snapshot() == b"data"
            # allreduce
            send = np.full(8, float(r + 1))
            recv = np.zeros(8)
            # Native-API allreduce is buffer-based despite the lower-case name.
            nat.allreduce(send, recv, 8, ops.SUM)  # ombpy-lint: ignore[OMB001]
            assert np.allclose(recv, sum(range(1, p + 1)))
            # reduce
            recv2 = np.zeros(8)
            nat.reduce(send, recv2, 8, ops.SUM, 0)
            if r == 0:
                assert np.allclose(recv2, sum(range(1, p + 1)))
            # allgather
            sb = RegisteredBuffer(bytearray([r] * 2))
            rb = RegisteredBuffer(bytearray(2 * p))
            nat.allgather(sb, rb, 2)
            assert rb.snapshot() == bytes(
                b for i in range(p) for b in (i, i)
            )
            # gather
            rb2 = RegisteredBuffer(bytearray(2 * p))
            nat.gather(sb, rb2, 2, 0)
            if r == 0:
                assert rb2.snapshot() == rb.snapshot()
            # scatter
            src = (
                RegisteredBuffer(bytearray(range(p))) if r == 0 else None
            )
            dst = RegisteredBuffer(bytearray(1))
            nat.scatter(src, dst, 1, 0)
            assert dst.snapshot() == bytes([r])
            # alltoall
            sa = RegisteredBuffer(bytearray([r * 16 + j for j in range(p)]))
            ra = RegisteredBuffer(bytearray(p))
            nat.alltoall(sa, ra, 1)
            assert ra.snapshot() == bytes([i * 16 + r for i in range(p)])
            # reduce_scatter
            rs_send = np.ones(p * 2)
            rs_recv = np.zeros(2)
            nat.reduce_scatter(rs_send, rs_recv, [2] * p, ops.SUM)
            assert np.allclose(rs_recv, p)
            nat.barrier()
        run_on_threads(4, work)

    def test_native_faster_than_bindings_on_average(self):
        """The whole point of the native path: lower per-call overhead."""
        import time

        from repro.bindings import Comm

        def work(rt):
            nat = NativeComm(rt)
            bc = Comm(rt)
            n, iters = 8, 300
            s = RegisteredBuffer(bytearray(n))
            r = RegisteredBuffer(bytearray(n))
            sb, rb = bytearray(n), bytearray(n)
            other = 1 - rt.rank

            def pingpong_native():
                if rt.rank == 0:
                    nat.send(s, n, 1, 1)
                    nat.recv(r, n, 1, 1)
                else:
                    nat.recv(r, n, 0, 1)
                    nat.send(s, n, 0, 1)

            def pingpong_bindings():
                if rt.rank == 0:
                    bc.Send(sb, 1, 2)
                    bc.Recv(rb, 1, 2)
                else:
                    bc.Recv(rb, 0, 2)
                    bc.Send(sb, 0, 2)

            for _ in range(20):
                pingpong_native()
                pingpong_bindings()
            rt.barrier()
            t0 = time.perf_counter()
            for _ in range(iters):
                pingpong_native()
            t_native = time.perf_counter() - t0
            rt.barrier()
            t0 = time.perf_counter()
            for _ in range(iters):
                pingpong_bindings()
            t_bind = time.perf_counter() - t0
            return t_native, t_bind

        results = run_on_threads(2, work, timeout=120)
        t_native, t_bind = results[0]
        # Bindings do strictly more per-call work; allow generous noise
        # margin but the native path must not be slower by 50%+.
        assert t_native < t_bind * 1.5
