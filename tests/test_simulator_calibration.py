"""Calibration tests: the simulator must reproduce the paper's reported
average overheads (the numbers in Figs. 4-35 and Table III)."""

import pytest

from repro.core.results import average_overhead
from repro.simulator import (
    FRONTERA,
    INTEL_MPI,
    MVAPICH2,
    RI2,
    RI2_GPU,
    STAMPEDE2,
    simulate_collective,
    simulate_pt2pt,
)
from repro.simulator.api import DEFAULT_LARGE_SIZES, DEFAULT_SMALL_SIZES


def overhead(base, other, sizes):
    return average_overhead(base, other, sizes)


class TestPt2ptLatencyCalibration:
    """Figs 4-11: OMB-Py-vs-OMB average latency overheads per cluster."""

    @pytest.mark.parametrize("cluster,small,large", [
        (FRONTERA, 0.44, 2.31),      # Figs 4/5
        (STAMPEDE2, 0.41, 4.13),     # Figs 6/7
        (RI2, 0.41, 1.76),           # Figs 8/9
    ])
    def test_intra_node(self, cluster, small, large):
        omb = simulate_pt2pt(cluster, "intra", api="native")
        py = simulate_pt2pt(cluster, "intra", api="buffer")
        assert overhead(omb, py, DEFAULT_SMALL_SIZES) == pytest.approx(
            small, rel=0.10
        )
        assert overhead(omb, py, DEFAULT_LARGE_SIZES) == pytest.approx(
            large, rel=0.10
        )

    def test_frontera_inter_node(self):
        """Figs 10/11: 0.43 us small, 0.63 us large."""
        omb = simulate_pt2pt(FRONTERA, "inter", api="native")
        py = simulate_pt2pt(FRONTERA, "inter", api="buffer")
        assert overhead(omb, py, DEFAULT_SMALL_SIZES) == pytest.approx(
            0.43, rel=0.10
        )
        assert overhead(omb, py, DEFAULT_LARGE_SIZES) == pytest.approx(
            0.63, rel=0.10
        )


class TestBandwidthCalibration:
    """Figs 12/13: bandwidth deficit ~1.05 GB/s mid-range, ~331 MB/s large."""

    def test_mid_range_deficit(self):
        omb = simulate_pt2pt(
            FRONTERA, "inter", api="native", metric="bandwidth"
        )
        py = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth"
        )
        mid = [2 ** k for k in range(9, 14)]  # 512 B .. 8 KB
        deficit = -overhead(omb, py, mid)
        assert deficit == pytest.approx(1050, rel=0.25)

    def test_large_deficit(self):
        omb = simulate_pt2pt(
            FRONTERA, "inter", api="native", metric="bandwidth"
        )
        py = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth"
        )
        deficit = -overhead(omb, py, DEFAULT_LARGE_SIZES)
        assert deficit == pytest.approx(331, rel=0.25)


class TestCollectiveCalibration:
    """Figs 14-21: Allreduce/Allgather on 16 Frontera nodes."""

    @pytest.mark.parametrize("op,small,large", [
        ("allreduce", 0.93, 14.13),   # Figs 14/15
        ("allgather", 0.92, 23.4),    # Figs 18/19
    ])
    def test_one_ppn(self, op, small, large):
        omb = simulate_collective(op, FRONTERA, nodes=16, api="native")
        py = simulate_collective(op, FRONTERA, nodes=16, api="buffer")
        assert overhead(omb, py, DEFAULT_SMALL_SIZES) == pytest.approx(
            small, rel=0.15
        )
        assert overhead(omb, py, DEFAULT_LARGE_SIZES) == pytest.approx(
            large, rel=0.15
        )

    def test_allgather_full_subscription_blowup(self):
        """Figs 20/21: 8 us @ 1 B -> 345 us @ 8 KB -> 41 ms peak @ 32 KB."""
        omb = simulate_collective(
            "allgather", FRONTERA, nodes=16, ppn=56, api="native"
        )
        py = simulate_collective(
            "allgather", FRONTERA, nodes=16, ppn=56, api="buffer"
        )

        def delta(n):
            return py.row_for(n).value - omb.row_for(n).value

        assert delta(1) == pytest.approx(8.0, rel=0.25)
        assert delta(8192) == pytest.approx(345.0, rel=0.15)
        assert delta(32768) == pytest.approx(41000.0, rel=0.15)
        # Past the peak the overhead relaxes but stays in milliseconds.
        assert 5000 < delta(1 << 20) < delta(32768)

    def test_allreduce_full_subscription_degrades_large(self):
        """Figs 16/17: small ~4.2 us; large messages degrade clearly."""
        omb = simulate_collective(
            "allreduce", FRONTERA, nodes=16, ppn=56, api="native"
        )
        py = simulate_collective(
            "allreduce", FRONTERA, nodes=16, ppn=56, api="buffer"
        )
        small = overhead(omb, py, DEFAULT_SMALL_SIZES)
        assert small == pytest.approx(4.21, rel=0.25)
        large = overhead(omb, py, DEFAULT_LARGE_SIZES)
        assert large > 10 * small


class TestGpuCalibration:
    """Figs 22-27: device-buffer overheads on RI2 GPUs."""

    @pytest.mark.parametrize("buf,small,large", [
        ("cupy", 3.54, 8.35),
        ("pycuda", 3.44, 7.92),
        ("numba", 5.85, 11.4),
    ])
    def test_pt2pt(self, buf, small, large):
        omb = simulate_pt2pt(RI2_GPU, api="native", device="gpu")
        py = simulate_pt2pt(RI2_GPU, api="buffer", buffer=buf)
        assert overhead(omb, py, DEFAULT_SMALL_SIZES) == pytest.approx(
            small, rel=0.10
        )
        assert overhead(omb, py, DEFAULT_LARGE_SIZES) == pytest.approx(
            large, rel=0.10
        )

    @pytest.mark.parametrize("op,targets", [
        ("allreduce", {"cupy": 18.64, "pycuda": 17.63, "numba": 23.1}),
        ("allgather", {"cupy": 12.14, "pycuda": 11.94, "numba": 17.24}),
    ])
    def test_collectives_small(self, op, targets):
        omb = simulate_collective(
            op, RI2_GPU, nodes=8, api="native", buffer="cupy"
        )
        for buf, target in targets.items():
            py = simulate_collective(
                op, RI2_GPU, nodes=8, api="buffer", buffer=buf
            )
            assert overhead(
                omb, py, DEFAULT_SMALL_SIZES
            ) == pytest.approx(target, rel=0.10)

    def test_numba_roughly_2x_cupy_overhead(self):
        """The paper's headline GPU insight."""
        omb = simulate_pt2pt(RI2_GPU, api="native", device="gpu")
        cupy = simulate_pt2pt(RI2_GPU, api="buffer", buffer="cupy")
        numba = simulate_pt2pt(RI2_GPU, api="buffer", buffer="numba")
        ratio = overhead(omb, numba, DEFAULT_SMALL_SIZES) / overhead(
            omb, cupy, DEFAULT_SMALL_SIZES
        )
        assert 1.5 < ratio < 2.1


class TestMpiLibCalibration:
    """Figs 28-31: MVAPICH2 vs Intel MPI."""

    def test_flat_latency_difference(self):
        mv = simulate_pt2pt(FRONTERA, "inter", api="buffer", mpilib=MVAPICH2)
        im = simulate_pt2pt(FRONTERA, "inter", api="buffer", mpilib=INTEL_MPI)
        all_sizes = DEFAULT_SMALL_SIZES + DEFAULT_LARGE_SIZES
        assert overhead(mv, im, all_sizes) == pytest.approx(0.36, abs=0.02)

    def test_bandwidth_difference(self):
        mv = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth",
            mpilib=MVAPICH2,
        )
        im = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth",
            mpilib=INTEL_MPI,
        )
        all_sizes = DEFAULT_SMALL_SIZES + DEFAULT_LARGE_SIZES
        assert -overhead(mv, im, all_sizes) == pytest.approx(856, rel=0.25)


class TestPickleCalibration:
    """Figs 32-35: pickle vs direct buffer."""

    def test_small_latency_overhead(self):
        direct = simulate_pt2pt(FRONTERA, "inter", api="buffer")
        pickled = simulate_pt2pt(FRONTERA, "inter", api="pickle")
        assert overhead(
            direct, pickled, DEFAULT_SMALL_SIZES
        ) == pytest.approx(1.07, rel=0.10)

    def test_divergence_past_64k(self):
        direct = simulate_pt2pt(FRONTERA, "inter", api="buffer")
        pickled = simulate_pt2pt(FRONTERA, "inter", api="pickle")
        at_64k = pickled.row_for(65536).value - direct.row_for(65536).value
        at_1m = pickled.row_for(1 << 20).value - direct.row_for(1 << 20).value
        assert at_1m == pytest.approx(1510, rel=0.15)
        assert at_1m > 10 * at_64k

    def test_pickle_bandwidth_below_direct_everywhere(self):
        direct = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth"
        )
        pickled = simulate_pt2pt(
            FRONTERA, "inter", api="pickle", metric="bandwidth"
        )
        for size in direct.sizes():
            assert pickled.row_for(size).value <= direct.row_for(size).value
