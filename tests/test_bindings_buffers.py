"""Buffer-resolution tests for the bindings layer."""

import numpy as np
import pytest

from repro.bindings.buffers import resolve_buffer
from repro.gpu import cupy_sim, numba_sim, pycuda_sim
from repro.mpi import datatypes
from repro.mpi.exceptions import BufferError_, CountError


class TestHostBuffers:
    def test_bytearray(self):
        spec = resolve_buffer(bytearray(16))
        assert spec.nbytes == 16
        assert spec.datatype is datatypes.BYTE
        assert spec.kind == "host"

    def test_bytes_send_only(self):
        spec = resolve_buffer(b"\x01\x02")
        assert spec.read() == b"\x01\x02"

    def test_bytes_not_writable(self):
        with pytest.raises(BufferError_, match="read-only"):
            resolve_buffer(b"xx", writable=True)

    def test_numpy_dtype_discovery(self):
        spec = resolve_buffer(np.zeros(4, dtype="f8"))
        assert spec.datatype is datatypes.DOUBLE
        assert spec.nbytes == 32
        assert spec.count == 4

    def test_numpy_int32(self):
        spec = resolve_buffer(np.zeros(3, dtype="i4"))
        assert spec.datatype is datatypes.INT

    def test_noncontiguous_rejected(self):
        arr = np.zeros((4, 4))[:, 0]
        with pytest.raises(BufferError_, match="C-contiguous"):
            resolve_buffer(arr)

    def test_readonly_numpy_recv_rejected(self):
        arr = np.zeros(4)
        arr.flags.writeable = False
        with pytest.raises(BufferError_, match="read-only"):
            resolve_buffer(arr, writable=True)

    def test_unsupported_object(self):
        with pytest.raises(BufferError_, match="buffer protocol"):
            resolve_buffer(object())

    def test_write_roundtrip(self):
        buf = bytearray(8)
        spec = resolve_buffer(buf, writable=True)
        spec.write(b"abcd", offset=2)
        assert bytes(buf) == b"\x00\x00abcd\x00\x00"

    def test_write_overrun_rejected(self):
        spec = resolve_buffer(bytearray(4), writable=True)
        with pytest.raises(BufferError_, match="overruns"):
            spec.write(b"12345")

    def test_as_array_uses_datatype(self):
        arr = np.arange(4, dtype="f4")
        spec = resolve_buffer(arr)
        assert np.allclose(spec.as_array(), arr)


class TestExplicitSpecs:
    def test_two_tuple_with_datatype_object(self):
        spec = resolve_buffer([bytearray(8), datatypes.DOUBLE])
        assert spec.datatype is datatypes.DOUBLE
        assert spec.count == 1

    def test_two_tuple_with_name(self):
        spec = resolve_buffer([bytearray(8), "MPI_FLOAT"])
        assert spec.datatype is datatypes.FLOAT
        assert spec.count == 2

    def test_three_tuple_count_limits_view(self):
        spec = resolve_buffer([bytearray(32), 2, "MPI_DOUBLE"])
        assert spec.nbytes == 16
        assert spec.count == 2

    def test_count_exceeding_buffer_rejected(self):
        with pytest.raises(CountError, match="exceeds"):
            resolve_buffer([bytearray(8), 9, "MPI_CHAR"])

    def test_negative_count_rejected(self):
        with pytest.raises(CountError):
            resolve_buffer([bytearray(8), -1, "MPI_CHAR"])

    def test_non_multiple_datatype_rejected(self):
        with pytest.raises(BufferError_, match="whole number"):
            resolve_buffer([bytearray(7), "MPI_DOUBLE"])

    def test_wrong_spec_arity(self):
        with pytest.raises(BufferError_, match="buffer spec"):
            resolve_buffer([bytearray(4), 1, "MPI_CHAR", "extra"])


class TestDeviceBuffers:
    def test_cupy_detected(self):
        arr = cupy_sim.zeros(10, dtype=np.float64)
        spec = resolve_buffer(arr)
        assert spec.kind == "device"
        assert spec.library == "cupy"
        assert spec.nbytes == 80
        assert spec.datatype is datatypes.DOUBLE

    def test_pycuda_detected(self):
        arr = pycuda_sim.gpuarray.zeros(4, dtype=np.int32)
        spec = resolve_buffer(arr)
        assert spec.library == "pycuda"
        assert spec.datatype is datatypes.INT

    def test_numba_detected(self):
        arr = numba_sim.cuda.device_array(6, dtype=np.float32)
        spec = resolve_buffer(arr)
        assert spec.library == "numba"
        assert spec.datatype is datatypes.FLOAT

    def test_device_view_aliases_device_memory(self):
        arr = cupy_sim.zeros(4, dtype=np.uint8)
        spec = resolve_buffer(arr, writable=True)
        spec.write(b"\x09\x08\x07\x06")
        assert arr.get().tolist() == [9, 8, 7, 6]

    def test_device_read_sees_device_contents(self):
        arr = cupy_sim.array(np.array([1, 2, 3], dtype=np.uint8))
        spec = resolve_buffer(arr)
        assert spec.read() == b"\x01\x02\x03"
