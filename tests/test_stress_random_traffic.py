"""Randomized stress tests: arbitrary traffic patterns must deliver every
message exactly once, unmodified, respecting per-pair ordering."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ops
from repro.mpi.world import run_on_threads


@given(
    st.integers(2, 5),                      # world size
    st.integers(0, 2**31 - 1),              # seed
    st.integers(5, 40),                     # messages per sender
)
@settings(max_examples=15, deadline=None)
def test_random_all_pairs_traffic(n, seed, per_sender):
    """Every rank sends `per_sender` random-size messages to random
    destinations; receivers drain by wildcard and the global multiset of
    (src, dst, payload-checksum) must match exactly."""
    rng = np.random.default_rng(seed)
    plans = {
        src: [
            (int(rng.integers(0, n)),
             bytes(rng.integers(0, 256, int(rng.integers(0, 64)),
                                dtype=np.uint8)))
            for _ in range(per_sender)
        ]
        for src in range(n)
    }
    expected_by_dst: dict[int, list[tuple[int, bytes]]] = {
        d: [] for d in range(n)
    }
    for src, plan in plans.items():
        for dst, payload in plan:
            expected_by_dst[dst].append((src, payload))

    def work(comm):
        me = comm.rank
        # Post all my receives first (wildcard), then send my plan.
        reqs = [
            comm.irecv_bytes(-1, 3, 1 << 20)
            for _ in range(len(expected_by_dst[me]))
        ]
        for dst, payload in plans[me]:
            comm.send_bytes(payload, dst, 3)
        got = []
        for r in reqs:
            st_ = r.wait()
            got.append((st_.Get_source(), r.payload()))
        return sorted(got)

    results = run_on_threads(n, work, timeout=60)
    for d in range(n):
        assert results[d] == sorted(expected_by_dst[d])


@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_random_collective_sequences(n, seed):
    """A random program of collectives executed identically by all ranks
    must produce reference-correct results at every step."""
    rng = np.random.default_rng(seed)
    program = [int(rng.integers(0, 4)) for _ in range(8)]
    data_seed = int(rng.integers(0, 2**31 - 1))

    def rank_data(r, step):
        gen = np.random.default_rng(data_seed + r * 131 + step)
        return gen.integers(-50, 50, 6).astype("f8")

    def work(comm):
        for step, op in enumerate(program):
            mine = rank_data(comm.rank, step)
            if op == 0:
                out = comm.allreduce_array(mine, ops.SUM)
                expect = np.sum(
                    [rank_data(r, step) for r in range(comm.size)], axis=0
                )
                assert np.allclose(out, expect)
            elif op == 1:
                root = step % comm.size
                payload = mine.tobytes()
                out = comm.bcast_bytes(
                    payload if comm.rank == root else None, root
                )
                assert out == rank_data(root, step).tobytes()
            elif op == 2:
                blocks = comm.allgather_bytes(mine.tobytes())
                for r, b in enumerate(blocks):
                    assert b == rank_data(r, step).tobytes()
            else:
                comm.barrier()

    run_on_threads(n, work, timeout=60)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_interleaved_tags_and_wildcards(seed):
    """Messages on interleaved tags match selectively; wildcards drain
    the remainder in arrival order."""
    rng = np.random.default_rng(seed)
    tags = [int(t) for t in rng.integers(0, 100, 6)]

    def work(comm):
        if comm.rank == 0:
            for i, tag in enumerate(tags):
                comm.send_bytes(bytes([i]), 1, tag)
        elif comm.rank == 1:
            # Selective receives consume the earliest not-yet-consumed
            # message with the requested tag (MPI FIFO matching); model
            # the queue explicitly to predict each result.
            queue = list(enumerate(tags))
            for i in (4, 2, 0):
                data, _ = comm.recv_bytes(0, tags[i], 4)
                pos = next(
                    j for j, (_idx, t) in enumerate(queue)
                    if t == tags[i]
                )
                expected, _tag = queue.pop(pos)
                assert data == bytes([expected])
            # Wildcards drain the remainder in arrival order.
            for expected, _tag in queue:
                data, _ = comm.recv_bytes(-1, -1, 4)
                assert data == bytes([expected])

    run_on_threads(2, work, timeout=60)
