"""Unit + property tests for reduction operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mpi import ops
from repro.mpi.exceptions import OpError


class TestArithmetic:
    def test_sum(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        assert np.array_equal(ops.SUM(a, b), [4.0, 6.0])

    def test_prod(self):
        a, b = np.array([2, 3]), np.array([4, 5])
        assert np.array_equal(ops.PROD(a, b), [8, 15])

    def test_max_min(self):
        a, b = np.array([1, 9]), np.array([5, 2])
        assert np.array_equal(ops.MAX(a, b), [5, 9])
        assert np.array_equal(ops.MIN(a, b), [1, 2])

    def test_inputs_not_mutated(self):
        a, b = np.array([1.0]), np.array([2.0])
        ops.SUM(a, b)
        assert a[0] == 1.0 and b[0] == 2.0


class TestLogicalBitwise:
    def test_land_lor(self):
        a = np.array([1, 0, 2], dtype="i4")
        b = np.array([1, 1, 0], dtype="i4")
        assert np.array_equal(ops.LAND(a, b), [1, 0, 0])
        assert np.array_equal(ops.LOR(a, b), [1, 1, 1])

    def test_lxor(self):
        a = np.array([1, 0], dtype="i4")
        b = np.array([1, 1], dtype="i4")
        assert np.array_equal(ops.LXOR(a, b), [0, 1])

    def test_logical_preserves_dtype(self):
        a = np.array([1, 0], dtype="i8")
        assert ops.LAND(a, a).dtype == np.dtype("i8")

    def test_band_bor_bxor(self):
        a = np.array([0b1100], dtype="u4")
        b = np.array([0b1010], dtype="u4")
        assert ops.BAND(a, b)[0] == 0b1000
        assert ops.BOR(a, b)[0] == 0b1110
        assert ops.BXOR(a, b)[0] == 0b0110


class TestLocOps:
    def _pairs(self, vals_a, idx_a, vals_b, idx_b):
        a = np.array(list(zip(vals_a, idx_a)), dtype="f8,i4")
        b = np.array(list(zip(vals_b, idx_b)), dtype="f8,i4")
        return a, b

    def test_maxloc_picks_larger(self):
        a, b = self._pairs([1.0, 9.0], [0, 0], [5.0, 2.0], [1, 1])
        out = ops.MAXLOC(a, b)
        assert out["f0"].tolist() == [5.0, 9.0]
        assert out["f1"].tolist() == [1, 0]

    def test_maxloc_tie_prefers_lower_index(self):
        a, b = self._pairs([3.0], [7], [3.0], [2])
        assert ops.MAXLOC(a, b)["f1"][0] == 2

    def test_minloc(self):
        a, b = self._pairs([1.0, 9.0], [0, 0], [5.0, 2.0], [1, 1])
        out = ops.MINLOC(a, b)
        assert out["f0"].tolist() == [1.0, 2.0]
        assert out["f1"].tolist() == [0, 1]

    def test_minloc_tie_prefers_lower_index(self):
        a, b = self._pairs([3.0], [7], [3.0], [2])
        assert ops.MINLOC(a, b)["f1"][0] == 2


class TestRegistry:
    def test_lookup(self):
        assert ops.lookup("MPI_SUM") is ops.SUM

    def test_lookup_unknown(self):
        with pytest.raises(OpError, match="unknown reduction op"):
            ops.lookup("MPI_NOPE")

    def test_replace_keeps_second(self):
        a, b = np.array([1.0]), np.array([2.0])
        assert ops.REPLACE(a, b)[0] == 2.0

    def test_create_user_op(self):
        avg2 = ops.create(lambda a, b: (a + b) / 2, commute=True)
        assert avg2(np.array([2.0]), np.array([4.0]))[0] == 3.0
        assert avg2.Is_commutative()

    def test_create_noncommutative(self):
        first = ops.create(lambda a, b: a, commute=False)
        assert not first.Is_commutative()

    def test_create_non_callable_raises(self):
        with pytest.raises(OpError):
            ops.create("not callable")  # type: ignore[arg-type]

    def test_predefined_names_sorted(self):
        names = ops.predefined_names()
        assert names == sorted(names)
        assert "MPI_SUM" in names


class TestProperties:
    @given(
        hnp.arrays(np.float64, 8, elements=st.floats(-1e6, 1e6)),
        hnp.arrays(np.float64, 8, elements=st.floats(-1e6, 1e6)),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_commutes(self, a, b):
        assert np.array_equal(ops.SUM(a, b), ops.SUM(b, a))

    @given(
        hnp.arrays(np.int64, 6, elements=st.integers(-1000, 1000)),
        hnp.arrays(np.int64, 6, elements=st.integers(-1000, 1000)),
        hnp.arrays(np.int64, 6, elements=st.integers(-1000, 1000)),
    )
    @settings(max_examples=50, deadline=None)
    def test_max_associates(self, a, b, c):
        left = ops.MAX(ops.MAX(a, b), c)
        right = ops.MAX(a, ops.MAX(b, c))
        assert np.array_equal(left, right)

    @given(
        hnp.arrays(np.int32, 5, elements=st.integers(0, 2**20)),
        hnp.arrays(np.int32, 5, elements=st.integers(0, 2**20)),
    )
    @settings(max_examples=50, deadline=None)
    def test_bxor_self_inverse(self, a, b):
        assert np.array_equal(ops.BXOR(ops.BXOR(a, b), b), a)
