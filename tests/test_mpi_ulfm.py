"""ULFM-style recovery: revoke, shrink, agree, and recovery harnesses.

All on the threads transport, where an injected crash (``mode="raise"``)
is the analogue of a process death: the fabric notifies every survivor,
exactly as EOF does on the process transports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import PeerFailedError, verify
from repro.faults import CrashSpec, FaultPlan
from repro.mpi import ops, ulfm
from repro.mpi.exceptions import CommError, CommRevokedError, RankFailedError
from repro.mpi.matching import Envelope, MatchingEngine
from repro.mpi.world import run_on_threads

#: Failure modes a survivor may observe for a crashed peer: the engine's
#: sticky failure, a revoked context, or (under the runtime verifier)
#: the verifier's own cross-rank failure propagation — whichever races
#: ahead.
FAILURES = (RankFailedError, CommRevokedError, PeerFailedError)


def crash_plan(rank: int, at_op: int, seed: int = 0) -> FaultPlan:
    return FaultPlan(
        seed=seed, crash=CrashSpec(rank=rank, at_op=at_op, mode="raise")
    )


def allreduce_sum(comm, value: float) -> float:
    return float(comm.allreduce_array(np.array([value]), ops.SUM)[0])


def allreduce_loop(comm, value: float, rounds: int = 4) -> float:
    """Several allreduces in sequence.

    A single collective can *succeed* on some survivors even though a
    member crashed mid-way (its contribution may already be in flight) —
    the canonical ULFM motivation.  Repeating the collective guarantees
    every survivor eventually observes the failure, so all of them enter
    the recovery path together.
    """
    total = allreduce_sum(comm, value)
    for _ in range(rounds - 1):
        total = allreduce_sum(comm, value)
    return total


class TestEngineRevocation:
    """The matching-engine half of revoke, without any transport."""

    def test_posted_receive_fails_promptly(self):
        engine = MatchingEngine()
        ticket = engine.post_recv(7, 1, 0, 64)
        assert engine.revoke_context(7)
        with pytest.raises(CommRevokedError):
            ticket.wait(5)

    def test_future_receive_fails_and_deliveries_dropped(self):
        engine = MatchingEngine()
        engine.revoke_context(7)
        ticket = engine.post_recv(7, 1, 0, 64)
        with pytest.raises(CommRevokedError):
            ticket.wait(5)
        engine.deliver(Envelope(7, 1, 0, 0, 3), b"xyz")
        assert engine.pending_unexpected() == 0

    def test_idempotent_and_scoped(self):
        engine = MatchingEngine()
        assert engine.revoke_context(7)
        assert not engine.revoke_context(7)  # second call is a no-op
        # Other contexts are untouched.
        engine.deliver(Envelope(9, 1, 0, 4, 2), b"ok")
        assert engine.post_recv(9, 1, 4, 64).wait(5) == b"ok"

    def test_revoke_purges_unexpected(self):
        engine = MatchingEngine()
        engine.deliver(Envelope(7, 1, 0, 0, 3), b"old")
        assert engine.pending_unexpected() == 1
        engine.revoke_context(7)
        assert engine.pending_unexpected() == 0


class TestRevoke:
    def test_revoke_unblocks_peer_receive(self):
        """A revocation reaches a peer blocked in recv and fails it."""

        def body(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.revoke()
                return "revoked"
            try:
                comm.barrier()
                comm.recv_bytes(0, 99, 64)  # rank 0 will never send this
            except CommRevokedError:
                return "unblocked"

        assert run_on_threads(2, body, timeout=60) == ["revoked", "unblocked"]

    def test_operations_after_revoke_fail(self):
        def body(comm):
            comm.revoke()
            assert comm.is_revoked()
            with pytest.raises(CommRevokedError):
                comm.send_bytes(b"x", 1 - comm.rank, 0)
            return True

        assert run_on_threads(2, body, timeout=60) == [True, True]


class TestShrink:
    def test_survivors_shrink_and_continue(self):
        """After a crash, shrink() yields a working 2-rank communicator."""

        def body(comm):
            try:
                return allreduce_loop(comm, 1.0)
            except (RankFailedError, CommRevokedError):
                comm.revoke()
                small = comm.shrink()
                total = allreduce_sum(small, 1.0)
                return (total, small.size, small.rank,
                        sorted(small.Get_group().world_ranks()))

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=60,
        )
        assert out[1] is None
        for survivor in (out[0], out[2]):
            total, size, _rank, world_ranks = survivor
            assert total == 2.0 and size == 2 and world_ranks == [0, 2]
        assert out[0][2] == 0 and out[2][2] == 1  # old order preserved

    def test_shrink_reports_dead_rank(self):
        def body(comm):
            try:
                return allreduce_loop(comm, 1.0)
            except (RankFailedError, CommRevokedError):
                comm.revoke()
                small = comm.shrink()
                return (sorted(comm.failed_ranks()), small.size)

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=60,
        )
        for survivor in (out[0], out[2]):
            dead, size = survivor
            assert 1 in dead and size == 2

    def test_shrink_without_failure_is_identity_membership(self):
        """Shrinking a healthy communicator keeps everyone."""

        def body(comm):
            small = comm.shrink()
            return (small.size, small.rank, allreduce_sum(small, 1.0))

        out = run_on_threads(3, body, timeout=60)
        assert out == [(3, 0, 3.0), (3, 1, 3.0), (3, 2, 3.0)]

    def test_no_leaked_requests_after_mid_collective_crash(self):
        """Satellite: the survivor path is verifier-clean after shrink.

        Rank 1 crashes mid-collective; the survivors revoke + shrink and
        finish under the runtime verifier.  Leaving the ``verify``
        context cleanly asserts no posted receive was leaked and no
        delivered message was stranded (it raises
        ``PendingOperationError`` otherwise).
        """

        def body(comm):
            with verify(comm, grace=0.2, op_timeout=20.0) as v:
                try:
                    allreduce_loop(comm, 2.0)
                except FAILURES:
                    comm.revoke()
                    small = comm.shrink()
                    total = allreduce_sum(small, 2.0)
                    assert total == 2.0 * small.size
                # Only peer-failure findings (OMB103) are acceptable;
                # leaks would have raised on exit.
                rules = {f.rule for f in v.findings}
            assert rules <= {"OMB103"}
            return True

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=90,
        )
        assert out[0] is True and out[2] is True


class TestAgree:
    def test_unanimous_true(self):
        def body(comm):
            return comm.agree(True)

        assert run_on_threads(3, body, timeout=60) == [True, True, True]

    def test_single_false_wins(self):
        def body(comm):
            return comm.agree(comm.rank != 1)

        assert run_on_threads(3, body, timeout=60) == [False, False, False]

    def test_agree_survives_crash(self):
        def body(comm):
            try:
                allreduce_loop(comm, 1.0)
            except (RankFailedError, CommRevokedError):
                pass
            return comm.agree(True)

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=60,
        )
        assert out[0] is True and out[2] is True and out[1] is None


class TestRunWithRecovery:
    def test_retries_until_success(self):
        def body(comm):
            result, final = ulfm.run_with_recovery(
                comm, lambda c: allreduce_loop(c, 1.0)
            )
            return (result, final.size)

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=60,
        )
        assert out[0] == (2.0, 2) and out[2] == (2.0, 2)

    def test_healthy_run_is_passthrough(self):
        def body(comm):
            result, final = ulfm.run_with_recovery(
                comm, lambda c: allreduce_sum(c, float(c.rank))
            )
            return (result, final is comm)

        out = run_on_threads(2, body, timeout=60)
        assert out == [(1.0, True), (1.0, True)]

    def test_shrinks_to_sole_survivor(self):
        """A 2-rank job whose peer dies finishes as a singleton."""

        def body(comm):
            result, final = ulfm.run_with_recovery(
                comm, lambda c: allreduce_loop(c, 1.0)
            )
            return (result, final.size)

        out = run_on_threads(
            2, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=60,
        )
        assert out[0] == (1.0, 1) and out[1] is None


class TestBindingsULFM:
    def test_capitalised_api(self):
        from repro.bindings.comm_api import Comm as BindingsComm

        def body(comm):
            bc = BindingsComm(comm)
            try:
                for _ in range(4):
                    total = bc.allreduce(1.0)
                return total
            except (RankFailedError, CommRevokedError):
                bc.Revoke()
                assert bc.Is_revoked()
                assert 1 in bc.Get_failed()
                small = bc.Shrink()
                return ("shrunk", small.Get_size(),
                        float(small.allreduce(1.0)))

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=60,
        )
        assert out[0] == ("shrunk", 2, 2.0)
        assert out[2] == ("shrunk", 2, 2.0)


class TestFaultTolerantKmeansHPO:
    def test_curve_identical_after_crash(self):
        from repro.ml.distributed import (
            fault_tolerant_kmeans_hpo, sequential_kmeans_hpo,
        )

        rng = np.random.default_rng(0)
        X = np.concatenate(
            [rng.normal(loc, 0.3, size=(30, 2)) for loc in (0.0, 3.0, 6.0)]
        )
        expected = sequential_kmeans_hpo(X, k_max=5)

        def body(comm):
            results, final = fault_tolerant_kmeans_hpo(comm, X, k_max=5)
            return (results, final.size)

        out = run_on_threads(
            3, body, fault_plan=crash_plan(1, at_op=1),
            tolerate_crashes=True, timeout=90,
        )
        assert out[1] is None
        assert [o[1] for o in (out[0], out[2])] == [2, 2]
        results = next(o[0] for o in (out[0], out[2]) if o[0] is not None)
        assert results.keys() == expected.keys()
        for k in expected:
            assert results[k] == pytest.approx(expected[k])


class TestRecoveryTimeout:
    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv(ulfm.ENV_ULFM_TIMEOUT, "-3")
        with pytest.raises(ValueError, match="must be > 0"):
            ulfm._recovery_timeout(None)

    def test_env_and_default(self, monkeypatch):
        monkeypatch.delenv(ulfm.ENV_ULFM_TIMEOUT, raising=False)
        assert ulfm._recovery_timeout(None) == ulfm.DEFAULT_TIMEOUT
        monkeypatch.setenv(ulfm.ENV_ULFM_TIMEOUT, "2.5")
        assert ulfm._recovery_timeout(None) == 2.5
        assert ulfm._recovery_timeout(7.0) == 7.0  # explicit wins

    def test_context_derivation_depth_guard(self):
        with pytest.raises(CommError, match="too deep"):
            ctx = 0
            for _ in range(8):
                ctx = ulfm._shrink_context(ctx, attempt=1)
