"""Whole-program performance rules (OMB301-310): one true-positive and
one true-negative fixture per rule, plus the interprocedural facts
(call graph, hot set, buffer-param propagation) they stand on."""

from __future__ import annotations

import ast

from repro.analysis.interproc import Program, load_program
from repro.analysis.perf import run_perf_rules


def program_of(*sources: str) -> Program:
    prog = Program()
    for i, src in enumerate(sources):
        prog.add_module(f"mod{i}.py", ast.parse(src))
    prog.finalize()
    return prog


def rules_of(*sources: str, select: set[str] | None = None) -> list[str]:
    findings = run_perf_rules(program_of(*sources), select=select)
    return sorted(f.rule for f in findings)


class TestInterproc:
    def test_hot_set_closure(self):
        src = (
            "def helper(payload):\n"
            "    return transform(payload)\n"
            "def transform(payload):\n"
            "    return payload\n"
            "def send_bytes(self, payload, dest, tag):\n"
            "    helper(payload)\n"
            "def cold():\n"
            "    pass\n"
        )
        prog = program_of(src)
        hot = {
            info.name for info in prog.functions if prog.is_hot(info)
        }
        assert "send_bytes" in hot       # entry point by name
        assert "helper" in hot           # called from hot
        assert "transform" in hot        # transitively hot
        assert "cold" not in hot

    def test_buffer_params_flow_across_calls(self):
        src = (
            "import numpy as np\n"
            "def produce():\n"
            "    data = np.zeros(1024)\n"
            "    ship(data)\n"
            "def ship(data):\n"
            "    relay(data)\n"
            "def relay(data):\n"
            "    pass\n"
        )
        prog = program_of(src)
        by_name = {info.name: info for info in prog.functions}
        assert "data" in by_name["ship"].buffer_params
        assert "data" in by_name["relay"].buffer_params  # fixpoint, 2 hops


class TestOMB301HotCopy:
    def test_bytes_copy_on_hot_path_flagged(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    frozen = bytes(payload)\n"
            "    self._post(frozen, dest, tag)\n"
        )
        assert "OMB301" in rules_of(src)

    def test_bytes_allocation_clean(self):
        # bytes(int) allocates, it does not copy.
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    padding = bytes(64)\n"
            "    self._post(payload, dest, tag)\n"
        )
        assert "OMB301" not in rules_of(src)

    def test_cold_function_clean(self):
        # The same copy in setup code is not per-message work.
        src = (
            "def configure(payload):\n"
            "    frozen = bytes(payload)\n"
            "    return frozen\n"
        )
        assert rules_of(src, select={"OMB301"}) == []


class TestOMB302Materialization:
    def test_concat_and_slice_flagged(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    frame = header_bytes + payload\n"
            "    chunk = payload[0:1024]\n"
            "    self._post(frame, dest, tag)\n"
        )
        found = rules_of(src, select={"OMB302"})
        assert found.count("OMB302") >= 2

    def test_memoryview_slice_clean(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    view = memoryview(payload)[0:1024]\n"
            "    self._post(view, dest, tag)\n"
        )
        assert rules_of(src, select={"OMB302"}) == []


class TestOMB303InterprocPickle:
    def test_buffer_param_sent_via_pickle_flagged(self):
        src = (
            "import numpy as np\n"
            "def produce(comm):\n"
            "    data = np.zeros(1024)\n"
            "    ship(comm, data)\n"
            "def ship(comm, data):\n"
            "    comm.send(data, dest=1, tag=0)\n"
        )
        assert "OMB303" in rules_of(src)

    def test_locally_visible_buffer_is_omb001_not_omb303(self):
        # When the buffer-ness is visible in the same function, the
        # per-function OMB001 rule owns the finding.
        src = (
            "import numpy as np\n"
            "def ship(comm):\n"
            "    data = np.zeros(1024)\n"
            "    comm.send(data, dest=1, tag=0)\n"
        )
        assert "OMB303" not in rules_of(src)

    def test_non_buffer_param_clean(self):
        src = (
            "def produce(comm):\n"
            "    ship(comm, {'k': 1})\n"
            "def ship(comm, data):\n"
            "    comm.send(data, dest=1, tag=0)\n"
        )
        assert "OMB303" not in rules_of(src)


class TestOMB304BlockingInLoop:
    def test_blocking_send_in_loop_flagged(self):
        src = (
            "def pump(comm, chunks):\n"
            "    for chunk in chunks:\n"
            "        comm.send(chunk, dest=1, tag=0)\n"
        )
        assert "OMB304" in rules_of(src)

    def test_nonblocking_in_loop_clean(self):
        src = (
            "def pump(comm, chunks):\n"
            "    reqs = [comm.isend(c, dest=1, tag=0) for c in chunks]\n"
            "    waitall(reqs)\n"
        )
        assert "OMB304" not in rules_of(src)

    def test_blocking_outside_loop_clean(self):
        src = (
            "def once(comm, chunk):\n"
            "    comm.send(chunk, dest=1, tag=0)\n"
        )
        assert "OMB304" not in rules_of(src)


class TestOMB305CollectiveInSweep:
    def test_collective_in_size_sweep_flagged(self):
        src = (
            "def sweep(comm, sizes):\n"
            "    for size in sizes:\n"
            "        comm.allreduce(size, op=sum)\n"
        )
        assert "OMB305" in rules_of(src)

    def test_collective_in_plain_loop_clean(self):
        src = (
            "def rounds(comm, epochs):\n"
            "    for epoch in epochs:\n"
            "        comm.allreduce(epoch, op=sum)\n"
        )
        assert "OMB305" not in rules_of(src, select={"OMB305"})


class TestOMB306AllocInLoop:
    def test_alloc_in_communicating_loop_flagged(self):
        src = (
            "import numpy as np\n"
            "def bench(comm, iters):\n"
            "    for _ in range(iters):\n"
            "        buf = np.zeros(1024)\n"
            "        comm.Send(buf, dest=1, tag=0)\n"
        )
        assert "OMB306" in rules_of(src)

    def test_alloc_hoisted_clean(self):
        src = (
            "import numpy as np\n"
            "def bench(comm, iters):\n"
            "    buf = np.zeros(1024)\n"
            "    for _ in range(iters):\n"
            "        comm.Send(buf, dest=1, tag=0)\n"
        )
        assert "OMB306" not in rules_of(src)

    def test_alloc_in_non_communicating_loop_clean(self):
        src = (
            "import numpy as np\n"
            "def crunch(iters):\n"
            "    for _ in range(iters):\n"
            "        buf = np.zeros(1024)\n"
            "        consume(buf)\n"
        )
        assert "OMB306" not in rules_of(src)


class TestOMB307UnguardedTelemetry:
    def test_unguarded_hook_flagged(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    self.telemetry.on_send(dest, tag, len(payload))\n"
            "    self._post(payload, dest, tag)\n"
        )
        assert "OMB307" in rules_of(src)

    def test_guarded_hook_clean(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    tele = self.telemetry\n"
            "    if tele is not None:\n"
            "        tele.on_send(dest, tag, len(payload))\n"
            "    self._post(payload, dest, tag)\n"
        )
        assert "OMB307" not in rules_of(src)


class TestOMB308StructReparse:
    def test_format_string_in_hot_function_flagged(self):
        src = (
            "import struct\n"
            "def send_bytes(self, payload, dest, tag):\n"
            "    header = struct.pack('<qq', dest, tag)\n"
            "    self._post(header, dest, tag)\n"
        )
        assert "OMB308" in rules_of(src)

    def test_precompiled_struct_clean(self):
        src = (
            "import struct\n"
            "_HEADER = struct.Struct('<qq')\n"
            "def send_bytes(self, payload, dest, tag):\n"
            "    header = _HEADER.pack(dest, tag)\n"
            "    self._post(header, dest, tag)\n"
        )
        assert "OMB308" not in rules_of(src)


class TestOMB309EagerLogging:
    def test_fstring_log_on_hot_path_flagged(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    logger.debug(f'sending {len(payload)} bytes to {dest}')\n"
            "    self._post(payload, dest, tag)\n"
        )
        assert "OMB309" in rules_of(src)

    def test_lazy_log_clean(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    logger.debug('sending %d bytes to %d', len(payload), dest)\n"
            "    self._post(payload, dest, tag)\n"
        )
        assert "OMB309" not in rules_of(src)


class TestOMB310AttrChainInLoop:
    def test_repeated_chain_in_hot_loop_flagged(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    for off in offsets:\n"
            "        self._endpoint.engine.post(off)\n"
            "        self._endpoint.engine.mark(off)\n"
            "        self._endpoint.engine.flush(off)\n"
        )
        assert "OMB310" in rules_of(src)

    def test_hoisted_chain_clean(self):
        src = (
            "def send_bytes(self, payload, dest, tag):\n"
            "    engine = self._endpoint.engine\n"
            "    for off in offsets:\n"
            "        engine.post(off)\n"
            "        engine.mark(off)\n"
            "        engine.flush(off)\n"
        )
        assert "OMB310" not in rules_of(src)


class TestSelfHost:
    def test_analysis_package_is_clean(self):
        # The analyzer must not flag itself: src/repro/analysis has no
        # hot-path copies (it never communicates).
        prog = load_program(["src/repro/analysis"])
        findings = run_perf_rules(prog)
        assert findings == []
