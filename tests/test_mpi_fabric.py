"""Unit tests for the scale-out fabric: the node-group topology model,
the spawn-time fd-budget guard, and the lazy connection cache (dial on
first send, LRU eviction with cooperative BYE, transparent re-dial)."""

import threading

import pytest

from repro.mpi.fabric import FdBudget, check_fd_budget, plan_fd_budget
from repro.mpi.fabric.stream import ENV_MAX_CONNS
from repro.mpi.topology import (
    ENV_GROUPS,
    GroupMap,
    TopologyError,
    group_map_from_env,
    parse_groups,
)
from repro.mpi.transport.shm import intra_group_pairs
from repro.mpi.transport.tcp import TcpTransport


class TestGroupMap:
    def test_gxs_form(self):
        gmap = parse_groups("2x4", 8)
        assert gmap.n_groups == 2
        assert gmap.max_group_size == 4
        assert list(gmap.members(0)) == [0, 1, 2, 3]
        assert list(gmap.members(1)) == [4, 5, 6, 7]

    def test_sizes_form_ragged(self):
        gmap = parse_groups("3,3,2", 8)
        assert gmap.n_groups == 3
        assert [len(gmap.members(g)) for g in range(3)] == [3, 3, 2]
        assert gmap.group_of(0) == 0
        assert gmap.group_of(5) == 1
        assert gmap.group_of(7) == 2

    def test_uniform_int_form_with_tail(self):
        gmap = parse_groups("3", 8)
        assert [len(gmap.members(g)) for g in range(gmap.n_groups)] \
            == [3, 3, 2]

    def test_auto_form_covers_all_ranks(self):
        for n in (2, 5, 8, 32):
            gmap = parse_groups("auto", n)
            seen = [r for g in range(gmap.n_groups)
                    for r in gmap.members(g)]
            assert seen == list(range(n))

    def test_leaders_are_first_members(self):
        gmap = parse_groups("3,3,2", 8)
        assert gmap.leaders() == [0, 3, 6]
        assert gmap.leader_of(gmap.group_of(4)) == 3
        assert gmap.leader_of(gmap.group_of(7)) == 6
        assert gmap.is_leader(3) and not gmap.is_leader(4)

    def test_spec_roundtrip(self):
        for spec, n in (("3,3,2", 8), ("2x4", 8), ("auto", 32)):
            gmap = parse_groups(spec, n)
            again = parse_groups(gmap.spec(), n)
            assert isinstance(again, GroupMap)
            assert again.sizes == gmap.sizes

    def test_bad_specs_rejected(self):
        with pytest.raises(TopologyError):
            parse_groups("3x3", 8)  # 9 != 8
        with pytest.raises(TopologyError):
            parse_groups("2,2", 8)  # covers only 4
        with pytest.raises(TopologyError):
            parse_groups("0,8", 8)  # empty group
        with pytest.raises(TopologyError):
            parse_groups("banana", 8)

    def test_group_map_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_GROUPS, raising=False)
        assert group_map_from_env(8) is None
        monkeypatch.setenv(ENV_GROUPS, "2x4")
        gmap = group_map_from_env(8)
        assert gmap is not None and gmap.n_groups == 2

    def test_intra_group_pairs(self):
        gmap = parse_groups("2,2", 4)
        pairs = set(intra_group_pairs(gmap))
        assert pairs == {(0, 1), (1, 0), (2, 3), (3, 2)}


class TestFdBudget:
    def test_flat_stream_budget_is_linear(self):
        b = plan_fd_budget(32, "tcp")
        assert b.per_rank_fds == 1 + 31 + 64
        assert b.n_groups is None

    def test_grouped_stream_budget_is_group_plus_groups(self):
        gmap = parse_groups("4x8", 32)
        b = plan_fd_budget(32, "tcp", gmap)
        assert b.per_rank_fds == 1 + (8 - 1) + (4 - 1) + 64
        assert b.n_groups == 4 and b.max_group_size == 8

    def test_grouping_shrinks_the_budget(self):
        flat = plan_fd_budget(64, "shm")
        grouped = plan_fd_budget(64, "shm", parse_groups("8x8", 64))
        assert grouped.per_rank_fds < flat.per_rank_fds
        assert grouped.launcher_fds < flat.launcher_fds

    def test_check_passes_under_generous_limit(self):
        b = check_fd_budget(8, "uds", soft_limit=4096)
        assert isinstance(b, FdBudget)

    def test_check_passes_when_limit_unknowable(self):
        assert check_fd_budget(10_000, "tcp", soft_limit=None) \
            .world_size == 10_000 or True  # limit probed; may still fit

    def test_check_fails_fast_with_actionable_message(self):
        with pytest.raises(RuntimeError) as exc:
            check_fd_budget(512, "tcp", soft_limit=256)
        msg = str(exc.value)
        assert "RLIMIT_NOFILE" in msg
        assert "ulimit -n" in msg
        assert "--groups" in msg

    def test_grouping_is_the_advertised_remedy(self):
        # The exact topology the error message recommends must fit.
        gmap = parse_groups("auto", 512)
        check_fd_budget(512, "tcp", gmap, soft_limit=256)


def _tcp_world(n):
    """N in-process TcpTransport ranks sharing a port map."""
    from repro.mpi.comm import Comm, Endpoint
    from repro.mpi.group import Group

    socks = [TcpTransport.bind_ephemeral() for _ in range(n)]
    port_map = {r: s.getsockname()[1] for r, s in enumerate(socks)}
    transports = [
        TcpTransport(r, n, socks[r], port_map) for r in range(n)
    ]
    for t in transports:
        t.establish_mesh()
    endpoints = [Endpoint(t) for t in transports]
    g = Group(list(range(n)))
    comms = [Comm(e, g) for e in endpoints]
    return transports, endpoints, comms


def _recv_in_thread(comm, src, tag, size):
    result = {}

    def run():
        result["data"], _ = comm.recv_bytes(src, tag, size)

    th = threading.Thread(target=run, daemon=True)
    th.start()
    return th, result


def _wait_for(pred, timeout=5.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.01)
    return pred()


class TestLazyStreamFabric:
    def test_mesh_establish_opens_nothing(self):
        transports, endpoints, _ = _tcp_world(3)
        try:
            for t in transports:
                assert t.connected_peers() == []
                assert t.connection_stats()["dials"] == 0
        finally:
            for e in endpoints:
                e.close()

    def test_first_send_dials_exactly_once(self):
        transports, endpoints, comms = _tcp_world(2)
        try:
            th, result = _recv_in_thread(comms[1], 0, 7, 64)
            comms[0].send_bytes(b"lazy", 1, 7)
            comms[0].send_bytes(b"lazy2", 1, 8)
            th.join(10)
            assert result["data"] == b"lazy"
            stats = transports[0].connection_stats()
            assert stats["dials"] == 1  # second send reused the channel
            assert transports[0].connected_peers() == [1]
            # The receiver sees the accepted channel as connected too.
            assert _wait_for(
                lambda: transports[1].connection_stats()["accepts"] == 1
            )
        finally:
            for e in endpoints:
                e.close()

    def test_ensure_peer_preconnects(self):
        transports, endpoints, _ = _tcp_world(2)
        try:
            transports[0].ensure_peer(1)
            assert _wait_for(lambda: transports[0].connected_peers() == [1])
            assert transports[0].connection_stats()["dials"] == 1
        finally:
            for e in endpoints:
                e.close()

    def test_lru_eviction_and_transparent_redial(self, monkeypatch):
        # No receives are posted until the end: a posted receive
        # ensure_peer()s a dial-back channel to the sender, which would
        # muddy rank 0's open-channel accounting.  Unposted sends just
        # land in the receivers' unexpected queues.
        monkeypatch.setenv(ENV_MAX_CONNS, "1")
        transports, endpoints, comms = _tcp_world(3)
        try:
            comms[0].send_bytes(b"one", 1, 1)
            assert transports[0].connection_stats()["dials"] == 1

            # Second peer exceeds the one-channel budget: the LRU
            # channel (to rank 1) must be evicted via BYE.  The BYE
            # handshake is cooperative, so the evicted channel drains
            # and closes asynchronously.
            comms[0].send_bytes(b"two", 2, 2)
            assert _wait_for(
                lambda: transports[0].connection_stats()["evictions"] >= 1
            ), transports[0].connection_stats()
            assert _wait_for(
                lambda: transports[0].connection_stats()["open_peers"] <= 1
            ), transports[0].connection_stats()

            # Sending to the evicted peer again re-dials transparently.
            comms[0].send_bytes(b"three", 1, 3)
            assert _wait_for(
                lambda: transports[0].connection_stats()["dials"] >= 3
            ), transports[0].connection_stats()

            # Nothing was lost across eviction and re-dial.
            for comm, src, tag, expect in (
                (comms[1], 0, 1, b"one"),
                (comms[2], 0, 2, b"two"),
                (comms[1], 0, 3, b"three"),
            ):
                th, res = _recv_in_thread(comm, src, tag, 64)
                th.join(10)
                assert res.get("data") == expect
        finally:
            for e in endpoints:
                e.close()

    def test_stats_track_peaks(self):
        transports, endpoints, comms = _tcp_world(3)
        try:
            for dest, tag in ((1, 1), (2, 2)):
                th, res = _recv_in_thread(comms[dest], 0, tag, 64)
                comms[0].send_bytes(b"x", dest, tag)
                th.join(10)
                assert res["data"] == b"x"
            stats = transports[0].connection_stats()
            assert stats["peak_peers"] == 2
            assert stats["open_peers"] == 2
        finally:
            for e in endpoints:
                e.close()
