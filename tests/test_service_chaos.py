"""Chaos tests: the service survives a rank death and keeps serving.

A seeded :class:`~repro.faults.FaultPlan` crashes one pool rank mid-job
(deterministically — the crash triggers on that rank's N-th send op).
The contract under test is the tentpole claim: the single warm pool

* reports the death (DEGRADED state, failed rank visible in STATUS),
* fails-or-retries the victim job per policy,
* completes at least three subsequently submitted jobs on the shrunken
  rank set, and
* exports the crash, the shrink, and per-job outcomes through telemetry.
"""

import json

import pytest

from repro.faults import CrashSpec, FaultPlan
from repro.service import BenchmarkService, JobSpec, ServiceClient, ServiceConfig
from repro.service.protocol import DONE, FAILED
from repro.service.server import DEGRADED

FAST = {"min_size": 1, "max_size": 16, "iterations": 3, "warmup": 1}

#: Rank 2 dies on its 3rd data send.  2-rank jobs run on free ranks
#: {0, 1}, so the crash fires exactly when a >=3-rank job (or two
#: concurrent 2-rank jobs) first pulls rank 2 into service.
CRASH_PLAN = FaultPlan(seed=11, crash=CrashSpec(rank=2, at_op=3,
                                                mode="raise"))


@pytest.fixture
def chaos_service(tmp_path):
    svc = BenchmarkService(
        pool_size=4,
        socket_path=str(tmp_path / "chaos.sock"),
        config=ServiceConfig(default_deadline_s=60.0, retry_max=1,
                             retry_backoff_ms=10.0),
        fault_plan=CRASH_PLAN,
        metrics_out=str(tmp_path / "telemetry.json"),
    )
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def client(chaos_service):
    with ServiceClient(socket_path=chaos_service.address,
                       timeout=30.0) as c:
        yield c


class TestDegradedServing:
    def test_crash_retry_and_degraded_mode(self, chaos_service, client,
                                           tmp_path):
        # Jobs on ranks {0, 1} are untouched by the plan.
        pre = client.run(JobSpec(benchmark="osu_latency", ranks=2,
                                 options=FAST), timeout=60)
        assert pre["state"] == DONE

        # A 3-rank job pulls in rank 2 -> deterministic mid-job crash.
        victim = client.run(JobSpec(benchmark="osu_allreduce", ranks=3,
                                    options={**FAST, "min_size": 4}),
                            timeout=90)
        # retry_max=1 and 3 ranks still live: the retry must succeed.
        assert victim["state"] == DONE
        assert victim["attempts"] == 2

        status = client.status()
        assert status["state"] == DEGRADED
        assert status["pool"]["live"] == 3
        assert status["pool"]["failed_ranks"] == [2]

        # >= 3 subsequent jobs complete on the shrunken pool.
        for _ in range(3):
            job = client.run(JobSpec(benchmark="osu_latency", ranks=2,
                                     options=FAST), timeout=60)
            assert job["state"] == DONE

        counters = client.status()["metrics"]["counters"]
        assert counters["service.pool.rank_deaths"] == 1
        assert counters["service.jobs.retries"] == 1
        assert counters["service.jobs.completed"] >= 5

        # Merged telemetry lands on disk at shutdown with the crash,
        # the shrink, and every job outcome visible.
        chaos_service.stop()
        doc = json.loads((tmp_path / "telemetry.json").read_text())
        svc_counters = doc["service"]["counters"]
        assert svc_counters["service.pool.rank_deaths"] == 1
        assert svc_counters["service.jobs.retries"] == 1
        assert doc["service"]["gauges"]["service.pool.live"] == 3
        assert doc["service"]["gauges"]["service.degraded"] == 1
        states = [job["state"] for job in doc["jobs"].values()]
        assert states.count(DONE) >= 5

    def test_job_too_big_for_shrunken_pool_fails_cleanly(self, client):
        victim = client.run(JobSpec(benchmark="osu_allreduce", ranks=4,
                                    options={**FAST, "min_size": 4}),
                            timeout=90)
        # With only 3 survivors, a 4-rank job cannot be retried.
        assert victim["state"] == FAILED
        assert "pool shrank below job size" in victim["error"]
        # New 4-rank submissions are now rejected at admission...
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError, match="only 3 are live"):
            client.submit(JobSpec(benchmark="osu_allreduce", ranks=4))
        # ...while right-sized jobs keep flowing.
        for _ in range(3):
            job = client.run(JobSpec(benchmark="osu_latency", ranks=2,
                                     options=FAST), timeout=60)
            assert job["state"] == DONE

    def test_retry_cap_exhaustion(self, tmp_path):
        # Both retries land on a pool whose rank 1 dies immediately,
        # then rank 2 on the retry: with retry_max=1 the second death
        # exhausts the budget.
        plan = FaultPlan(seed=5, crash=CrashSpec(rank=1, at_op=1,
                                                 mode="raise"))
        svc = BenchmarkService(
            pool_size=3,
            socket_path=str(tmp_path / "cap.sock"),
            config=ServiceConfig(default_deadline_s=60.0, retry_max=0,
                                 retry_backoff_ms=10.0),
            fault_plan=plan,
        )
        svc.start()
        try:
            with ServiceClient(socket_path=svc.address, timeout=30.0) as c:
                victim = c.run(JobSpec(benchmark="osu_latency", ranks=2,
                                       options=FAST), timeout=60)
                assert victim["state"] == FAILED
                assert victim["attempts"] == 1
                assert "rank failure" in victim["error"]
                # Survivors {0, 2} still serve.
                job = c.run(JobSpec(benchmark="osu_latency", ranks=2,
                                    options=FAST), timeout=60)
                assert job["state"] == DONE
        finally:
            svc.stop()
