"""Cartesian topology tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.constants import PROC_NULL
from repro.mpi.topology import (
    CartComm,
    CartTopology,
    TopologyError,
    dims_create,
)
from repro.mpi.world import run_on_threads


class TestDimsCreate:
    @pytest.mark.parametrize("nnodes,ndims,expected", [
        (4, 2, [2, 2]),
        (6, 2, [3, 2]),
        (8, 3, [2, 2, 2]),
        (12, 2, [4, 3]),
        (7, 2, [7, 1]),
        (1, 3, [1, 1, 1]),
        (16, 2, [4, 4]),
    ])
    def test_balanced_factorization(self, nnodes, ndims, expected):
        assert dims_create(nnodes, ndims) == expected

    def test_invalid_args(self):
        with pytest.raises(TopologyError):
            dims_create(0, 2)
        with pytest.raises(TopologyError):
            dims_create(4, 0)

    @given(st.integers(1, 512), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_product_preserved(self, nnodes, ndims):
        dims = dims_create(nnodes, ndims)
        assert len(dims) == ndims
        assert np.prod(dims) == nnodes
        assert dims == sorted(dims, reverse=True)


class TestCartTopology:
    def test_coords_rank_roundtrip(self):
        topo = CartTopology((3, 4), (False, False))
        for r in range(12):
            assert topo.rank(topo.coords(r)) == r

    def test_row_major_layout(self):
        topo = CartTopology((2, 3), (False, False))
        assert topo.coords(0) == (0, 0)
        assert topo.coords(1) == (0, 1)
        assert topo.coords(3) == (1, 0)
        assert topo.rank((1, 2)) == 5

    def test_shift_interior(self):
        topo = CartTopology((3, 3), (False, False))
        src, dst = topo.shift(4, 0, 1)  # center, row direction
        assert (src, dst) == (1, 7)
        src, dst = topo.shift(4, 1, 1)  # column direction
        assert (src, dst) == (3, 5)

    def test_shift_edge_nonperiodic(self):
        topo = CartTopology((3,), (False,))
        src, dst = topo.shift(0, 0, 1)
        assert src == PROC_NULL and dst == 1
        src, dst = topo.shift(2, 0, 1)
        assert src == 1 and dst == PROC_NULL

    def test_shift_periodic_wraps(self):
        topo = CartTopology((4,), (True,))
        assert topo.shift(0, 0, 1) == (3, 1)
        assert topo.shift(3, 0, 1) == (2, 0)

    def test_periodic_rank_wraps(self):
        topo = CartTopology((4,), (True,))
        assert topo.rank((-1,)) == 3
        assert topo.rank((5,)) == 1

    def test_nonperiodic_out_of_range_rejected(self):
        topo = CartTopology((4,), (False,))
        with pytest.raises(TopologyError, match="outside"):
            topo.rank((-1,))

    def test_bad_direction(self):
        topo = CartTopology((2, 2), (False, False))
        with pytest.raises(TopologyError, match="direction"):
            topo.shift(0, 5)

    def test_invalid_construction(self):
        with pytest.raises(TopologyError):
            CartTopology((), ())
        with pytest.raises(TopologyError):
            CartTopology((0,), (False,))
        with pytest.raises(TopologyError):
            CartTopology((2,), (False, True))

    @given(st.integers(1, 5), st.integers(1, 5), st.booleans(),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_2d(self, d0, d1, p0, p1):
        topo = CartTopology((d0, d1), (p0, p1))
        for r in range(topo.size):
            assert topo.rank(topo.coords(r)) == r


class TestCartComm:
    def test_grid_over_full_communicator(self):
        def work(comm):
            cart = CartComm(comm, [2, 2])
            assert cart.comm is not None
            coords = cart.Get_coords()
            assert cart.Get_cart_rank(coords) == cart.rank
        run_on_threads(4, work)

    def test_excess_ranks_excluded(self):
        def work(comm):
            cart = CartComm(comm, [2])
            if comm.rank < 2:
                assert cart.comm is not None
            else:
                assert cart.comm is None
                with pytest.raises(TopologyError, match="not part"):
                    cart.Get_coords()
        run_on_threads(3, work)

    def test_grid_too_large_rejected(self):
        def work(comm):
            with pytest.raises(TopologyError, match="exceeds"):
                CartComm(comm, [4, 4])
        run_on_threads(2, work)

    def test_ring_neighbor_exchange(self):
        def work(comm):
            cart = CartComm(comm, [comm.size], periods=[True])
            got = cart.neighbor_sendrecv(
                bytes([comm.rank]), 0, 1, tag=3, max_bytes=1
            )
            assert got == bytes([(comm.rank - 1) % comm.size])
        run_on_threads(4, work)

    def test_nonperiodic_edge_receives_nothing(self):
        def work(comm):
            cart = CartComm(comm, [comm.size], periods=[False])
            got = cart.neighbor_sendrecv(
                bytes([comm.rank]), 0, 1, tag=4, max_bytes=1
            )
            if comm.rank == 0:
                assert got == b""  # no neighbour above
            else:
                assert got == bytes([comm.rank - 1])
        run_on_threads(3, work)


class TestHeatDiffusionIntegration:
    def test_example_converges_and_is_hotter_near_edge(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "heat_diffusion",
            pathlib.Path(__file__).parent.parent
            / "examples" / "heat_diffusion.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        def work(comm):
            block, iters = mod.solve(comm, n=24, iters=150, tol=1e-4)
            return comm.rank, float(block.mean())

        results = run_on_threads(4, work, timeout=300)
        means = dict(results)
        # 2x2 grid: ranks 0,1 hold the hot top edge.
        assert means[0] > means[2]
        assert means[1] > means[3]
        assert all(0.0 <= m <= 100.0 for m in means.values())
