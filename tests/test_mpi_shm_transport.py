"""Shared-memory ring transport tests."""

import threading

import pytest

from repro.mpi.transport.shm import (
    CTRL_SIZE,
    ShmTransport,
    _Ring,
    create_job_segments,
    destroy_job_segments,
    segment_name,
)


@pytest.fixture
def ring():
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=CTRL_SIZE + 64)
    shm.buf[:CTRL_SIZE] = b"\0" * CTRL_SIZE
    r = _Ring(shm)
    yield r
    r.close()
    shm.unlink()


class TestRing:
    def test_write_read_roundtrip(self, ring):
        stop = threading.Event()
        ring.write(b"hello", stop)
        assert ring.read_available() == b"hello"
        assert ring.read_available() == b""

    def test_multiple_frames_concatenate(self, ring):
        stop = threading.Event()
        ring.write(b"ab", stop)
        ring.write(b"cd", stop)
        assert ring.read_available() == b"abcd"

    def test_wraparound(self, ring):
        stop = threading.Event()
        # Fill and drain repeatedly so head/tail wrap the 64-byte ring.
        for i in range(20):
            payload = bytes([i]) * 40
            ring.write(payload, stop)
            assert ring.read_available() == payload

    def test_oversized_frame_rejected(self, ring):
        from repro.mpi.exceptions import InternalError

        with pytest.raises(InternalError, match="exceeds ring capacity"):
            ring.write(b"x" * 64, threading.Event())

    def test_writer_blocks_until_reader_drains(self, ring):
        stop = threading.Event()
        ring.write(b"a" * 40, stop)
        done = threading.Event()

        def writer():
            ring.write(b"b" * 40, stop)  # must wait for space
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert not done.wait(0.05)
        assert ring.read_available() == b"a" * 40
        assert done.wait(5)
        assert ring.read_available() == b"b" * 40


class TestSegmentsLifecycle:
    def test_create_attach_destroy(self):
        job = "testjob-1"
        segments = create_job_segments(job, 3, capacity=4096)
        try:
            assert len(segments) == 6  # directed pairs of 3 ranks
            names = {s.name for s in segments}
            assert segment_name(job, 0, 1) in names
            assert segment_name(job, 2, 1) in names
        finally:
            destroy_job_segments(segments)

    def test_destroy_idempotent(self):
        segments = create_job_segments("testjob-2", 2, capacity=1024)
        destroy_job_segments(segments)
        destroy_job_segments(segments)  # second call must not raise


class TestShmWorld:
    def test_transport_in_process_pair(self):
        """Two ShmTransports in one process exchange via the rings."""
        from repro.mpi.comm import Comm, Endpoint
        from repro.mpi.group import Group

        job = "testjob-3"
        segments = create_job_segments(job, 2, capacity=1 << 16)
        try:
            t0 = ShmTransport(0, 2, job)
            t1 = ShmTransport(1, 2, job)
            e0, e1 = Endpoint(t0), Endpoint(t1)
            g = Group([0, 1])
            c0 = Comm(e0, g)
            c1 = Comm(e1, g)
            c0.send_bytes(b"over shm" * 100, 1, 5)
            result = {}

            def recv():
                result["data"], _ = c1.recv_bytes(0, 5, 4096)

            th = threading.Thread(target=recv, daemon=True)
            th.start()
            th.join(10)
            assert result["data"] == b"over shm" * 100
            e0.close()
            e1.close()
        finally:
            destroy_job_segments(segments)

    def test_large_message_chunked_through_small_ring(self):
        """Messages bigger than the ring capacity stream through in
        chunks without corruption."""
        from repro.mpi.comm import Comm, Endpoint
        from repro.mpi.group import Group

        job = "testjob-4"
        segments = create_job_segments(job, 2, capacity=4096)
        try:
            t0 = ShmTransport(0, 2, job)
            t1 = ShmTransport(1, 2, job)
            e0, e1 = Endpoint(t0), Endpoint(t1)
            g = Group([0, 1])
            c0, c1 = Comm(e0, g), Comm(e1, g)
            payload = bytes(range(256)) * 256  # 64 KiB >> 4 KiB ring
            result = {}

            def recv():
                result["data"], _ = c1.recv_bytes(0, 1, len(payload))

            th = threading.Thread(target=recv, daemon=True)
            th.start()
            c0.send_bytes(payload, 1, 1)
            th.join(20)
            assert not th.is_alive()
            assert result["data"] == payload
            e0.close()
            e1.close()
        finally:
            destroy_job_segments(segments)


@pytest.mark.slow
class TestShmLauncher:
    def test_multiprocess_job_over_shm(self, tmp_path):
        import textwrap

        script = tmp_path / "job.py"
        script.write_text(textwrap.dedent("""
            import numpy as np
            from repro.mpi import init, ops
            world = init()
            comm = world.comm
            r, p = comm.rank, comm.size
            s = comm.allreduce_array(np.array([float(r + 1)]), ops.SUM)
            assert s[0] == p * (p + 1) / 2
            out = comm.bcast_bytes(b"x" * 200000 if r == 0 else None, 0)
            assert len(out) == 200000
            comm.barrier()
            world.finalize()
        """))
        from repro.mpi.launcher import launch

        # Generous timeout: the polling readers of 3 processes contend
        # hard for this machine's single core under full-suite load.
        assert launch(3, [str(script)], timeout=420, transport="shm") == 0
