"""DES-vs-analytic cross-validation of collective cost models.

Where the analytic formula is exact for the algorithm (barrier, ring
allgather, recursive doubling, pairwise alltoall, binomial bcast on
power-of-two sizes), the discrete-event simulation of the executable
algorithm must match it to floating-point tolerance.
"""

import math

import pytest

from repro.simulator import des_collectives as des
from repro.simulator.collective_cost import (
    GAMMA_US_PER_BYTE,
    allgather_us,
    allreduce_us,
    alltoall_us,
    barrier_us,
    bcast_us,
)
from repro.simulator.engine import simulate_collective
from repro.simulator.loggp import NetworkModel

NET = NetworkModel(alpha_us=1.3, beta_us_per_byte=2e-4)


class TestBarrier:
    @pytest.mark.parametrize("p", (2, 3, 4, 5, 8, 16))
    def test_matches_analytic(self, p):
        sim = simulate_collective(des.make("barrier", 0), p, NET)
        assert sim == pytest.approx(barrier_us(NET, p))


class TestBcast:
    @pytest.mark.parametrize("p", (2, 4, 8, 16))
    @pytest.mark.parametrize("n", (64, 4096))
    def test_binomial_pow2_matches(self, p, n):
        sim = simulate_collective(des.make("bcast", n), p, NET)
        assert sim == pytest.approx(bcast_us(NET, p, n))

    @pytest.mark.parametrize("p", (3, 5, 7))
    def test_non_pow2_within_analytic_bound(self, p):
        """For non-powers of two, the tree's critical path can be one
        round shorter than ceil(log2 p)*t(n); analytic is an upper bound."""
        n = 512
        sim = simulate_collective(des.make("bcast", n), p, NET)
        analytic = bcast_us(NET, p, n)
        assert sim <= analytic + 1e-9
        assert sim >= analytic * 0.5


class TestAllgatherRing:
    @pytest.mark.parametrize("p", (2, 3, 5, 8))
    @pytest.mark.parametrize("n", (128, 65536))
    def test_matches_analytic_ring(self, p, n):
        sim = simulate_collective(des.make("allgather_ring", n), p, NET)
        assert sim == pytest.approx((p - 1) * NET.latency_us(n))

    def test_selector_form_matches_large(self):
        # Large blocks route allgather_us to the ring formula.
        p, n = 8, 65536
        assert allgather_us(NET, p, n) == pytest.approx(
            (p - 1) * NET.latency_us(n)
        )


class TestAllreduce:
    @pytest.mark.parametrize("p", (2, 4, 8, 16))
    def test_recursive_doubling_matches(self, p):
        n = 1024
        sim = simulate_collective(
            des.make("allreduce_rd", n, gamma_us_per_byte=GAMMA_US_PER_BYTE),
            p, NET,
        )
        assert sim == pytest.approx(allreduce_us(NET, p, n))

    def test_rd_rejects_non_pow2(self):
        with pytest.raises(ValueError, match="power-of-two"):
            simulate_collective(des.make("allreduce_rd", 8), 5, NET)

    @pytest.mark.parametrize("p", (4, 8))
    def test_ring_matches_for_large(self, p):
        n = 1 << 20
        sim = simulate_collective(
            des.make(
                "allreduce_ring", n, gamma_us_per_byte=GAMMA_US_PER_BYTE
            ),
            p, NET,
        )
        assert sim == pytest.approx(allreduce_us(NET, p, n), rel=0.01)


class TestAlltoall:
    @pytest.mark.parametrize("p", (2, 3, 4, 8))
    def test_pairwise_matches(self, p):
        n = 2048
        sim = simulate_collective(des.make("alltoall_pairwise", n), p, NET)
        assert sim == pytest.approx((p - 1) * NET.latency_us(n))

    def test_analytic_selector_uses_pairwise_for_large(self):
        p, n = 8, 2048
        assert alltoall_us(NET, p, n) == pytest.approx(
            (p - 1) * NET.latency_us(n)
        )


class TestGather:
    @pytest.mark.parametrize("p", (2, 4, 8))
    def test_binomial_gather_log_rounds(self, p):
        n = 256
        sim = simulate_collective(des.make("gather_binomial", n), p, NET)
        # Root's critical path: receives log2(p) subtree messages of
        # doubling size, serialized at the root.
        expect = sum(
            NET.latency_us(n * 2 ** k) for k in range(int(math.log2(p)))
        )
        # Subtree sends overlap, so the DES can only be faster than the
        # fully-serialized bound and at least the largest single message.
        assert sim <= expect + 1e-9
        assert sim >= NET.latency_us(n * p // 2)


class TestPythonOverheadKnob:
    def test_per_send_overhead_increases_collective_time(self):
        p, n = 8, 1024
        base = simulate_collective(des.make("allgather_ring", n), p, NET)
        slow = simulate_collective(
            des.make("allgather_ring", n), p, NET,
            per_send_overhead_us=0.5,
        )
        assert slow > base
        # Ring: p-1 serialized steps, each inflated by the send overhead.
        assert slow == pytest.approx(base + (p - 1) * 0.5, rel=0.01)
