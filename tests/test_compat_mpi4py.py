"""mpi4py source-compatibility layer tests."""

import textwrap

import numpy as np
import pytest


@pytest.fixture
def MPI(monkeypatch):
    """Fresh compat module with a singleton world, finalized after."""
    from repro.mpi.world import ENV_RANK

    monkeypatch.delenv(ENV_RANK, raising=False)
    from repro.compat import MPI as mpi_mod

    yield mpi_mod
    mpi_mod.Finalize()


class TestConstantsAndNames:
    def test_wildcards(self, MPI):
        assert MPI.ANY_SOURCE == -1
        assert MPI.ANY_TAG == -1

    def test_ops(self, MPI):
        assert MPI.SUM.Get_name() if hasattr(MPI.SUM, "Get_name") else True
        assert MPI.SUM.name == "MPI_SUM"
        assert MPI.MAXLOC.name == "MPI_MAXLOC"

    def test_datatypes(self, MPI):
        assert MPI.DOUBLE.Get_size() == 8
        assert MPI.INT.Get_size() == 4

    def test_version(self, MPI):
        major, _minor = MPI.Get_version()
        assert major == 3

    def test_wtime_monotonic(self, MPI):
        a = MPI.Wtime()
        b = MPI.Wtime()
        assert b >= a


class TestLazyWorld:
    def test_not_initialized_until_touched(self, MPI):
        # Finalize first in case a previous test touched it.
        MPI.Finalize()
        assert not MPI.Is_initialized()
        assert MPI.COMM_WORLD.Get_size() == 1
        assert MPI.Is_initialized()

    def test_singleton_rank(self, MPI):
        assert MPI.COMM_WORLD.Get_rank() == 0
        assert MPI.COMM_WORLD.rank == 0

    def test_query_thread_default_multiple(self, MPI):
        assert MPI.Query_thread() == MPI.THREAD_MULTIPLE

    def test_finalize_idempotent(self, MPI):
        MPI.COMM_WORLD.Get_size()
        MPI.Finalize()
        MPI.Finalize()
        assert not MPI.Is_initialized()

    def test_singleton_collectives(self, MPI):
        comm = MPI.COMM_WORLD
        assert comm.bcast({"x": 1}, root=0) == {"x": 1}
        out = np.zeros(3)
        comm.Allreduce(np.ones(3), out, MPI.SUM)
        assert np.allclose(out, 1.0)


_TUTORIAL = textwrap.dedent("""
    # The mpi4py tutorial's first snippets, verbatim apart from the import.
    from repro.compat import MPI
    import numpy

    comm = MPI.COMM_WORLD
    rank = comm.Get_rank()

    if rank == 0:
        data = {'a': 7, 'b': 3.14}
        comm.send(data, dest=1, tag=11)
    elif rank == 1:
        data = comm.recv(source=0, tag=11)
        assert data == {'a': 7, 'b': 3.14}

    if rank == 0:
        data = numpy.arange(1000, dtype='i')
        comm.Send([data, MPI.INT], dest=1, tag=77)
    elif rank == 1:
        data = numpy.empty(1000, dtype='i')
        comm.Recv([data, MPI.INT], source=0, tag=77)
        assert data[999] == 999

    value = comm.allreduce(rank + 1)
    assert value == 3
    MPI.Finalize()
""")


@pytest.mark.slow
class TestTutorialUnderLauncher:
    def test_mpi4py_tutorial_runs_verbatim(self, tmp_path):
        script = tmp_path / "tutorial.py"
        script.write_text(_TUTORIAL)
        from repro.mpi.launcher import launch

        assert launch(2, [str(script)], timeout=120) == 0
