"""Persistent requests and the MPIPoolExecutor."""

import numpy as np
import pytest

from repro.mpi.exceptions import MPIError, RequestError
from repro.mpi.futures import MPIPoolExecutor
from repro.mpi.persistent import (
    recv_init,
    send_init,
    startall,
    waitall_persistent,
)
from repro.mpi.world import run_on_threads


class TestPersistent:
    def test_restartable_ping_pong(self):
        def work(comm):
            sbuf = bytearray(8)
            rbuf = bytearray(8)
            if comm.rank == 0:
                preq = send_init(comm, sbuf, 1, 5)
                for i in range(10):
                    sbuf[:] = bytes([i]) * 8
                    preq.Start()
                    preq.Wait()
            elif comm.rank == 1:
                preq = recv_init(comm, rbuf, 0, 5)
                for i in range(10):
                    preq.Start()
                    preq.Wait()
                    assert rbuf == bytes([i]) * 8
        run_on_threads(2, work)

    def test_buffer_snapshot_at_start(self):
        """Send captures the buffer at Start(), not at creation."""
        def work(comm):
            buf = bytearray(b"old!")
            if comm.rank == 0:
                preq = send_init(comm, buf, 1, 1)
                buf[:] = b"new!"
                preq.Start()
                preq.Wait()
            elif comm.rank == 1:
                data, _ = comm.recv_bytes(0, 1, 4)
                assert data == b"new!"
        run_on_threads(2, work)

    def test_wait_before_start_rejected(self):
        def work(comm):
            preq = send_init(comm, bytearray(2), 0, 0)
            with pytest.raises(RequestError, match="before Start"):
                preq.Wait()
        run_on_threads(1, work)

    def test_readonly_recv_buffer_rejected(self):
        def work(comm):
            with pytest.raises(RequestError, match="writable"):
                recv_init(comm, b"ro", 0, 0)
        run_on_threads(1, work)

    def test_startall_waitall(self):
        def work(comm):
            if comm.rank == 0:
                reqs = [
                    send_init(comm, bytearray([i]), 1, i) for i in range(4)
                ]
                startall(reqs)
                waitall_persistent(reqs)
            elif comm.rank == 1:
                bufs = [bytearray(1) for _ in range(4)]
                reqs = [
                    recv_init(comm, bufs[i], 0, i) for i in range(4)
                ]
                startall(reqs)
                waitall_persistent(reqs)
                assert [b[0] for b in bufs] == [0, 1, 2, 3]
        run_on_threads(2, work)


def _square(x):
    return x * x


def _fail(_x):
    raise RuntimeError("worker task exploded")


class TestPoolExecutor:
    def test_submit_and_result(self):
        def work(comm):
            with MPIPoolExecutor(comm) as pool:
                if pool is not None:
                    futs = [pool.submit(_square, i) for i in range(10)]
                    assert [f.result(30) for f in futs] == [
                        i * i for i in range(10)
                    ]
        run_on_threads(3, work)

    def test_map_preserves_order(self):
        def work(comm):
            with MPIPoolExecutor(comm) as pool:
                if pool is not None:
                    assert pool.map(_square, range(8)) == [
                        i * i for i in range(8)
                    ]
        run_on_threads(4, work)

    def test_worker_exception_propagates(self):
        def work(comm):
            with MPIPoolExecutor(comm) as pool:
                if pool is not None:
                    fut = pool.submit(_fail, 1)
                    with pytest.raises(MPIError, match="exploded"):
                        fut.result(30)
        run_on_threads(2, work)

    def test_numpy_payloads(self):
        def work(comm):
            with MPIPoolExecutor(comm) as pool:
                if pool is not None:
                    fut = pool.submit(np.sum, np.arange(100))
                    assert fut.result(30) == 4950
        run_on_threads(2, work)

    def test_needs_two_ranks(self):
        def work(comm):
            with pytest.raises(MPIError, match="at least 2"):
                MPIPoolExecutor(comm)
        run_on_threads(1, work)

    def test_more_tasks_than_workers(self):
        def work(comm):
            with MPIPoolExecutor(comm) as pool:
                if pool is not None:
                    assert pool.map(_square, range(50)) == [
                        i * i for i in range(50)
                    ]
        run_on_threads(3, work)
