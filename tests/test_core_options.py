"""Options validation and CLI argument parsing."""

import argparse

import pytest

from repro.core import options as opt_mod
from repro.core.options import Options


class TestValidation:
    def test_defaults_valid(self):
        o = Options()
        assert o.device == "cpu" and o.buffer == "numpy"

    def test_gpu_buffer_on_cpu_rejected(self):
        with pytest.raises(ValueError, match="requires device='gpu'"):
            Options(device="cpu", buffer="cupy")

    def test_cpu_buffer_on_gpu_rejected(self):
        with pytest.raises(ValueError, match="requires device='cpu'"):
            Options(device="gpu", buffer="numpy")

    def test_gpu_combinations_valid(self):
        for buf in ("cupy", "pycuda", "numba"):
            assert Options(device="gpu", buffer=buf).buffer == buf

    def test_bad_device(self):
        with pytest.raises(ValueError, match="device"):
            Options(device="tpu")

    def test_bad_api(self):
        with pytest.raises(ValueError, match="api"):
            Options(api="grpc")

    def test_bad_size_range(self):
        with pytest.raises(ValueError, match="size range"):
            Options(min_size=100, max_size=10)

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            Options(iterations=0)
        with pytest.raises(ValueError):
            Options(warmup=-1)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            Options(window_size=0)


class TestIterationTrimming:
    def test_small_size_uses_full_iterations(self):
        o = Options(iterations=100, warmup=10)
        assert o.iterations_for(1024) == (100, 10)

    def test_large_size_trims(self):
        o = Options(iterations=100, warmup=10)
        iters, warm = o.iterations_for(o.large_message_size + 1)
        assert iters < 100 and warm < 10

    def test_threshold_boundary_inclusive(self):
        o = Options()
        assert o.iterations_for(o.large_message_size)[0] == o.iterations


class TestFunctionalUpdate:
    def test_with_returns_new(self):
        o = Options()
        o2 = o.with_(api="pickle")
        assert o.api == "buffer" and o2.api == "pickle"

    def test_with_validates(self):
        with pytest.raises(ValueError):
            Options().with_(device="gpu")  # numpy buffer invalid on gpu


class TestArgParsing:
    def _parse(self, argv):
        parser = argparse.ArgumentParser()
        opt_mod.add_arguments(parser)
        return opt_mod.from_args(parser.parse_args(argv))

    def test_defaults(self):
        o = self._parse([])
        assert o.buffer == "numpy" and o.device == "cpu"

    def test_gpu_default_buffer(self):
        o = self._parse(["-d", "gpu"])
        assert o.buffer == "cupy"

    def test_message_size_range(self):
        o = self._parse(["-m", "16:4096"])
        assert o.min_size == 16 and o.max_size == 4096

    def test_message_size_single(self):
        o = self._parse(["-m", "128"])
        assert o.min_size == 128 and o.max_size == 128

    def test_iterations_warmup_window(self):
        o = self._parse(["-i", "7", "-x", "2", "-W", "16"])
        assert (o.iterations, o.warmup, o.window_size) == (7, 2, 16)

    def test_flags(self):
        o = self._parse(["-c", "-f", "--api", "pickle"])
        assert o.validate and o.full_stats and o.api == "pickle"
