"""Results-store and regression-gate tests."""

import json

import pytest

from repro.campaign.gate import (
    DEFAULT_THRESHOLD, check, load_baseline,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CSV_COLUMNS, ResultsStore


def cell():
    return CampaignSpec.from_document({
        "name": "t",
        "sweep": [{"benchmarks": ["osu_latency"], "transports": ["threads"],
                   "ranks": [2], "sizes": ["1:16"]}],
    }).cells[0]


def table(metric="latency_us", rows=None):
    return {
        "benchmark": "osu_latency",
        "metric": metric,
        "rows": rows or [
            {"size": 1, "value": 2.0, "min": 1.5, "max": 2.5,
             "iterations": 10},
            {"size": 16, "value": 3.0, "min": 2.5, "max": 3.5,
             "iterations": 10},
        ],
    }


class TestStore:
    def test_append_load_round_trip(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        record = store.append(cell(), table(), attempt=2, backend="cold",
                              elapsed_s=0.5)
        loaded = store.load()
        assert loaded == [record]
        assert loaded[0]["schema"] == "ombpy-campaign-results/1"
        assert loaded[0]["attempt"] == 2
        assert loaded[0]["transport"] == "threads"
        assert store.completed_cells() == {cell().cell_id}

    def test_torn_tail_dropped(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        store.append(cell(), table(), attempt=1, backend="cold",
                     elapsed_s=0.1)
        with open(store.results_path, "a", encoding="utf-8") as fh:
            fh.write('{"cell": "half')
        assert len(store.load()) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        with open(store.results_path, "w", encoding="utf-8") as fh:
            fh.write("garbage\n")
            fh.write(json.dumps({"cell": "a"}) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            store.load()

    def test_csv_one_row_per_size(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        store.append(cell(), table(), attempt=1, backend="warm",
                     elapsed_s=0.1)
        lines = store.to_csv().strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == 3
        assert lines[1].startswith(f"{cell().cell_id},osu_latency,threads,2")
        assert ",1,2.0," in lines[1] and ",16,3.0," in lines[2]

    def test_manifest_atomic_round_trip(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        doc = store.write_manifest(
            name="t", fingerprint="f00", status="degraded",
            completed=["b", "a"],
            missed=[{"cell": "c", "reason": "quarantined"}],
            skipped=["d needs 4 ranks"],
        )
        assert store.read_manifest() == doc
        assert doc["completed"] == ["a", "b"]      # sorted
        assert doc["cells"] == 3
        assert not (tmp_path / "MANIFEST.json.tmp").exists()

    def test_missing_files(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        assert store.load() == []
        assert store.read_manifest() is None


def record(benchmark="osu_latency", transport="threads", ranks=2,
           metric="latency_us", rows=None):
    return {
        "cell": f"{benchmark}.{transport}.n{ranks}.x",
        "benchmark": benchmark, "transport": transport, "ranks": ranks,
        "metric": metric,
        "rows": rows or [{"size": 1, "value": 2.0}, {"size": 16,
                                                     "value": 3.0}],
    }


class TestGate:
    def test_within_threshold_passes(self):
        baseline = {"osu_latency": {1: 2.0, 16: 3.0}}
        result = check([record()], baseline)
        assert result.ok and result.checked == 1

    def test_latency_slowdown_fails(self):
        baseline = {"osu_latency": {1: 1.0, 16: 1.0}}
        result = check([record()], baseline, threshold=1.5)
        assert not result.ok
        regression = result.regressions[0]
        assert regression.slowdown == pytest.approx(2.5)    # mean(2.0, 3.0)
        assert regression.worst_size == 16
        assert "REGRESSION" in result.format()

    def test_bandwidth_direction_inverted(self):
        # Bandwidth *dropping* is the regression; values above baseline
        # must pass.
        rows = [{"size": 1, "value": 100.0}]
        baseline = {"osu_bw": {1: 300.0}}
        bad = check([record(benchmark="osu_bw", metric="bandwidth_mbs",
                            rows=rows)], baseline, threshold=1.5)
        assert not bad.ok and bad.regressions[0].slowdown == 3.0
        good = check([record(benchmark="osu_bw", metric="bandwidth_mbs",
                             rows=[{"size": 1, "value": 600.0}])],
                     baseline, threshold=1.5)
        assert good.ok

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError, match="threshold"):
            check([], {}, threshold=1.0)

    def test_absent_series_and_sizes_skipped_not_failed(self):
        baseline = {"osu_latency": {512: 1.0}}      # no common size
        result = check([record(), record(benchmark="osu_allreduce")],
                       baseline)
        assert result.ok and result.checked == 0
        assert len(result.skipped) == 2

    def test_composite_key_preferred_over_bare_benchmark(self):
        baseline = {
            "osu_latency": {1: 0.001},                  # would regress
            "osu_latency/threads/n2": {1: 2.0},         # exact match: fine
        }
        result = check([record(rows=[{"size": 1, "value": 2.0}])],
                       baseline)
        assert result.ok and result.checked == 1

    def test_load_snapshot_baseline(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        path.write_text(json.dumps({
            "results": {"osu_latency": {"sizes": [1, 16],
                                        "off": [2.0, 3.0]}}
        }))
        assert load_baseline(str(path)) == {"osu_latency": {1: 2.0,
                                                            16: 3.0}}

    def test_load_campaign_baseline(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        store.append(cell(), table(), attempt=1, backend="cold",
                     elapsed_s=0.1)
        baseline = load_baseline(store.results_path)
        assert baseline == {"osu_latency/threads/n2": {1: 2.0, 16: 3.0}}
        # A fresh identical run gates cleanly against it.
        assert check(store.load(), baseline,
                     threshold=DEFAULT_THRESHOLD).ok
