"""Unit tests for the message-matching engine (no transport involved)."""

import threading

import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.exceptions import TruncationError
from repro.mpi.matching import Envelope, MatchingEngine
from repro.mpi.status import Status


def env(src=0, tag=1, nbytes=0, ctx=0, dest=0):
    return Envelope(ctx, src, dest, tag, nbytes)


class TestBasicMatching:
    def test_posted_then_delivered(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 0, 1, 100)
        assert not t.done()
        eng.deliver(env(nbytes=3), b"abc")
        assert t.done()
        assert t.wait() == b"abc"

    def test_delivered_then_posted(self):
        eng = MatchingEngine()
        eng.deliver(env(nbytes=3), b"xyz")
        t = eng.post_recv(0, 0, 1, 100)
        assert t.done()
        assert t.wait() == b"xyz"

    def test_status_filled(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, ANY_SOURCE, ANY_TAG, 100)
        eng.deliver(env(src=3, tag=9, nbytes=2), b"hi")
        t.wait()
        assert t.status.Get_source() == 3
        assert t.status.Get_tag() == 9
        assert t.status.count_bytes == 2


class TestWildcards:
    def test_any_source(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, ANY_SOURCE, 7, 10)
        eng.deliver(env(src=5, tag=7), b"")
        assert t.done()

    def test_any_tag(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 2, ANY_TAG, 10)
        eng.deliver(env(src=2, tag=42), b"")
        assert t.done()

    def test_wrong_source_not_matched(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 1, 7, 10)
        eng.deliver(env(src=2, tag=7), b"")
        assert not t.done()
        assert eng.pending_unexpected() == 1

    def test_wrong_tag_not_matched(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 1, 7, 10)
        eng.deliver(env(src=1, tag=8), b"")
        assert not t.done()

    def test_wrong_context_not_matched(self):
        eng = MatchingEngine()
        t = eng.post_recv(5, ANY_SOURCE, ANY_TAG, 10)
        eng.deliver(env(ctx=6), b"")
        assert not t.done()


class TestOrdering:
    def test_unexpected_fifo_per_pattern(self):
        eng = MatchingEngine()
        eng.deliver(env(src=1, tag=1, nbytes=1), b"a")
        eng.deliver(env(src=1, tag=1, nbytes=1), b"b")
        t1 = eng.post_recv(0, 1, 1, 10)
        t2 = eng.post_recv(0, 1, 1, 10)
        assert t1.wait() == b"a"
        assert t2.wait() == b"b"

    def test_posted_fifo(self):
        eng = MatchingEngine()
        t1 = eng.post_recv(0, ANY_SOURCE, ANY_TAG, 10)
        t2 = eng.post_recv(0, ANY_SOURCE, ANY_TAG, 10)
        eng.deliver(env(nbytes=1), b"x")
        assert t1.done() and not t2.done()

    def test_earliest_satisfying_recv_wins(self):
        eng = MatchingEngine()
        t1 = eng.post_recv(0, 3, 1, 10)       # specific source 3
        t2 = eng.post_recv(0, ANY_SOURCE, 1, 10)
        eng.deliver(env(src=2, tag=1), b"")
        # Message from 2 skips t1 (wants src 3) and matches t2.
        assert not t1.done() and t2.done()

    def test_tag_selectivity_across_interleaved_sends(self):
        eng = MatchingEngine()
        eng.deliver(env(src=1, tag=5, nbytes=1), b"5")
        eng.deliver(env(src=1, tag=6, nbytes=1), b"6")
        t6 = eng.post_recv(0, 1, 6, 10)
        t5 = eng.post_recv(0, 1, 5, 10)
        assert t6.wait() == b"6"
        assert t5.wait() == b"5"


class TestTruncation:
    def test_oversized_message_raises_on_wait(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 0, 1, 2)
        eng.deliver(env(nbytes=5), b"12345")
        with pytest.raises(TruncationError, match="truncates"):
            t.wait()

    def test_exact_fit_ok(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 0, 1, 5)
        eng.deliver(env(nbytes=5), b"12345")
        assert t.wait() == b"12345"


class TestProbe:
    def test_iprobe_empty(self):
        eng = MatchingEngine()
        assert eng.iprobe(0, ANY_SOURCE, ANY_TAG) is None

    def test_iprobe_does_not_consume(self):
        eng = MatchingEngine()
        eng.deliver(env(src=2, tag=3, nbytes=4), b"data")
        st = eng.iprobe(0, 2, 3)
        assert isinstance(st, Status)
        assert st.count_bytes == 4
        assert eng.pending_unexpected() == 1

    def test_probe_blocks_until_delivery(self):
        eng = MatchingEngine()
        result = {}

        def prober():
            result["st"] = eng.probe(0, 1, 1, timeout=5)

        th = threading.Thread(target=prober)
        th.start()
        eng.deliver(env(src=1, tag=1, nbytes=2), b"ok")
        th.join(5)
        assert not th.is_alive()
        assert result["st"].Get_source() == 1

    def test_probe_timeout(self):
        eng = MatchingEngine()
        with pytest.raises(TimeoutError):
            eng.probe(0, 1, 1, timeout=0.05)


class TestCancel:
    def test_cancel_posted(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 1, 1, 10)
        assert eng.cancel_recv(t)
        assert t.cancelled
        assert eng.pending_posted() == 0

    def test_cancel_after_match_fails(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 1, 1, 10)
        eng.deliver(env(src=1, tag=1), b"")
        assert not eng.cancel_recv(t)

    def test_cancelled_wait_returns_empty(self):
        eng = MatchingEngine()
        t = eng.post_recv(0, 1, 1, 10)
        eng.cancel_recv(t)
        assert t.wait() == b""


class TestConcurrency:
    def test_concurrent_delivery_and_posting(self):
        eng = MatchingEngine()
        n = 200
        tickets = []

        def poster():
            for _ in range(n):
                tickets.append(eng.post_recv(0, ANY_SOURCE, ANY_TAG, 64))

        def deliverer():
            for i in range(n):
                eng.deliver(env(src=0, tag=1, nbytes=2), b"%02d" % (i % 100))

        threads = [
            threading.Thread(target=poster),
            threading.Thread(target=deliverer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        for t in tickets:
            t.wait(timeout=5)
        assert eng.pending_posted() == 0
        assert eng.pending_unexpected() == 0
