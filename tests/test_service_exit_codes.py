"""``ombpy-submit`` exit-code contract tests.

Each failure mode maps to a distinct, documented exit code (table in
``docs/service.md``) so shell pipelines and the campaign driver can
branch on *why* a job died without parsing stderr.
"""

import pytest

from repro.service import BenchmarkService, ServiceConfig
from repro.service.cli import (
    EXIT_CANCELLED, EXIT_DEADLINE, EXIT_DONE, EXIT_FAILED, EXIT_RANK_FAILURE,
    EXIT_REJECTED, EXIT_USAGE, exit_code_for, submit_main,
)
from repro.service.protocol import CANCELLED, DEADLINE, DONE, FAILED


class TestExitCodeFor:
    @pytest.mark.parametrize("job, code", [
        ({"state": DONE}, EXIT_DONE),
        ({"state": DEADLINE}, EXIT_DEADLINE),
        ({"state": CANCELLED}, EXIT_CANCELLED),
        ({"state": FAILED, "failure_kind": "app_error"}, EXIT_FAILED),
        ({"state": FAILED}, EXIT_FAILED),
        ({"state": FAILED, "failure_kind": "rank_failure"},
         EXIT_RANK_FAILURE),
        ({"state": FAILED, "failure_kind": "collateral"},
         EXIT_RANK_FAILURE),
        ({"state": FAILED, "failure_kind": "pool_degraded"},
         EXIT_RANK_FAILURE),
        ({"state": FAILED, "failure_kind": "pool_lost"},
         EXIT_RANK_FAILURE),
    ])
    def test_mapping(self, job, code):
        assert exit_code_for(job) == code

    def test_codes_are_distinct(self):
        codes = {EXIT_DONE, EXIT_FAILED, EXIT_USAGE, EXIT_REJECTED,
                 EXIT_DEADLINE, EXIT_RANK_FAILURE, EXIT_CANCELLED}
        assert len(codes) == 7


@pytest.fixture
def service(tmp_path):
    svc = BenchmarkService(
        pool_size=2,
        socket_path=str(tmp_path / "svc.sock"),
        config=ServiceConfig(queue_depth=4, default_deadline_s=60.0),
    )
    svc.start()
    yield svc
    svc.stop()


def submit(service, command, *args):
    return submit_main([command, "--socket", service.address, *args])


class TestSubmitExitCodes:
    def test_done_is_zero(self, service):
        assert submit(
            service, "submit", "osu_latency", "--wait",
            "-m", "1:16", "-i", "3", "-x", "1",
        ) == EXIT_DONE

    def test_connection_error_is_usage(self, tmp_path):
        assert submit_main(
            ["status", "--socket", str(tmp_path / "nope.sock")]
        ) == EXIT_USAGE

    def test_rejected_after_drain(self, service):
        assert submit(service, "drain") == EXIT_DONE
        assert submit(
            service, "submit", "--sleep", "0.01", "--wait",
        ) == EXIT_REJECTED

    def test_deadline_exceeded(self, service):
        assert submit(
            service, "submit", "--sleep", "30",
            "--deadline", "0.2", "--wait",
        ) == EXIT_DEADLINE

    def test_cancelled(self, service, capsys):
        assert submit(service, "submit", "--sleep", "30") == EXIT_DONE
        job_id = capsys.readouterr().out.split()[0]
        assert submit(service, "cancel", job_id) == EXIT_DONE
        assert submit(service, "result", job_id,
                      "--wait") == EXIT_CANCELLED
