"""Transport-layer tests: framing, inproc fabric, TCP mesh, launcher."""

import subprocess
import sys
import textwrap

import pytest

from repro.mpi.exceptions import InternalError, RankError
from repro.mpi.matching import Envelope, MatchingEngine
from repro.mpi.transport.base import HEADER_SIZE, pack_header, unpack_header
from repro.mpi.transport.inproc import InprocFabric


class TestFraming:
    def test_roundtrip(self):
        env = Envelope(context=7, source=3, dest=9, tag=123456, nbytes=42)
        assert unpack_header(pack_header(env)) == env

    def test_header_size_fixed(self):
        assert len(pack_header(Envelope(0, 0, 0, 0, 0))) == HEADER_SIZE

    def test_large_context_and_tag(self):
        env = Envelope(
            context=(1 << 40) | 3, source=0, dest=1,
            tag=2**30, nbytes=2**40,
        )
        assert unpack_header(pack_header(env)) == env


class TestInprocFabric:
    def test_route_delivers_to_engine(self):
        fab = InprocFabric(2)
        t0, t1 = fab.create_transport(0), fab.create_transport(1)
        e0, e1 = MatchingEngine(), MatchingEngine()
        t0.attach(e0)
        t1.attach(e1)
        t0.send(1, Envelope(0, 0, 1, 5, 3), b"abc")
        ticket = e1.post_recv(0, 0, 5, 10)
        assert ticket.wait(1) == b"abc"

    def test_self_send(self):
        fab = InprocFabric(1)
        t = fab.create_transport(0)
        e = MatchingEngine()
        t.attach(e)
        t.send(0, Envelope(0, 0, 0, 1, 2), b"me")
        assert e.post_recv(0, 0, 1, 10).wait(1) == b"me"

    def test_duplicate_rank_registration_rejected(self):
        fab = InprocFabric(2)
        fab.create_transport(0)
        with pytest.raises(InternalError, match="already registered"):
            fab.create_transport(0)

    def test_out_of_range_rank_rejected(self):
        fab = InprocFabric(2)
        with pytest.raises(RankError):
            fab.create_transport(5)

    def test_send_to_unattached_rank_fails(self):
        fab = InprocFabric(2)
        t0 = fab.create_transport(0)
        t0.attach(MatchingEngine())
        with pytest.raises(InternalError, match="no attached endpoint"):
            t0.send(1, Envelope(0, 0, 1, 1, 0), b"")

    def test_closed_fabric_rejects_sends(self):
        fab = InprocFabric(2)
        t0 = fab.create_transport(0)
        t1 = fab.create_transport(1)
        t0.attach(MatchingEngine())
        t1.attach(MatchingEngine())
        fab.close()
        with pytest.raises(InternalError, match="closed fabric"):
            t0.send(1, Envelope(0, 0, 1, 1, 0), b"")

    def test_invalid_world_size(self):
        with pytest.raises(RankError):
            InprocFabric(0)


_TCP_SCRIPT = textwrap.dedent("""
    import numpy as np
    from repro.mpi import init, ops
    world = init()
    comm = world.comm
    r, p = comm.rank, comm.size
    # p2p both directions across the mesh
    if r == 0:
        comm.send_bytes(b"x" * 70000, p - 1, 3)
    if r == p - 1:
        data, _ = comm.recv_bytes(0, 3, 70000)
        assert len(data) == 70000
    # collectives over TCP
    s = comm.allreduce_array(np.array([float(r + 1)]), ops.SUM)
    assert s[0] == p * (p + 1) / 2
    out = comm.bcast_bytes(b"tcp" if r == 0 else None, 0)
    assert out == b"tcp"
    g = comm.allgather_bytes(bytes([r]))
    assert g == [bytes([i]) for i in range(p)]
    comm.barrier()
    world.finalize()
""")


@pytest.mark.slow
class TestTcpLauncher:
    @pytest.mark.parametrize("n", (2, 4))
    def test_multiprocess_job(self, tmp_path, n):
        script = tmp_path / "job.py"
        script.write_text(_TCP_SCRIPT)
        from repro.mpi.launcher import launch

        assert launch(n, [str(script)], timeout=120) == 0

    def test_nonzero_exit_propagates(self, tmp_path):
        script = tmp_path / "fail.py"
        script.write_text(
            "from repro.mpi import init\n"
            "w = init()\n"
            "import sys\n"
            "sys.exit(3 if w.rank == 1 else 0)\n"
        )
        from repro.mpi.launcher import launch

        assert launch(2, [str(script)], timeout=120) == 3

    def test_cli_entry_point(self, tmp_path):
        script = tmp_path / "cli.py"
        script.write_text(
            "from repro.mpi import init\n"
            "w = init()\n"
            "w.comm.barrier()\n"
            "w.finalize()\n"
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.mpi.launcher", "-n", "2",
             str(script)],
            capture_output=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr.decode()

    def test_launch_validates_args(self):
        from repro.mpi.launcher import launch

        with pytest.raises(ValueError, match=">= 1"):
            launch(0, ["x.py"])
        with pytest.raises(ValueError, match="no program"):
            launch(2, [])

    def test_launcher_runs_ombpy_cli(self):
        """The README composition: ombpy-run -n 2 ombpy osu_latency."""
        import sys

        from repro.mpi.launcher import launch

        rc = launch(
            2,
            [sys.executable, "-m", "repro.core.cli", "osu_latency",
             "-m", "1:16", "-i", "3", "-x", "1"],
            timeout=120,
        )
        assert rc == 0


@pytest.mark.slow
class TestUdsLauncher:
    @pytest.mark.parametrize("n", (2, 4))
    def test_multiprocess_job_over_uds(self, tmp_path, n):
        script = tmp_path / "job.py"
        script.write_text(_TCP_SCRIPT)  # same semantics, different fabric
        from repro.mpi.launcher import launch

        assert launch(n, [str(script)], timeout=120, transport="uds") == 0

    def test_socket_dir_cleaned_up(self, tmp_path):
        import glob
        import tempfile

        script = tmp_path / "job.py"
        script.write_text(
            "from repro.mpi import init\n"
            "w = init()\nw.comm.barrier()\nw.finalize()\n"
        )
        from repro.mpi.launcher import launch

        before = set(glob.glob(
            f"{tempfile.gettempdir()}/ombpy-uds-*"
        ))
        assert launch(2, [str(script)], timeout=120, transport="uds") == 0
        after = set(glob.glob(f"{tempfile.gettempdir()}/ombpy-uds-*"))
        assert after <= before  # job's socket dir removed

    def test_unknown_transport_rejected(self):
        from repro.mpi.launcher import launch

        with pytest.raises(ValueError, match="transport"):
            launch(2, ["x.py"], transport="rdma")


class TestSingletonInit:
    def test_init_without_env_is_single_rank(self, monkeypatch):
        from repro.mpi.world import ENV_RANK, init

        monkeypatch.delenv(ENV_RANK, raising=False)
        world = init()
        try:
            assert world.size == 1 and world.rank == 0
            world.comm.barrier()
            out = world.comm.bcast_bytes(b"solo", 0)
            assert out == b"solo"
        finally:
            world.finalize()
