"""World lifecycle and process-launch wrappers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import constants as C
from repro.mpi import ops
from repro.mpi.world import init, run_on_processes, run_on_threads


class TestWorldLifecycle:
    def test_context_manager_finalizes(self, monkeypatch):
        from repro.mpi.world import ENV_RANK

        monkeypatch.delenv(ENV_RANK, raising=False)
        with init() as world:
            assert world.rank == 0 and world.size == 1
            world.comm.barrier()
        # After the with-block, the fabric is closed (self-sends bypass
        # the fabric, so probe the closed flag directly).
        assert world._fabric is not None
        assert world._fabric._closed
        world.finalize()  # idempotent

    def test_thread_level_propagates(self, monkeypatch):
        from repro.mpi.world import ENV_RANK

        monkeypatch.delenv(ENV_RANK, raising=False)
        world = init(thread_level=C.THREAD_SINGLE)
        try:
            assert world.comm.thread_level == C.THREAD_SINGLE
        finally:
            world.finalize()

    def test_run_on_threads_returns_in_rank_order(self):
        results = run_on_threads(5, lambda c: c.rank * 10)
        assert results == [0, 10, 20, 30, 40]


@pytest.mark.slow
class TestRunOnProcesses:
    def test_wrapper_launches_script(self, tmp_path):
        script = tmp_path / "job.py"
        script.write_text(
            "from repro.mpi import init\n"
            "w = init()\n"
            "assert w.size == 2\n"
            "w.comm.barrier()\n"
            "w.finalize()\n"
        )
        assert run_on_processes(2, str(script), timeout=120) == 0

    def test_wrapper_passes_args(self, tmp_path):
        script = tmp_path / "job.py"
        script.write_text(
            "import sys\n"
            "from repro.mpi import init\n"
            "w = init()\n"
            "assert sys.argv[1] == 'expected-arg'\n"
            "w.finalize()\n"
        )
        assert run_on_processes(
            2, str(script), args=["expected-arg"], timeout=120
        ) == 0


class TestSplitProperties:
    @given(
        st.integers(2, 6),
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_split_partitions_communicator(self, n, colors):
        """Split colors partition the ranks: sub-sizes sum to n, each
        rank's sub-communicator matches its color group, and a
        collective on each part sees exactly its members."""
        def work(comm):
            color = colors[comm.rank]
            sub = comm.Split(color, comm.rank)
            total = sub.allreduce_array(np.array([1.0]), ops.SUM)
            members = [
                r for r in range(comm.size) if colors[r] == color
            ]
            assert sub.size == len(members)
            assert total[0] == len(members)
            # Rank within the part follows world order (key = rank).
            assert sub.rank == members.index(comm.rank)
            return sub.size

        sizes = run_on_threads(n, work)
        assert sum(1 for _ in sizes) == n
