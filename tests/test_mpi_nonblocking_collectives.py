"""Non-blocking collective tests."""

import time

import numpy as np
import pytest

from repro.mpi import ops
from repro.mpi.collectives.nonblocking import (
    NonBlockingCollectives,
    waitall_collectives,
)
from repro.mpi.world import run_on_threads


class TestBasics:
    def test_ibarrier(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            req = nb.ibarrier()
            req.wait()
            assert req.done()
        run_on_threads(4, work)

    def test_ibcast(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            req = nb.ibcast(b"async" if comm.rank == 0 else None, 0)
            assert req.wait() == b"async"
        run_on_threads(3, work)

    def test_iallreduce(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            req = nb.iallreduce(np.full(8, float(comm.rank + 1)), ops.SUM)
            out = req.wait()
            assert np.allclose(out, sum(range(1, comm.size + 1)))
        run_on_threads(4, work)

    def test_ireduce_root_only(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            out = nb.ireduce(np.ones(3), ops.SUM, 0).wait()
            if comm.rank == 0:
                assert np.allclose(out, comm.size)
            else:
                assert out is None
        run_on_threads(3, work)

    def test_igather_iscatter(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            gathered = nb.igather(bytes([comm.rank]), 0).wait()
            if comm.rank == 0:
                assert gathered == [bytes([r]) for r in range(comm.size)]
            blocks = (
                [bytes([j * 2]) for j in range(comm.size)]
                if comm.rank == 0 else None
            )
            mine = nb.iscatter(blocks, 0).wait()
            assert mine == bytes([comm.rank * 2])
        run_on_threads(4, work)

    def test_iallgather_ialltoall(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            ag = nb.iallgather(bytes([comm.rank] * 2)).wait()
            assert ag == [bytes([r] * 2) for r in range(comm.size)]
            a2a = nb.ialltoall(
                [bytes([comm.rank, j]) for j in range(comm.size)]
            ).wait()
            assert a2a == [bytes([i, comm.rank]) for i in range(comm.size)]
        run_on_threads(3, work)

    def test_ireduce_scatter(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            p = comm.size
            out = nb.ireduce_scatter(
                np.ones(p * 2), [2] * p, ops.SUM
            ).wait()
            assert np.allclose(out, p)
        run_on_threads(4, work)


class TestOverlapAndOrdering:
    def test_computation_overlaps_communication(self):
        """Work done between start and wait is not serialized after it."""
        def work(comm):
            nb = NonBlockingCollectives(comm)
            payload = bytes(1 << 20) if comm.rank == 0 else None
            req = nb.ibcast(payload, 0)
            acc = 0.0
            for i in range(1000):
                acc += i * 0.5
            out = req.wait(timeout=30)
            assert len(out) == 1 << 20
            return acc
        run_on_threads(3, work)

    def test_multiple_outstanding_requests(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            reqs = [
                nb.iallreduce(np.array([float(i)]), ops.SUM)
                for i in range(5)
            ]
            results = waitall_collectives(reqs)
            for i, out in enumerate(results):
                assert out[0] == i * comm.size
        run_on_threads(4, work)

    def test_send_buffer_snapshot_at_start(self):
        """Mutating the send array after i-start must not corrupt it."""
        def work(comm):
            nb = NonBlockingCollectives(comm)
            arr = np.full(4, 1.0)
            req = nb.iallreduce(arr, ops.SUM)
            arr.fill(99.0)  # too late to affect the collective
            out = req.wait()
            assert np.allclose(out, comm.size)
        run_on_threads(3, work)

    def test_mixing_with_blocking_collectives(self):
        """i-collectives run on a private context; blocking ops between
        start and wait must not cross-match."""
        def work(comm):
            nb = NonBlockingCollectives(comm)
            req = nb.iallgather(bytes([comm.rank]))
            blocking = comm.allreduce_array(np.array([1.0]), ops.SUM)
            assert blocking[0] == comm.size
            out = req.wait()
            assert out == [bytes([r]) for r in range(comm.size)]
        run_on_threads(4, work)

    def test_test_method(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            req = nb.ibarrier()
            deadline = time.time() + 10
            while not req.test()[0]:
                assert time.time() < deadline
        run_on_threads(2, work)

    def test_error_propagates_through_wait(self):
        def work(comm):
            nb = NonBlockingCollectives(comm)
            # Invalid root raises inside the progress thread and must
            # surface at wait().
            req = nb.ibcast(b"x", 99)
            with pytest.raises(Exception):
                req.wait(timeout=10)
            comm.barrier()
        run_on_threads(2, work)

    def test_waitall_empty_rejected(self):
        with pytest.raises(Exception):
            waitall_collectives([])
