"""Suppression pragmas across multi-line statements, and the baseline
gate that lets grandfathered findings through while rejecting new ones."""

from __future__ import annotations

import ast
import json

import pytest

from repro.analysis.dataflow import statement_spans
from repro.analysis.lint import (
    BASELINE_SCHEMA,
    apply_baseline,
    fingerprint,
    lint_paths,
    lint_source,
    load_baseline,
    main,
)


class TestStatementSpans:
    def test_simple_statements_span_all_lines(self):
        src = (
            "x = (1 +\n"
            "     2)\n"
            "y = 1 + \\\n"
            "    2\n"
        )
        spans = statement_spans(ast.parse(src))
        assert spans[1] == (1, 2)
        assert spans[2] == (1, 2)
        assert spans[3] == (3, 4)
        assert spans[4] == (3, 4)

    def test_compound_statement_spans_header_only(self):
        src = (
            "if (a and\n"
            "        b):\n"
            "    body()\n"
        )
        spans = statement_spans(ast.parse(src))
        assert spans[1] == (1, 2)  # the two header lines share a span
        assert spans[2] == (1, 2)
        assert spans[3] == (3, 3)  # the body is its own statement


class TestPragmaAcrossContinuations:
    def test_pragma_on_last_line_of_paren_continuation(self):
        src = (
            "import numpy as np\n"
            "comm.send(\n"
            "    np.zeros(4),\n"
            "    dest=1,\n"
            ")  # ombpy-lint: ignore[OMB001]\n"
        )
        assert lint_source(src) == []

    def test_pragma_on_first_line_of_paren_continuation(self):
        src = (
            "import numpy as np\n"
            "comm.send(  # ombpy-lint: ignore[OMB001]\n"
            "    np.zeros(4),\n"
            "    dest=1,\n"
            ")\n"
        )
        assert lint_source(src) == []

    def test_pragma_after_backslash_continuation(self):
        src = (
            "import numpy as np\n"
            "req = comm.\\\n"
            "    send(np.zeros(4), dest=1)  # ombpy-lint: ignore[OMB001]\n"
        )
        assert lint_source(src) == []

    def test_disable_alias(self):
        src = (
            "import numpy as np\n"
            "comm.send(np.zeros(4), dest=1)  # ombpy: disable[OMB001]\n"
        )
        assert lint_source(src) == []

    def test_unrelated_rule_pragma_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "comm.send(\n"
            "    np.zeros(4),\n"
            ")  # ombpy-lint: ignore[OMB004]\n"
        )
        assert [f.rule for f in lint_source(src)] == ["OMB001"]

    def test_pragma_on_compound_header_does_not_silence_body(self):
        # The header span covers the `for` line only; a pragma there must
        # not blanket-suppress findings inside the body.
        src = (
            "import numpy as np\n"
            "for i in range(2):  # ombpy-lint: ignore[OMB001]\n"
            "    comm.send(np.zeros(4), dest=1)\n"
        )
        assert [f.rule for f in lint_source(src)] == ["OMB001"]


HOT_COPY = (
    "def send_bytes(self, payload, dest, tag):\n"
    "    frozen = bytes(payload)\n"
    "    self._post(frozen, dest, tag)\n"
)


class TestBaselineGate:
    def test_grandfathered_finding_absorbed(self, tmp_path):
        (tmp_path / "hot.py").write_text(HOT_COPY)
        findings = lint_paths([tmp_path], perf=True)
        assert [f.rule for f in findings] == ["OMB301"]
        baseline = {fingerprint(findings[0]): 1}
        fresh, grandfathered = apply_baseline(findings, baseline)
        assert fresh == []
        assert grandfathered == 1

    def test_new_copy_on_send_path_rejected(self, tmp_path):
        # The CI gate scenario: a baseline built before someone adds a
        # bytes() copy to the send path must flag the new site.
        (tmp_path / "hot.py").write_text(HOT_COPY)
        baseline: dict[str, int] = {}  # built when the tree was clean
        findings = lint_paths([tmp_path], perf=True)
        fresh, grandfathered = apply_baseline(findings, baseline)
        assert [f.rule for f in fresh] == ["OMB301"]
        assert grandfathered == 0

    def test_second_copy_at_grandfathered_site_rejected(self, tmp_path):
        # The baseline is a multiset: one grandfathered copy does not
        # license a second identical one in the same file.
        (tmp_path / "hot.py").write_text(HOT_COPY)
        findings = lint_paths([tmp_path], perf=True)
        baseline = {fingerprint(findings[0]): 1}
        doubled = findings + findings
        fresh, grandfathered = apply_baseline(doubled, baseline)
        assert len(fresh) == 1
        assert grandfathered == 1

    def test_load_baseline_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"schema": "nope", "fingerprints": {}}))
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_cli_gate_end_to_end(self, tmp_path, capsys):
        target = tmp_path / "hot.py"
        target.write_text(HOT_COPY)
        baseline = tmp_path / "baseline.json"
        inventory = tmp_path / "perf_lint.json"

        # No baseline coverage -> the finding fails the build (exit 1).
        baseline.write_text(json.dumps(
            {"schema": BASELINE_SCHEMA, "fingerprints": {}}
        ))
        rc = main([
            str(target), "--perf",
            "--baseline", str(baseline), "--inventory", str(inventory),
        ])
        assert rc == 1

        # The inventory records the finding even when grandfathered.
        findings = lint_paths([target], perf=True)
        baseline.write_text(json.dumps({
            "schema": BASELINE_SCHEMA,
            "fingerprints": {fingerprint(findings[0]): 1},
        }))
        rc = main([
            str(target), "--perf",
            "--baseline", str(baseline), "--inventory", str(inventory),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out
        doc = json.loads(inventory.read_text())
        assert doc["count"] == 1
        assert doc["by_rule"] == {"OMB301": 1}
