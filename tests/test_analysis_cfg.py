"""CFG builder: structured-flow edges, loop depths, dominators, and the
well-formedness invariants property-tested over randomly generated ASTs."""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg, dominators


def cfg_of(source: str):
    tree = ast.parse(source)
    return build_cfg(tree)


def func_cfg(source: str):
    tree = ast.parse(source)
    fn = next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )
    return fn, build_cfg(fn)


class TestStructure:
    def test_straight_line(self):
        cfg = cfg_of("x = 1\ny = 2\n")
        assert cfg.check() == []
        assert cfg.max_depth() == 0
        # entry flows to exit through the linear statements
        assert cfg.exit in cfg.reachable()

    def test_if_else_diamond(self):
        cfg = cfg_of("if c:\n    a = 1\nelse:\n    b = 2\nz = 3\n")
        assert cfg.check() == []
        labels = {b.label for b in cfg.blocks.values()}
        assert {"then", "else", "after-if"} <= labels

    def test_loop_depth_annotation(self):
        src = (
            "def f():\n"
            "    setup()\n"
            "    for i in it:\n"
            "        one()\n"
            "        while c:\n"
            "            two()\n"
            "    done()\n"
        )
        fn, cfg = func_cfg(src)
        depth_by_call = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name):
                depth_by_call[node.func.id] = cfg.depth_of(node)
        assert depth_by_call == {
            "setup": 0, "one": 1, "two": 2, "done": 0,
        }
        assert cfg.max_depth() == 2

    def test_loop_has_back_edge(self):
        cfg = cfg_of("while c:\n    x = 1\n")
        header = next(
            b for b in cfg.blocks.values() if b.label == "loop-header"
        )
        body = next(
            b for b in cfg.blocks.values() if b.label == "loop-body"
        )
        assert header.id in cfg.blocks[body.id].succs

    def test_break_exits_loop(self):
        cfg = cfg_of("while c:\n    break\n")
        after = next(
            b for b in cfg.blocks.values() if b.label == "after-loop"
        )
        body = next(
            b for b in cfg.blocks.values() if b.label == "loop-body"
        )
        assert after.id in body.succs

    def test_return_goes_to_exit(self):
        _fn, cfg = func_cfg("def f():\n    if c:\n        return 1\n    g()\n")
        assert cfg.check() == []

    def test_try_except_edges(self):
        cfg = cfg_of(
            "try:\n    risky()\nexcept ValueError:\n    h()\nz = 1\n"
        )
        assert cfg.check() == []
        labels = {b.label for b in cfg.blocks.values()}
        assert "except" in labels

    def test_unreachable_code_still_annotated(self):
        _fn, cfg = func_cfg("def f():\n    return 1\n    x = dead()\n")
        assert cfg.check() == []


class TestDominators:
    def test_entry_dominates_everything_reachable(self):
        cfg = cfg_of("if c:\n    a = 1\nelse:\n    b = 2\nz = 3\n")
        doms = dominators(cfg)
        for bid in cfg.reachable():
            assert cfg.entry in doms[bid]

    def test_branch_arms_do_not_dominate_join(self):
        cfg = cfg_of("if c:\n    a = 1\nelse:\n    b = 2\nz = 3\n")
        doms = dominators(cfg)
        then_id = next(
            b.id for b in cfg.blocks.values() if b.label == "then"
        )
        after_id = next(
            b.id for b in cfg.blocks.values() if b.label == "after-if"
        )
        assert then_id not in doms[after_id]

    def test_strict_dominance_antisymmetric(self):
        cfg = cfg_of("while c:\n    if d:\n        break\n    x = 1\ny = 2\n")
        doms = dominators(cfg)
        for a in cfg.blocks:
            for b in cfg.blocks:
                if a != b and a in doms[b]:
                    assert b not in doms[a]


# -- random-AST property tests ---------------------------------------------
# Statements are built as AST nodes directly (not parsed source), so
# break/continue can appear anywhere — the builder must stay well-formed
# even on programs a parser would reject.

def _name(value: str = "x") -> ast.Name:
    return ast.Name(id=value, ctx=ast.Load())


def _simple(kind: str) -> ast.stmt:
    if kind == "assign":
        return ast.Assign(
            targets=[ast.Name(id="x", ctx=ast.Store())],
            value=ast.Constant(value=1),
        )
    if kind == "expr":
        return ast.Expr(value=ast.Call(func=_name("f"), args=[], keywords=[]))
    if kind == "return":
        return ast.Return(value=None)
    if kind == "raise":
        return ast.Raise(exc=_name("E"), cause=None)
    if kind == "break":
        return ast.Break()
    if kind == "continue":
        return ast.Continue()
    return ast.Pass()


_SIMPLE_KINDS = st.sampled_from(
    ["assign", "expr", "return", "raise", "break", "continue", "pass"]
)


@st.composite
def _stmt(draw, depth: int) -> ast.stmt:
    if depth <= 0:
        return _simple(draw(_SIMPLE_KINDS))
    kind = draw(st.sampled_from(
        ["simple", "if", "while", "for", "try", "with"]
    ))
    if kind == "simple":
        return _simple(draw(_SIMPLE_KINDS))
    body = draw(_body(depth - 1))
    if kind == "if":
        orelse = draw(st.one_of(st.just([]), _body(depth - 1)))
        return ast.If(test=_name("c"), body=body, orelse=orelse)
    if kind == "while":
        return ast.While(test=_name("c"), body=body, orelse=[])
    if kind == "for":
        return ast.For(
            target=ast.Name(id="i", ctx=ast.Store()),
            iter=_name("it"), body=body, orelse=[],
        )
    if kind == "try":
        handler = ast.ExceptHandler(
            type=_name("E"), name=None, body=draw(_body(depth - 1)),
        )
        final = draw(st.one_of(st.just([]), _body(depth - 1)))
        return ast.Try(
            body=body, handlers=[handler], orelse=[], finalbody=final,
        )
    item = ast.withitem(context_expr=_name("cm"), optional_vars=None)
    return ast.With(items=[item], body=body)


def _body(depth: int):
    return st.lists(_stmt(depth), min_size=1, max_size=3)


@given(_body(3))
@settings(max_examples=120, deadline=None)
def test_cfg_well_formed_on_random_asts(body):
    fn = ast.FunctionDef(
        name="f",
        args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
            defaults=[],
        ),
        body=body, decorator_list=[], returns=None,
    )
    cfg = build_cfg(fn)
    # every non-exit block has a successor; pred/succ links consistent
    assert cfg.check() == []
    assert cfg.entry != cfg.exit


@given(_body(3))
@settings(max_examples=120, deadline=None)
def test_dominators_acyclic_on_random_asts(body):
    fn = ast.FunctionDef(
        name="f",
        args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
            defaults=[],
        ),
        body=body, decorator_list=[], returns=None,
    )
    cfg = build_cfg(fn)
    doms = dominators(cfg)
    assert doms[cfg.entry] == {cfg.entry}
    reachable = cfg.reachable()
    for bid in reachable:
        assert cfg.entry in doms[bid]
        assert bid in doms[bid]
    # strict dominance is antisymmetric => the dominance relation has no
    # cycles between distinct blocks
    for a in cfg.blocks:
        for b in cfg.blocks:
            if a != b and a in doms[b] and b in doms[a]:
                raise AssertionError(
                    f"dominance cycle between blocks {a} and {b}"
                )
