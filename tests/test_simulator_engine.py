"""Discrete-event engine semantics."""

import pytest

from repro.simulator.engine import SimulationError, simulate, simulate_collective
from repro.simulator.loggp import NetworkModel

NET = NetworkModel(alpha_us=1.0, beta_us_per_byte=0.01)


class TestPrimitives:
    def test_one_way_message_costs_latency(self):
        def sender(rank, p):
            yield ("send", 1, 100)

        def receiver(rank, p):
            yield ("recv", 0)

        clocks = simulate([sender(0, 2), receiver(1, 2)], NET)
        assert clocks[0] == 0.0
        assert clocks[1] == pytest.approx(NET.latency_us(100))

    def test_ping_pong_round_trip(self):
        def rank0(rank, p):
            yield ("send", 1, 10)
            yield ("recv", 1)

        def rank1(rank, p):
            yield ("recv", 0)
            yield ("send", 0, 10)

        clocks = simulate([rank0(0, 2), rank1(1, 2)], NET)
        assert clocks[0] == pytest.approx(2 * NET.latency_us(10))

    def test_compute_advances_clock(self):
        def prog(rank, p):
            yield ("compute", 5.0)
            yield ("compute", 2.5)

        assert simulate([prog(0, 1)], NET)[0] == pytest.approx(7.5)

    def test_recv_waits_for_late_message(self):
        def busy_sender(rank, p):
            yield ("compute", 50.0)
            yield ("send", 1, 0)

        def eager_receiver(rank, p):
            yield ("recv", 0)

        clocks = simulate([busy_sender(0, 2), eager_receiver(1, 2)], NET)
        assert clocks[1] == pytest.approx(50.0 + NET.latency_us(0))

    def test_early_message_waits_for_recv(self):
        def eager_sender(rank, p):
            yield ("send", 1, 0)

        def busy_receiver(rank, p):
            yield ("compute", 50.0)
            yield ("recv", 0)

        clocks = simulate([eager_sender(0, 2), busy_receiver(1, 2)], NET)
        assert clocks[1] == pytest.approx(50.0)

    def test_per_sender_fifo(self):
        def sender(rank, p):
            yield ("send", 1, 1000)   # slow (big)
            yield ("send", 1, 0)      # fast (small) — must still be second

        def receiver(rank, p):
            t1 = yield ("recv", 0)
            t2 = yield ("recv", 0)
            assert t2 >= t1

        simulate([sender(0, 2), receiver(1, 2)], NET)

    def test_sendrecv_combined(self):
        def prog(rank, p):
            other = 1 - rank
            yield ("sendrecv", other, other, 64)

        clocks = simulate([prog(0, 2), prog(1, 2)], NET)
        assert clocks[0] == clocks[1] == pytest.approx(NET.latency_us(64))

    def test_send_overhead_charged_to_sender(self):
        def sender(rank, p):
            yield ("send", 1, 0)

        def receiver(rank, p):
            yield ("recv", 0)

        clocks = simulate(
            [sender(0, 2), receiver(1, 2)], NET, per_send_overhead_us=3.0
        )
        assert clocks[0] == pytest.approx(3.0)
        assert clocks[1] == pytest.approx(3.0 + NET.latency_us(0))


class TestErrors:
    def test_deadlock_detected(self):
        def waiter(rank, p):
            yield ("recv", 1 - rank)

        with pytest.raises(SimulationError, match="deadlock"):
            simulate([waiter(0, 2), waiter(1, 2)], NET)

    def test_unknown_event_rejected(self):
        def bad(rank, p):
            yield ("teleport", 1)

        with pytest.raises(SimulationError, match="unknown event"):
            simulate([bad(0, 1)], NET)


class TestCollectiveRunner:
    def test_max_finish_time(self):
        def prog(rank, p):
            yield ("compute", float(rank))

        assert simulate_collective(
            lambda r, p: prog(r, p), 4, NET
        ) == pytest.approx(3.0)
