"""Unit tests for the span tracer and the Chrome-trace export."""

import json
import threading
import time

from repro.telemetry.export import chrome_trace, trace_jsonl
from repro.telemetry.runtime import Telemetry
from repro.telemetry.tracer import Tracer


def _span_events(doc):
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


class TestTracer:
    def test_records_spans_and_instants(self):
        tr = Tracer(rank=0)
        t0 = time.time_ns()
        tr.complete("coll.bcast", "collective", t0, 5_000)
        tr.instant("note", "misc")
        tr.message("send", 0, 1, 0, 7, 64)
        events = tr.events()
        assert len(events) == 3
        ph, name, cat, ts, dur, tid, args = events[0]
        assert (ph, name, cat, ts, dur) == ("X", "coll.bcast", "collective",
                                            t0, 5_000)
        assert events[2][6] == {"src": 0, "dst": 1, "tag": 7, "nbytes": 64,
                                "context": 0}

    def test_span_context_manager_measures(self):
        tr = Tracer(rank=0)
        with tr.span("work", "bench", size=8):
            time.sleep(0.01)
        ((ph, name, _cat, _ts, dur, _tid, args),) = tr.events()
        assert ph == "X"
        assert name == "work"
        assert args == {"size": 8}
        assert dur >= 5_000_000  # at least ~5ms of the 10ms sleep

    def test_negative_durations_clamped(self):
        tr = Tracer(rank=0)
        tr.complete("x", "c", 100, -50)
        assert tr.events()[0][4] == 0

    def test_buffer_cap_counts_drops(self):
        tr = Tracer(rank=0, max_events=3)
        for i in range(10):
            tr.instant(f"e{i}", "c")
        assert len(tr.events()) == 3
        assert tr.dropped == 7
        tr.clear()
        assert tr.events() == []
        assert tr.dropped == 0

    def test_distinct_threads_get_distinct_tids(self):
        tr = Tracer(rank=0)
        tr.instant("main", "c")

        def other():
            tr.instant("worker", "c")

        t = threading.Thread(target=other)
        t.start()
        t.join()
        tids = {e[5] for e in tr.events()}
        assert len(tids) == 2


def _two_rank_dumps():
    dumps = {}
    for rank in (0, 1):
        tele = Telemetry(rank, metrics=True, trace=True)
        with tele.tracer.span("phase", "bench", size=64):
            pass
        tele.tracer.message("send", rank, 1 - rank, 0, 5, 32)
        dumps[rank] = tele.dump()
    return dumps


class TestChromeExport:
    def test_document_is_wellformed_json(self):
        doc = chrome_trace(_two_rank_dumps())
        parsed = json.loads(json.dumps(doc))
        assert isinstance(parsed["traceEvents"], list)
        assert parsed["displayTimeUnit"] == "ms"

    def test_one_pid_per_rank_with_names(self):
        doc = chrome_trace(_two_rank_dumps())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {0, 1}
        assert {e["args"]["name"] for e in meta} == {"rank 0", "rank 1"}
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert {e["pid"] for e in data} == {0, 1}

    def test_timestamps_relative_and_nonnegative(self):
        doc = chrome_trace(_two_rank_dumps())
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert all(e["ts"] >= 0 for e in data)
        assert min(e["ts"] for e in data) == 0.0

    def test_span_end_times_monotonic_per_rank_thread(self):
        # Events are recorded at completion, so per-(pid, tid) span end
        # times must be non-decreasing — the validate_trace.py invariant.
        tele = Telemetry(0, metrics=True, trace=True)
        for i in range(5):
            with tele.tracer.span(f"s{i}", "bench"):
                pass
        doc = chrome_trace({0: tele.dump()})
        ends: dict[tuple, float] = {}
        for e in _span_events(doc):
            key = (e["pid"], e["tid"])
            end = e["ts"] + e["dur"]
            assert end >= ends.get(key, 0.0)
            ends[key] = end

    def test_instants_carry_scope(self):
        doc = chrome_trace(_two_rank_dumps())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "t" for e in instants)

    def test_jsonl_one_event_per_line(self):
        dumps = _two_rank_dumps()
        lines = trace_jsonl(dumps).strip().split("\n")
        total = sum(len(d["trace"]) for d in dumps.values())
        assert len(lines) == total
        for line in lines:
            row = json.loads(line)
            assert row[0] in (0, 1)  # leading rank


class TestDisabledOverhead:
    def test_hook_sites_are_cheap_when_disabled(self):
        """The disabled-path cost is an attribute load + None check.

        Guarded microbenchmark: a generous absolute bound (~1µs/op,
        two orders of magnitude above the real cost) that fails only if
        someone accidentally makes the disabled path do real work.
        """

        class FakeEndpoint:
            telemetry = None

        ep = FakeEndpoint()
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            tele = ep.telemetry
            if tele is not None:  # pragma: no cover - disabled path
                tele.on_coll_message(0)
        elapsed = time.perf_counter() - t0
        assert elapsed < n * 1e-6, (
            f"disabled telemetry check took {elapsed / n * 1e9:.0f} ns/op"
        )

    def test_endpoint_defaults_to_disabled(self):
        from repro.mpi.world import run_on_threads

        def fn(comm):
            return comm.endpoint.telemetry is None

        assert run_on_threads(2, fn) == [True, True]
