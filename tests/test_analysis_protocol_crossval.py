"""Cross-validation of the rank-symbolic verifier against concrete
execution.

Property-based: generate small rank-branching programs from a grammar,
derive ground truth by *concretely* evaluating every guard and peer
expression with real Python semantics at N ∈ {2, 3, 4, 5, 8} and
scheduling the resulting op lists under the runtime's semantics
(buffered sends, blocking receives, all-ranks collectives).  The
symbolic verdict must never disagree in the dangerous direction:

* no false "verified-safe" — a program that concretely deadlocks at a
  size the verifier replayed must produce a finding;
* no phantom deadlock proofs — an OMB501/502/505 (or error-grade
  OMB504) report must correspond to a concrete deadlock at some
  replayed size;
* bounded flag rate — concretely-clean programs are mostly report-free
  (the verifier is a prover, not an alarm bell).
"""

from __future__ import annotations

import ast

from hypothesis import given, settings, strategies as st

from repro.analysis.interproc import Program
from repro.analysis.protocol import build_traces, verify_function

SIZES = (2, 3, 4, 5, 8)

#: Deadlock-proof rules: claims of a concrete hang, not hygiene notes.
DEADLOCK_RULES = frozenset({"OMB501", "OMB502", "OMB505"})

PEERS = ("0", "1", "(rank + 1) % size", "(rank - 1) % size")
GUARDS = ("rank == 0", "rank == 1", "rank % 2 == 0", "rank < size - 1")
COLLS = ("barrier", "bcast")

op_st = st.one_of(
    st.tuples(st.just("send"), st.sampled_from(PEERS),
              st.integers(min_value=1, max_value=2)),
    st.tuples(st.just("recv"), st.sampled_from(PEERS),
              st.integers(min_value=1, max_value=2)),
    st.tuples(st.just("coll"), st.sampled_from(COLLS), st.just(0)),
)

stmt_st = st.one_of(
    st.tuples(st.just("op"), op_st),
    st.tuples(
        st.just("if"),
        st.sampled_from(GUARDS),
        st.lists(op_st, min_size=1, max_size=2),
        st.lists(op_st, min_size=0, max_size=2),
    ),
)

program_st = st.lists(stmt_st, min_size=1, max_size=4)


# -- rendering --------------------------------------------------------------

def _render_op(op, indent: str) -> str:
    kind, a, b = op
    if kind == "send":
        return f"{indent}comm.send_bytes(buf, {a}, {b})\n"
    if kind == "recv":
        return f"{indent}data = comm.recv_bytes({a}, {b}, 64)\n"
    if a == "barrier":
        return f"{indent}comm.barrier()\n"
    return f"{indent}comm.bcast_bytes(buf, 0)\n"


def render(spec) -> str:
    out = "def work(comm, rank, size, buf):\n"
    for stmt in spec:
        if stmt[0] == "op":
            out += _render_op(stmt[1], "    ")
        else:
            _, guard, then_ops, else_ops = stmt
            out += f"    if {guard}:\n"
            for op in then_ops:
                out += _render_op(op, "        ")
            if else_ops:
                out += "    else:\n"
                for op in else_ops:
                    out += _render_op(op, "        ")
    return out


# -- concrete ground truth --------------------------------------------------

def concrete_ops(spec, rank: int, size: int):
    """The op list rank ``rank`` executes at job size ``size``, with
    every guard and peer evaluated by the Python interpreter itself."""
    env = {"rank": rank, "size": size}
    ops = []

    def emit(op):
        kind, a, b = op
        if kind == "coll":
            ops.append(("coll", a, 0))
        else:
            ops.append((kind, eval(a, {}, env), b))

    for stmt in spec:
        if stmt[0] == "op":
            emit(stmt[1])
        else:
            _, guard, then_ops, else_ops = stmt
            for op in then_ops if eval(guard, {}, env) else else_ops:
                emit(op)
    return ops


def concrete_deadlocks(spec, size: int) -> bool:
    """Schedule the concrete op lists under runtime semantics: sends
    are buffered (complete immediately), receives block on a matching
    (source, tag) message, collectives block until every rank is at the
    same one.  True when the schedule reaches a stuck state."""
    traces = [concrete_ops(spec, r, size) for r in range(size)]
    idx = [0] * size
    mailbox: dict[tuple[int, int, int], int] = {}
    while True:
        heads = [
            traces[r][idx[r]] if idx[r] < len(traces[r]) else None
            for r in range(size)
        ]
        if all(h is None for h in heads):
            return False
        progressed = False
        for r, head in enumerate(heads):
            if head is None:
                continue
            kind, a, b = head
            if kind == "send":
                mailbox[(a, r, b)] = mailbox.get((a, r, b), 0) + 1
                idx[r] += 1
                progressed = True
            elif kind == "recv":
                key = (r, a, b)
                if mailbox.get(key, 0) > 0:
                    mailbox[key] -= 1
                    idx[r] += 1
                    progressed = True
        heads = [
            traces[r][idx[r]] if idx[r] < len(traces[r]) else None
            for r in range(size)
        ]
        if (
            all(h is not None and h[0] == "coll" for h in heads)
            and len({h[1] for h in heads}) == 1
        ):
            for r in range(size):
                idx[r] += 1
            progressed = True
        if not progressed:
            return True


# -- the properties ---------------------------------------------------------

def verdict(spec):
    prog = Program()
    prog.add_module("gen.py", ast.parse(render(spec)))
    prog.finalize()
    info = next(i for i in prog.functions if i.name == "work")
    reports = verify_function(info, frozenset(), sizes=SIZES)
    eligible = [
        n for n in SIZES if build_traces(info, frozenset(), n) is not None
    ]
    return reports, eligible


@settings(max_examples=80, deadline=None)
@given(program_st)
def test_no_false_verified_safe(spec):
    reports, eligible = verdict(spec)
    hangs = [n for n in eligible if concrete_deadlocks(spec, n)]
    if hangs and not reports:
        raise AssertionError(
            f"symbolically silent but concretely deadlocks at N={hangs}:\n"
            f"{render(spec)}"
        )


@settings(max_examples=80, deadline=None)
@given(program_st)
def test_no_phantom_deadlock_proofs(spec):
    reports, eligible = verdict(spec)
    proofs = [r for r in reports if r.rule in DEADLOCK_RULES]
    if proofs and not any(concrete_deadlocks(spec, n) for n in eligible):
        raise AssertionError(
            f"claims {[r.rule for r in proofs]} but runs clean at every "
            f"eligible size {eligible}:\n{render(spec)}"
        )


def test_flag_rate_is_bounded():
    # Deterministic corpus: enumerate a few hundred grammar points and
    # require that concretely-clean programs are mostly report-free.
    import itertools
    import random

    rng = random.Random(7)
    clean = flagged_clean = 0
    for _ in range(200):
        n_stmts = rng.randint(1, 4)
        spec = []
        for _ in range(n_stmts):
            if rng.random() < 0.5:
                spec.append(("op", _rand_op(rng)))
            else:
                spec.append((
                    "if", rng.choice(GUARDS),
                    [_rand_op(rng) for _ in range(rng.randint(1, 2))],
                    [_rand_op(rng) for _ in range(rng.randint(0, 2))],
                ))
        reports, eligible = verdict(spec)
        if not eligible:
            continue
        if any(concrete_deadlocks(spec, n) for n in eligible):
            continue
        clean += 1
        if any(r.rule in DEADLOCK_RULES for r in reports):
            flagged_clean += 1
    assert clean >= 20, "corpus produced too few clean programs"
    # No deadlock proof may land on a concretely-clean program at all.
    assert flagged_clean == 0, (clean, flagged_clean)


def _rand_op(rng):
    kind = rng.choice(("send", "recv", "coll"))
    if kind == "coll":
        return ("coll", rng.choice(COLLS), 0)
    return (kind, rng.choice(PEERS), rng.randint(1, 2))
