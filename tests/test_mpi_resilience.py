"""Resilience tests: failure detection, fail-fast, launcher supervision."""

import glob
import os
import socket
import struct
import tempfile
import textwrap
import threading
import time

import pytest

from repro.faults import CrashSpec, FaultPlan
from repro.mpi import RankFailedError, run_on_threads
from repro.mpi.exceptions import ERR_PROC_FAILED, InternalError
from repro.mpi.matching import Envelope, MatchingEngine
from repro.mpi.resilience import FailureDetector, detector_from_env
from repro.mpi.transport.base import (
    CTRL_GOODBYE, CTRL_HEARTBEAT, Transport, control_envelope,
)


class LoopbackTransport(Transport):
    """Minimal transport for detector unit tests: records control sends."""

    def __init__(self, world_rank=0, world_size=2):
        super().__init__(world_rank, world_size)
        self.control_sent = []

    def send(self, dest_world_rank, env, payload):
        self.control_sent.append((dest_world_rank, env.tag))

    def close(self):
        pass


class TestFailureDetectorUnit:
    def _detector(self, **kw):
        transport = LoopbackTransport()
        engine = MatchingEngine()
        detector = FailureDetector(transport, engine, **kw)
        return transport, engine, detector

    def test_peer_lost_fails_pending_recv(self):
        _t, engine, detector = self._detector(interval=0.05)
        ticket = engine.post_recv(0, 1, 7, 64)
        detector.start()
        try:
            detector.on_peer_lost(1, "connection reset")
            with pytest.raises(RankFailedError) as exc_info:
                ticket.wait(timeout=2)
        finally:
            detector.stop()
        assert exc_info.value.rank == 1
        assert exc_info.value.error_class == ERR_PROC_FAILED
        assert "rank 1" in str(exc_info.value)
        assert "connection reset" in str(exc_info.value)

    def test_error_carries_wait_state(self):
        _t, engine, detector = self._detector()
        engine.post_recv(0, 1, 42, 64)
        detector.on_peer_lost(1, "EOF")
        error = engine.failure()
        assert isinstance(error, RankFailedError)
        assert error.wait_state and "tag=42" in error.wait_state

    def test_future_recvs_fail_too(self):
        _t, engine, detector = self._detector()
        detector.on_peer_lost(1, "EOF")
        ticket = engine.post_recv(0, 1, 7, 64)
        with pytest.raises(RankFailedError):
            ticket.wait(timeout=2)

    def test_goodbye_suppresses_eof_report(self):
        transport, engine, detector = self._detector()
        detector.on_control(control_envelope(CTRL_GOODBYE, 1, 0))
        detector.on_peer_lost(1, "EOF after clean close")
        assert detector.failed_ranks() == {}
        assert engine.failure() is None
        assert detector.departed_ranks() == {1}

    def test_declare_is_idempotent(self):
        _t, engine, detector = self._detector()
        detector.on_peer_lost(1, "first")
        first = engine.failure()
        detector.on_peer_lost(1, "second")
        assert engine.failure() is first

    def test_heartbeats_flow_and_timeout_declares(self):
        transport, engine, detector = self._detector(
            interval=0.05, heartbeat_timeout=0.3
        )
        detector.start()
        try:
            deadline = time.monotonic() + 5
            while not detector.failed_ranks() and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            detector.stop()
        assert any(
            tag == CTRL_HEARTBEAT for _d, tag in transport.control_sent
        )
        assert 1 in detector.failed_ranks()
        assert isinstance(engine.failure(), RankFailedError)

    def test_heartbeat_keeps_peer_alive(self):
        transport, engine, detector = self._detector(
            interval=0.05, heartbeat_timeout=0.4
        )
        detector.start()
        try:
            stop = time.monotonic() + 1.0
            while time.monotonic() < stop:
                detector.on_control(control_envelope(CTRL_HEARTBEAT, 1, 0))
                time.sleep(0.02)
            assert detector.failed_ranks() == {}
        finally:
            detector.stop()

    def test_control_frames_route_via_transport(self):
        transport, engine, detector = self._detector()
        transport.detector = detector
        transport._deliver_local(control_envelope(CTRL_HEARTBEAT, 1, 0), b"")
        assert 1 in detector._last_seen

    def test_verifier_hook_invoked(self):
        class FakeEndpoint:
            pass

        class FakeVerifier:
            calls = []

            def on_rank_failed(self, rank, reason):
                self.calls.append((rank, reason))

        endpoint = FakeEndpoint()
        endpoint.verifier = FakeVerifier()
        transport = LoopbackTransport()
        engine = MatchingEngine()
        detector = FailureDetector(transport, engine, endpoint=endpoint)
        detector.on_peer_lost(1, "gone")
        assert endpoint.verifier.calls == [(1, "gone")]

    def test_env_knobs(self, monkeypatch):
        transport = LoopbackTransport()
        engine = MatchingEngine()
        monkeypatch.setenv("OMBPY_HB_INTERVAL", "0.25")
        monkeypatch.setenv("OMBPY_HB_TIMEOUT", "3.5")
        detector = detector_from_env(transport, engine)
        assert detector.interval == 0.25
        assert detector.heartbeat_timeout == 3.5
        monkeypatch.setenv("OMBPY_HB_DISABLE", "1")
        assert detector_from_env(transport, engine) is None

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            FailureDetector(LoopbackTransport(), MatchingEngine(), interval=0)


class TestThreadsChaos:
    """End-to-end fault injection over the threads fabric."""

    def test_delay_only_chaos_preserves_results(self):
        # Delay/reorder never loses or duplicates messages, so a real
        # workload must still complete with correct results under it.
        plan = FaultPlan(seed=11, delay=0.3, delay_hold=4)

        def workload(comm):
            import numpy as np

            from repro.mpi import ops

            total = comm.allreduce_array(
                np.array([float(comm.rank + 1)]), ops.SUM
            )
            gathered = comm.allgather_bytes(bytes([comm.rank]))
            comm.barrier()
            return total[0], gathered

        results = run_on_threads(4, workload, fault_plan=plan, timeout=60)
        for total, gathered in results:
            assert total == 10.0
            assert gathered == [bytes([i]) for i in range(4)]

    def test_injected_crash_raises_in_thread(self):
        plan = FaultPlan(
            seed=0, crash=CrashSpec(rank=1, at_op=0, mode="raise"),
        )

        def workload(comm):
            # Only rank 1 sends, so only rank 1 hits its scheduled crash;
            # rank 0 must not block (nothing unblocks it after the crash).
            if comm.rank == 1:
                comm.send_bytes(b"hello", 0, 5)
            return comm.rank

        from repro.faults import InjectedCrash

        with pytest.raises(InjectedCrash):
            run_on_threads(2, workload, fault_plan=plan, timeout=30)


class TestDialRetry:
    def test_retries_until_listener_appears(self):
        from repro.mpi.transport.tcp import dial_with_retry

        attempts = []

        def connect():
            attempts.append(time.monotonic())
            if len(attempts) < 4:
                raise ConnectionRefusedError("not yet")
            return "connected"

        result = dial_with_retry(
            connect, timeout=10, describe="test peer",
            initial_backoff=0.005, max_backoff=0.02,
        )
        assert result == "connected"
        assert len(attempts) == 4

    def test_gives_up_at_deadline(self):
        from repro.mpi.transport.tcp import dial_with_retry

        def connect():
            raise ConnectionRefusedError("never")

        with pytest.raises(InternalError, match="test peer"):
            dial_with_retry(
                connect, timeout=0.2, describe="test peer",
                initial_backoff=0.01, max_backoff=0.05,
            )

    def test_non_transient_error_raises_immediately(self):
        from repro.mpi.transport.tcp import dial_with_retry

        attempts = []

        def connect():
            attempts.append(1)
            raise OSError(13, "permission denied")

        with pytest.raises(InternalError):
            dial_with_retry(
                connect, timeout=5, describe="x", initial_backoff=0.01,
            )
        assert len(attempts) == 1


class TestPartialHello:
    def test_accept_loop_survives_garbage_connection(self):
        """A half-open HELLO must not kill the acceptor (satellite b)."""
        from repro.mpi.transport.tcp import TcpTransport

        listen_a = TcpTransport.bind_ephemeral()
        listen_b = TcpTransport.bind_ephemeral()
        port_a = listen_a.getsockname()[1]
        port_b = listen_b.getsockname()[1]
        port_map = {0: port_a, 1: port_b}

        t0 = TcpTransport(0, 2, listen_a, port_map)
        t1 = TcpTransport(1, 2, listen_b, port_map)
        e0, e1 = MatchingEngine(), MatchingEngine()
        t0.attach(e0)
        t1.attach(e1)

        # Poison rank 0's acceptor with a partial HELLO before the real
        # mesh comes up: 2 bytes of a 4-byte rank frame, then hang up.
        poison = socket.create_connection(("127.0.0.1", port_a), timeout=5)
        poison.sendall(struct.pack("<i", 1)[:2])
        poison.close()
        time.sleep(0.05)

        threads = [
            threading.Thread(target=t.establish_mesh) for t in (t0, t1)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30)
        assert not any(th.is_alive() for th in threads), (
            "mesh never formed after poisoned HELLO"
        )
        try:
            t0.send(1, Envelope(0, 0, 1, 9, 2), b"ok")
            ticket = e1.post_recv(0, 0, 9, 16)
            assert ticket.wait(timeout=5) == b"ok"
        finally:
            t0.close()
            t1.close()


_SURVIVOR_SCRIPT = textwrap.dedent("""
    import os, sys, time
    from repro.mpi import RankFailedError, init
    world = init()
    comm = world.comm
    start = time.monotonic()
    try:
        comm.barrier()
        if comm.rank == 1:
            os._exit(7)     # simulated hard crash, no goodbye
        # Survivors park in a blocking recv from the dead rank; the crash
        # may equally surface from the barrier above if rank 1 dies while
        # they are still inside it — both are the fail-fast path.
        comm.recv_bytes(1, 99, 64, timeout=300)
    except RankFailedError as exc:
        elapsed = time.monotonic() - start
        assert exc.rank == 1, exc
        assert "rank 1" in str(exc)
        assert elapsed < 5.0, f"detection took {elapsed:.1f}s"
        with open(sys.argv[1] + f".rank{comm.rank}", "w") as fh:
            fh.write(f"{elapsed:.3f}")
        # Clean departure (sends GOODBYE): the *other* survivor must not
        # misread this rank's exit as a second crash.
        world.finalize()
        os._exit(0)
    os._exit(9)  # recv unexpectedly succeeded
""")


class _DoneProc:
    """Stand-in for a Popen that has already exited with ``rc``."""

    def __init__(self, rc):
        self.rc = rc
        self.args = ["fake"]

    def poll(self):
        return self.rc

    def wait(self, timeout=None):
        return self.rc

    def terminate(self):
        pass

    def kill(self):
        pass


class TestFailureAttribution:
    """Cascade deaths (exit RANK_FAILED_EXIT) never outrank the root cause."""

    def test_prefers_non_cascade_code(self):
        from repro.mpi.exceptions import RANK_FAILED_EXIT
        from repro.mpi.launcher import _attribute_failure

        assert _attribute_failure(
            [(0, RANK_FAILED_EXIT), (1, 41)]
        ) == (1, 41)
        assert _attribute_failure([(0, 3), (1, RANK_FAILED_EXIT)]) == (0, 3)

    def test_all_cascades_falls_back_to_first_observed(self):
        from repro.mpi.exceptions import RANK_FAILED_EXIT
        from repro.mpi.launcher import _attribute_failure

        assert _attribute_failure(
            [(2, RANK_FAILED_EXIT), (0, RANK_FAILED_EXIT)]
        ) == (2, RANK_FAILED_EXIT)
        assert _attribute_failure([]) is None

    def test_supervise_blames_crashed_rank_not_survivor(self):
        """Rank 0 (scanned first) died of the cascade code, rank 1 crashed
        with 41 in the same poll window: the job is attributed to rank 1.
        """
        import threading

        from repro.mpi.exceptions import RANK_FAILED_EXIT
        from repro.mpi.launcher import _supervise

        procs = [_DoneProc(RANK_FAILED_EXIT), _DoneProc(41), _DoneProc(0)]
        exit_codes, first_failure = _supervise(
            procs, timeout=10.0, grace=0.2, interrupted=threading.Event(),
        )
        assert exit_codes == [RANK_FAILED_EXIT, 41, 0]
        assert first_failure == (1, 41)


class TestGraceOption:
    """Satellite: the --grace knob — validation and CLI wiring."""

    def test_negative_grace_rejected_before_spawn(self):
        from repro.mpi.launcher import launch

        with pytest.raises(ValueError, match="grace period must be >= 0"):
            launch(1, ["prog"], failfast_grace=-1.0)

    def test_cli_reports_negative_grace(self, capfd):
        from repro.mpi import launcher

        assert launcher.main(["-n", "1", "--grace", "-2", "prog"]) == 1
        assert "grace period must be >= 0" in capfd.readouterr().err

    def test_grace_flag_and_alias_reach_launch(self, monkeypatch):
        from repro.mpi import launcher

        seen = {}

        def fake_launch(n, command, **kwargs):
            seen.update(kwargs, n=n, command=command)
            return 0

        monkeypatch.setattr(launcher, "launch", fake_launch)
        assert launcher.main(["-n", "2", "--grace", "2.5", "prog"]) == 0
        assert seen["failfast_grace"] == 2.5
        assert launcher.main(
            ["-n", "2", "--failfast-grace", "3.5", "prog"]
        ) == 0
        assert seen["failfast_grace"] == 3.5

    def test_default_grace_when_flag_omitted(self, monkeypatch):
        from repro.mpi import launcher

        seen = {}

        def fake_launch(n, command, **kwargs):
            seen.update(kwargs)
            return 0

        monkeypatch.setattr(launcher, "launch", fake_launch)
        assert launcher.main(["-n", "2", "prog"]) == 0
        assert seen["failfast_grace"] == launcher.DEFAULT_FAILFAST_GRACE
        assert seen["recover"] is False and seen["reliable"] is False


@pytest.mark.slow
class TestFailFastLaunch:
    @pytest.mark.parametrize("transport", ("tcp", "uds"))
    def test_survivors_unhang_and_name_dead_rank(self, tmp_path, transport):
        """Kill rank 1 mid-job: every survivor must get RankFailedError
        naming rank 1 within the detector interval, not the 300s timeout.
        """
        from repro.mpi.launcher import launch

        script = tmp_path / "survivor.py"
        script.write_text(_SURVIVOR_SCRIPT)
        marker = tmp_path / "detected"

        start = time.monotonic()
        rc = launch(
            3, [str(script), str(marker)], timeout=120, transport=transport,
        )
        elapsed = time.monotonic() - start
        assert rc == 7  # the first-failing rank's exit code
        assert elapsed < 60
        for rank in (0, 2):
            path = f"{marker}.rank{rank}"
            assert os.path.exists(path), (
                f"survivor rank {rank} never observed the failure"
            )
            assert float(open(path).read()) < 5.0

    def test_cleanup_after_rank0_crash_uds(self, tmp_path):
        """Satellite c: socket dirs cleaned even when a rank dies hard."""
        from repro.mpi.launcher import launch

        script = tmp_path / "crash0.py"
        script.write_text(
            "import os\n"
            "from repro.mpi import init\n"
            "world = init()\n"
            "world.comm.barrier()\n"
            "if world.rank == 0:\n"
            "    os._exit(13)\n"
            "world.comm.recv_bytes(0, 5, 64, timeout=60)\n"
        )
        before = set(glob.glob(f"{tempfile.gettempdir()}/ombpy-uds-*"))
        rc = launch(2, [str(script)], timeout=120, transport="uds",
                    failfast_grace=6.0)
        assert rc == 13
        after = set(glob.glob(f"{tempfile.gettempdir()}/ombpy-uds-*"))
        assert after <= before, f"leaked socket dirs: {after - before}"

    def test_cleanup_after_rank0_crash_shm(self, tmp_path):
        from repro.mpi.launcher import launch

        script = tmp_path / "crash0.py"
        script.write_text(
            "import os\n"
            "from repro.mpi import init\n"
            "world = init()\n"
            "if world.rank == 0:\n"
            "    os._exit(13)\n"
            "world.comm.recv_bytes(0, 5, 64, timeout=60)\n"
        )
        before = set(glob.glob("/dev/shm/*ombpy-shm-*"))
        rc = launch(2, [str(script)], timeout=120, transport="shm",
                    failfast_grace=6.0)
        assert rc == 13
        after = set(glob.glob("/dev/shm/*ombpy-shm-*"))
        assert after <= before, f"leaked shm segments: {after - before}"

    def test_per_rank_exit_report(self, tmp_path, capfd):
        from repro.mpi.launcher import launch

        script = tmp_path / "fail.py"
        script.write_text(
            "import sys\n"
            "from repro.mpi import init\n"
            "w = init()\n"
            "w.comm.barrier()\n"
            "w.finalize()\n"
            "sys.exit(5 if w.rank == 1 else 0)\n"
        )
        rc = launch(2, [str(script)], timeout=120)
        assert rc == 5
        err = capfd.readouterr().err
        assert "rank 1 failed first" in err
        assert "per-rank exit codes" in err

    def test_recover_succeeds_when_survivors_finish(self, tmp_path, capfd):
        """Satellite: --recover turns a partial failure into success."""
        from repro.mpi.launcher import launch

        script = tmp_path / "partial.py"
        script.write_text(textwrap.dedent("""
            import sys
            from repro.mpi import init
            w = init()
            w.comm.barrier()
            w.finalize()
            sys.exit(5 if w.rank == 1 else 0)
        """))
        rc = launch(3, [str(script)], timeout=120, recover=True)
        assert rc == 0
        err = capfd.readouterr().err
        assert "recovered" in err and "rank 1 failed" in err
        # The very same job under default fail-fast supervision reports
        # the failing rank's code.
        assert launch(3, [str(script)], timeout=120) == 5

    def test_recover_still_fails_when_no_rank_finishes(self, tmp_path):
        from repro.mpi.launcher import launch

        script = tmp_path / "allfail.py"
        script.write_text(textwrap.dedent("""
            import sys
            from repro.mpi import init
            w = init()
            w.comm.barrier()
            w.finalize()
            sys.exit(3)
        """))
        assert launch(2, [str(script)], timeout=120, recover=True) == 3

    def test_fault_seed_replay_is_identical(self, tmp_path):
        """Same --fault-seed => byte-identical injected-event logs."""
        from repro.mpi.launcher import launch

        script = tmp_path / "job.py"
        script.write_text(textwrap.dedent("""
            from repro.mpi import init
            world = init()
            comm = world.comm
            peer = 1 - comm.rank
            for i in range(40):
                comm.send_bytes(bytes([i % 256]) * (i + 1), peer, i)
            for i in range(40):
                data, _ = comm.recv_bytes(peer, i, 4096, timeout=60)
                assert data == bytes([i % 256]) * (i + 1)
            comm.barrier()
            world.finalize()
        """))

        logs = []
        for attempt in ("a", "b"):
            log = tmp_path / f"events-{attempt}"
            # Delay-only plan: deterministic *and* safe for a workload
            # that expects every message to arrive exactly once.
            plan = tmp_path / f"plan-{attempt}.json"
            plan.write_text(
                FaultPlan(seed=21, delay=0.25, delay_hold=3).to_json()
            )
            rc = launch(
                2, [str(script)], timeout=120,
                faults=str(plan), fault_log=str(log),
            )
            assert rc == 0
            logs.append({
                rank: open(f"{log}.rank{rank}").read() for rank in (0, 1)
            })
        assert logs[0] == logs[1]
        assert any(logs[0][r] for r in (0, 1)), "no events were injected"
