"""Coverage for bindings paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.bindings import Comm
from repro.mpi import constants as C
from repro.mpi.status import Status
from repro.mpi.world import run_on_threads


def bind(fn):
    return lambda rt: fn(Comm(rt))


class TestLowercaseSendrecv:
    def test_object_exchange(self):
        def work(comm):
            other = 1 - comm.rank
            got = comm.sendrecv({"from": comm.rank}, other, 1, other, 1)
            assert got == {"from": other}
        run_on_threads(2, bind(work))


class TestRecvStatusLowercase:
    def test_recv_fills_status(self):
        def work(comm):
            if comm.rank == 0:
                st = Status()
                obj = comm.recv(C.ANY_SOURCE, C.ANY_TAG, st)
                assert obj == [1, 2]
                assert st.Get_source() == 1
                assert st.Get_tag() == 42
            else:
                comm.send([1, 2], 0, 42)
        run_on_threads(2, bind(work))


class TestSendrecvStatusUppercase:
    def test_status_filled(self):
        def work(comm):
            other = 1 - comm.rank
            out = np.zeros(2, dtype="i8")
            st = Status()
            comm.Sendrecv(
                np.full(2, comm.rank, dtype="i8"), other, 5,
                out, other, 5, st,
            )
            assert st.Get_source() == other
            assert out[0] == other
        run_on_threads(2, bind(work))


class TestReduceOps:
    @pytest.mark.parametrize("opname,expect_fn", [
        ("MAX", max), ("MIN", min),
    ])
    def test_allreduce_extrema(self, opname, expect_fn):
        from repro.mpi import ops as mpi_ops

        op = getattr(mpi_ops, opname)

        def work(comm):
            recv = np.zeros(1)
            comm.Allreduce(np.array([float(comm.rank)]), recv, op)
            assert recv[0] == expect_fn(range(comm.size))
        run_on_threads(4, bind(work))

    def test_lowercase_reduce_none_on_nonroot(self):
        def work(comm):
            out = comm.reduce(comm.rank + 1, root=1)
            if comm.rank == 1:
                assert out == sum(range(1, comm.size + 1))
            else:
                assert out is None
        run_on_threads(3, bind(work))


class TestRunnerEdgeCases:
    def test_no_participants_raises(self):
        """A benchmark where no rank reports must fail loudly."""
        from repro.core import Options
        from repro.core.runner import BenchContext, Benchmark

        class Ghost(Benchmark):
            name = "ghost"
            min_ranks = 1

            def run_size(self, ctx, size, iterations, warmup):
                return None  # nobody measures anything

        opts = Options(min_size=1, max_size=1, iterations=1, warmup=0)

        def work(comm):
            with pytest.raises(RuntimeError, match="no rank reported"):
                Ghost().run(BenchContext(comm, opts))

        run_on_threads(2, work)

    def test_reduce_stats_all_ranks(self):
        from repro.core.options import Options
        from repro.core.runner import BenchContext

        def work(comm):
            ctx = BenchContext(comm, Options())
            avg, mn, mx, count = ctx.reduce_stats(float(comm.rank + 1))
            assert count == comm.size
            assert mn == 1.0 and mx == comm.size
            assert avg == pytest.approx(
                sum(range(1, comm.size + 1)) / comm.size
            )

        run_on_threads(4, work)

    def test_reduce_stats_partial_participation(self):
        from repro.core.options import Options
        from repro.core.runner import BenchContext

        def work(comm):
            ctx = BenchContext(comm, Options())
            value = 10.0 if comm.rank == 0 else None
            avg, mn, mx, count = ctx.reduce_stats(value)
            assert count == 1
            assert avg == mn == mx == 10.0

        run_on_threads(3, work)
