"""The finding model shared by the static linter and the runtime verifier.

A :class:`Finding` is one diagnostic: a stable rule ID (``OMB001``...),
a severity, a location, and a human-readable message.  The linter emits
them for source locations; the verifier emits them for runtime events
(where ``path`` is a rank label and ``line`` is 0).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

#: Ordered from most to least severe; used for sorting report output.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from the linter or the runtime verifier."""

    rule: str        # stable ID, e.g. "OMB001"
    severity: str    # "error" | "warning"
    path: str        # source file (linter) or rank label (verifier)
    line: int        # 1-based line, 0 for runtime findings
    col: int         # 1-based column, 0 for runtime findings
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: ID message`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by file, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def findings_to_json(findings: list[Finding]) -> str:
    """Serialize findings for ``--format json`` consumers (CI, editors)."""
    return json.dumps(
        {
            "count": len(findings),
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "findings": [asdict(f) for f in sort_findings(findings)],
        },
        indent=2,
    )
