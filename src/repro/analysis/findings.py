"""The finding model shared by the static linter and the runtime verifier.

A :class:`Finding` is one diagnostic: a stable rule ID (``OMB001``...),
a severity, a location, and a human-readable message.  The linter emits
them for source locations; the verifier emits them for runtime events
(where ``path`` is a rank label and ``line`` is 0).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

#: Ordered from most to least severe; used for sorting report output.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from the linter or the runtime verifier."""

    rule: str        # stable ID, e.g. "OMB001"
    severity: str    # "error" | "warning"
    path: str        # source file (linter) or rank label (verifier)
    line: int        # 1-based line, 0 for runtime findings
    col: int         # 1-based column, 0 for runtime findings
    message: str
    end_line: int = 0  # last line of the flagged node; 0 when unknown

    def format(self) -> str:
        """Render in the conventional ``path:line:col: ID message`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by file, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def findings_to_json(findings: list[Finding]) -> str:
    """Serialize findings for ``--format json`` consumers (CI, editors)."""
    return json.dumps(
        {
            "count": len(findings),
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "findings": [asdict(f) for f in sort_findings(findings)],
        },
        indent=2,
    )


#: SARIF 2.1.0 constants (the format GitHub code scanning ingests).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def findings_to_sarif(
    findings: list[Finding],
    rule_docs: dict[str, str] | None = None,
    tool_name: str = "ombpy-lint",
) -> str:
    """Serialize findings as a SARIF 2.1.0 log (``--format sarif``).

    ``rule_docs`` maps rule IDs to one-line descriptions; the driver's
    rule metadata covers every rule that appears in ``findings`` plus any
    documented rule, so code-scanning UIs can show the catalogue.  Runtime
    findings carry line 0, which SARIF forbids — regions clamp to line 1.
    """
    rule_docs = rule_docs or {}
    rule_ids = sorted(set(rule_docs) | {f.rule for f in findings})
    results = []
    for f in sort_findings(findings):
        region = {
            "startLine": max(f.line, 1),
            "startColumn": max(f.col, 1),
        }
        if f.end_line > f.line:
            region["endLine"] = f.end_line
        results.append({
            "ruleId": f.rule,
            "level": _SARIF_LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": region,
                },
            }],
        })
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri":
                        "https://github.com/ombpy/repro/blob/main/docs/"
                        "analysis.md",
                    "rules": [
                        {
                            "id": rule_id,
                            "shortDescription": {
                                "text": rule_docs.get(rule_id, rule_id),
                            },
                        }
                        for rule_id in rule_ids
                    ],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)
