"""Buffer-race sanitizer — happens-before tracking for non-blocking buffers.

MPI forbids touching a communication buffer while a non-blocking operation
is in flight: writing a buffer after ``Isend`` posts it, reading or writing
an ``Irecv`` buffer before its ``Wait``/``Test``, pinning overlapping
regions under two pending requests, or mutating a ``Bcast`` buffer while
the collective is executing all silently corrupt data (and, per Hunold &
Carpen-Amarie, corrupt *measurements*).  None of that is visible to the
syntactic linter or to the deadlock verifier.

Activated with::

    with repro.analysis.sanitize(comm) as s:
        ...   # any bindings-level traffic on this rank

or for benchmark runs via the driver's ``--sanitize`` flag.  While active,
the sanitizer installs itself on this rank's endpoint (duck-typed: the
runtime and bindings consult ``endpoint.sanitizer`` without importing this
module) and gives every resolved :class:`~repro.bindings.buffers.BufferSpec`
posted to a non-blocking operation an ownership record — a :class:`Pin`
holding the buffer's host address interval, an Adler-32 content snapshot,
and the posting rank's vector-clock epoch.  Per-rank vector clocks advance
at request post/completion and at collective entry/exit (merging every
rank's clock through the shared fabric state on the threads transport), so
each diagnostic can order the post and the conflicting access.

Detected hazards (runtime rule IDs, continuing the verifier's OMB1xx band):

* **OMB201** write-after-Isend — the send buffer's checksum changed
  between post and wait/test (:class:`WriteAfterPostError`).
* **OMB202** read-or-write-before-Wait — a blocking operation touches a
  buffer pinned by a pending ``Irecv``, or an ``Irecv`` buffer's contents
  changed before completion (:class:`ReadBeforeWaitError`).
* **OMB203** overlapping pins — two pending requests pin overlapping
  byte ranges with at least one writer (:class:`OverlappingPinError`).
  Two pending *sends* of one buffer are legal (concurrent reads) and
  deliberately not flagged — bandwidth tests post whole windows of the
  same source buffer.
* **OMB204** buffer mutated during a collective — e.g. a non-root rank's
  ``Bcast`` buffer changed while the collective executed
  (:class:`CollectiveBufferError`).
* **OMB205** pins still pending when the sanitized region exits
  (recorded as warning findings; never raises).

Content snapshots are exact on the threads transport, where ranks share an
address space; on process transports the same checks degrade gracefully to
rank-local epoch/checksum validation (each rank still catches its own
misuse, which is where these bugs live).
"""

from __future__ import annotations

import os
import sys
import threading
import weakref
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

from .findings import Finding
from .verifier import _resolve_endpoint


class RaceError(RuntimeError):
    """Base class for buffer-race diagnostics."""


class WriteAfterPostError(RaceError):
    """An Isend buffer was modified while the send was in flight."""


class ReadBeforeWaitError(RaceError):
    """An Irecv buffer was read or written before Wait/Test completed it."""


class OverlappingPinError(RaceError):
    """Two pending non-blocking operations pin overlapping buffer bytes."""


class CollectiveBufferError(RaceError):
    """A buffer participating in a collective was mutated mid-collective."""


RULE_WRITE_AFTER_POST = "OMB201"
RULE_TOUCH_BEFORE_WAIT = "OMB202"
RULE_OVERLAPPING_PINS = "OMB203"
RULE_COLLECTIVE_MUTATION = "OMB204"
RULE_LEAKED_PIN = "OMB205"


class VectorClock:
    """One rank's logical clock over all ranks of the job.

    Ticks on every ownership event (post, completion, collective entry and
    exit); merges with every peer's clock at collective boundaries, which
    are the program's cross-rank synchronization points.  Two epochs are
    *concurrent* when neither dominates — exactly the situation in which a
    buffer access races a pending operation.
    """

    __slots__ = ("rank", "_v")

    def __init__(self, rank: int, size: int) -> None:
        self.rank = rank
        self._v = [0] * max(size, rank + 1)

    def tick(self) -> tuple:
        self._v[self.rank] += 1
        return tuple(self._v)

    def merge(self, other: tuple) -> None:
        for i, x in enumerate(other):
            if i < len(self._v) and x > self._v[i]:
                self._v[i] = x

    def snapshot(self) -> tuple:
        return tuple(self._v)

    @staticmethod
    def leq(a: tuple, b: tuple) -> bool:
        """Does epoch ``a`` happen-before-or-equal epoch ``b``?"""
        return len(a) == len(b) and all(x <= y for x, y in zip(a, b))

    @staticmethod
    def concurrent(a: tuple, b: tuple) -> bool:
        return not VectorClock.leq(a, b) and not VectorClock.leq(b, a)


class _RaceState:
    """Cross-rank sanitizer state, shared through the transport fabric.

    Mirrors the verifier's ``_SharedState``: on the threads transport all
    ranks resolve to one instance (anchored on the ``InprocFabric``) so
    collective boundaries can merge every rank's vector clock; process
    transports get a per-process instance and rank-local clocks.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.clocks: dict[int, VectorClock] = {}

    def register(self, rank: int, clock: VectorClock) -> None:
        with self.lock:
            self.clocks[rank] = clock

    def unregister(self, rank: int) -> None:
        with self.lock:
            self.clocks.pop(rank, None)

    def merge_peers_into(self, clock: VectorClock) -> None:
        """Collective boundary: absorb every registered peer's epoch."""
        with self.lock:
            snapshots = [
                c.snapshot() for r, c in self.clocks.items()
                if r != clock.rank
            ]
        for snap in snapshots:
            clock.merge(snap)


#: fabric/transport -> shared clock state for all ranks on it.
_STATES: "weakref.WeakKeyDictionary[object, _RaceState]" = \
    weakref.WeakKeyDictionary()
_STATES_LOCK = threading.Lock()


def _race_state_for(transport: object) -> _RaceState:
    anchor = getattr(transport, "_fabric", None)
    if anchor is None:
        anchor = transport
    with _STATES_LOCK:
        state = _STATES.get(anchor)
        if state is None:
            state = _RaceState()
            _STATES[anchor] = state
        return state


# -- locating the user's call site ----------------------------------------

_REPRO_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: Frames in these packages are plumbing, not the user's post/wait site.
_SKIP_DIRS = tuple(
    os.path.join(_REPRO_DIR, d) + os.sep
    for d in ("analysis", "bindings", "mpi")
)


def _user_location() -> str:
    """``file:line`` of the nearest stack frame outside the MPI plumbing."""
    frame = sys._getframe(1)
    fallback = None
    while frame is not None:
        fname = frame.f_code.co_filename
        where = f"{fname}:{frame.f_lineno}"
        if fallback is None:
            fallback = where
        if not os.path.abspath(fname).startswith(_SKIP_DIRS):
            return where
        frame = frame.f_back
    return fallback or "<unknown>"


@dataclass
class Pin:
    """Ownership record for one buffer under one pending operation."""

    op: str                     # "Isend" / "Irecv" / "Send_init" / ...
    rank: int
    lo: int                     # host address interval [lo, hi)
    hi: int
    nbytes: int
    view: memoryview            # live view, re-checksummed at release
    checksum: int               # Adler-32 snapshot taken at post time
    epoch: tuple                # poster's vector-clock epoch
    where: str                  # user source location of the post
    desc: str                   # human-readable buffer description
    writes: bool                # operation writes the buffer (Irecv family)
    verify: bool                # re-checksum at release
    owner: "Sanitizer" = field(repr=False, default=None)
    released: bool = False

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.nbytes > 0 and hi > self.lo and lo < self.hi

    def describe(self) -> str:
        return (
            f"{self.desc} pinned by '{self.op}' posted at {self.where} "
            f"(epoch {self.epoch})"
        )

    def release(self) -> None:
        """Complete the pinning operation (called from wait/test paths)."""
        if self.owner is not None:
            self.owner.complete(self)


def _describe_view(view: memoryview, nbytes: int, obj=None) -> str:
    name = type(obj).__name__ if obj is not None else "buffer"
    return f"{name} buffer of {nbytes} bytes"


def _addr_of(view: memoryview) -> int:
    """Host address of a C-contiguous byte view (0 for empty views)."""
    if view.nbytes == 0:
        return 0
    import numpy as np

    return int(
        np.frombuffer(view, dtype=np.uint8).__array_interface__["data"][0]
    )


class Sanitizer:
    """Per-rank sanitizer handle, installed on one endpoint.

    The bindings layer calls in through duck-typed hook points: non-blocking
    posts create pins (``pin_spec``/``pin_view``), request wait/test paths
    release them (``complete``), blocking operations declare their accesses
    (``check_read``/``check_write``), and collectives bracket their buffers
    (``coll_begin``/``coll_end``) and synchronize clocks (``on_collective``,
    called from the collective-tag reservation in the runtime).
    """

    def __init__(self, endpoint, shared: _RaceState,
                 strict: bool = True) -> None:
        self.endpoint = endpoint
        self.rank: int = endpoint.world_rank
        self.shared = shared
        self.strict = strict
        self.findings: list[Finding] = []
        self.clock = VectorClock(self.rank, endpoint.world_size)
        self._pins: list[Pin] = []
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> None:
        self.shared.register(self.rank, self.clock)
        self.endpoint.sanitizer = self

    def detach(self) -> None:
        if self.endpoint.sanitizer is self:
            self.endpoint.sanitizer = None
        self.shared.unregister(self.rank)

    def finish(self) -> None:
        """End-of-region check: report (never raise) still-pending pins."""
        with self._lock:
            leaked = [p for p in self._pins if not p.released]
            self._pins = []
        for pin in leaked:
            self.findings.append(Finding(
                rule=RULE_LEAKED_PIN, severity="warning",
                path=f"rank {self.rank}", line=0, col=0,
                message=(
                    f"rank {self.rank}: {pin.describe()} was still pending "
                    "when the sanitized region exited — the operation was "
                    "never completed with wait/test"
                ),
            ))

    def _report(self, rule: str, message: str, exc_type) -> None:
        self.findings.append(Finding(
            rule=rule, severity="error", path=f"rank {self.rank}",
            line=0, col=0, message=message,
        ))
        if self.strict:
            raise exc_type(message)

    # -- pin lifecycle ---------------------------------------------------
    def pin_spec(self, spec, op: str) -> Pin:
        """Pin a resolved BufferSpec at non-blocking post time."""
        lo, hi = spec.addr_range()
        return self._pin(
            lo, hi, spec.nbytes, spec.view, spec.checksum(),
            op=op, desc=spec.describe(),
            writes=op in ("Irecv",), verify=True,
        )

    def pin_view(self, view: memoryview, op: str, writes: bool,
                 verify: bool, obj=None) -> Pin:
        """Pin a raw byte view (persistent-request path)."""
        lo = _addr_of(view)
        return self._pin(
            lo, lo + view.nbytes, view.nbytes, view, zlib.adler32(view),
            op=op, desc=_describe_view(view, view.nbytes, obj),
            writes=writes, verify=verify,
        )

    def _pin(self, lo: int, hi: int, nbytes: int, view: memoryview,
             checksum: int, *, op: str, desc: str, writes: bool,
             verify: bool) -> Pin:
        where = _user_location()
        with self._lock:
            pending = [p for p in self._pins if not p.released]
        # Two pending reads (send+send) of one buffer are legal; any
        # overlap involving a writer is not.
        for prev in pending:
            if prev.overlaps(lo, hi) and (writes or prev.writes):
                self._report(
                    RULE_OVERLAPPING_PINS,
                    f"rank {self.rank}: '{op}' posted at {where} pins "
                    f"bytes [{lo:#x}, {hi:#x}) of {desc}, overlapping "
                    f"{prev.describe()} — two pending operations may not "
                    "share buffer bytes unless both are sends",
                    OverlappingPinError,
                )
        pin = Pin(
            op=op, rank=self.rank, lo=lo, hi=hi, nbytes=nbytes, view=view,
            checksum=checksum, epoch=self.clock.tick(), where=where,
            desc=desc, writes=writes, verify=verify, owner=self,
        )
        with self._lock:
            self._pins.append(pin)
        return pin

    def complete(self, pin: Pin) -> None:
        """The pinning operation completed (wait/test); verify and unpin."""
        if pin.released:
            return
        pin.released = True
        with self._lock:
            try:
                self._pins.remove(pin)
            except ValueError:
                pass
        self.clock.tick()
        if not pin.verify or pin.nbytes == 0:
            return
        now = zlib.adler32(pin.view)
        if now == pin.checksum:
            return
        here = _user_location()
        if pin.writes:
            self._report(
                RULE_TOUCH_BEFORE_WAIT,
                f"rank {self.rank}: {pin.desc} was written between the "
                f"'{pin.op}' post at {pin.where} and its completion at "
                f"{here} — receive-buffer contents are undefined until "
                "Wait/Test",
                ReadBeforeWaitError,
            )
        else:
            self._report(
                RULE_WRITE_AFTER_POST,
                f"rank {self.rank}: {pin.desc} was written while "
                f"'{pin.op}' posted at {pin.where} was in flight "
                f"(detected at completion, {here}) — MPI forbids "
                "modifying a send buffer before wait/test",
                WriteAfterPostError,
            )

    # -- blocking-access checks ------------------------------------------
    def check_read(self, spec, op: str) -> None:
        """A blocking operation is about to read ``spec``'s bytes."""
        lo, hi = spec.addr_range()
        for pin in self._pending_overlaps(lo, hi):
            if pin.writes:
                self._report(
                    RULE_TOUCH_BEFORE_WAIT,
                    f"rank {self.rank}: '{op}' at {_user_location()} reads "
                    f"{spec.describe()}, which overlaps {pin.describe()} — "
                    "the receive buffer is undefined until Wait/Test "
                    "completes it",
                    ReadBeforeWaitError,
                )

    def check_write(self, spec, op: str) -> None:
        """A blocking operation is about to write ``spec``'s bytes."""
        lo, hi = spec.addr_range()
        for pin in self._pending_overlaps(lo, hi):
            if pin.writes:
                self._report(
                    RULE_TOUCH_BEFORE_WAIT,
                    f"rank {self.rank}: '{op}' at {_user_location()} "
                    f"writes {spec.describe()}, which overlaps "
                    f"{pin.describe()} — the buffer belongs to the pending "
                    "receive until Wait/Test completes it",
                    ReadBeforeWaitError,
                )
            else:
                self._report(
                    RULE_WRITE_AFTER_POST,
                    f"rank {self.rank}: '{op}' at {_user_location()} "
                    f"writes {spec.describe()}, which overlaps "
                    f"{pin.describe()} — MPI forbids modifying a send "
                    "buffer before wait/test",
                    WriteAfterPostError,
                )

    def _pending_overlaps(self, lo: int, hi: int) -> list[Pin]:
        with self._lock:
            return [
                p for p in self._pins
                if not p.released and p.overlaps(lo, hi)
            ]

    # -- collectives -----------------------------------------------------
    def coll_begin(self, spec, name: str, root: int | None = None) -> Pin:
        """Entering a collective that communicates ``spec``.

        Returns a token pin the matching :meth:`coll_end` consumes.  Entry
        is a synchronization event: tick, and absorb peer epochs.
        """
        self.clock.tick()
        self.shared.merge_peers_into(self.clock)
        lo, hi = spec.addr_range()
        label = name if root is None else f"{name}(root={root})"
        return Pin(
            op=label, rank=self.rank, lo=lo, hi=hi, nbytes=spec.nbytes,
            view=spec.view, checksum=spec.checksum(),
            epoch=self.clock.snapshot(), where=_user_location(),
            desc=spec.describe(), writes=False, verify=True, owner=self,
        )

    def coll_end(self, token: Pin, wrote: bool = False) -> None:
        """Leaving the collective entered at :meth:`coll_begin`.

        ``wrote`` marks buffers the collective itself legitimately filled
        (a non-root rank's received data); for all others the contents
        must be byte-identical to the entry snapshot.
        """
        self.shared.merge_peers_into(self.clock)
        self.clock.tick()
        if wrote or token.nbytes == 0:
            return
        if zlib.adler32(token.view) != token.checksum:
            self._report(
                RULE_COLLECTIVE_MUTATION,
                f"rank {self.rank}: {token.desc} was mutated during "
                f"collective '{token.op}' entered at {token.where} "
                f"(detected at exit, {_user_location()}; entry epoch "
                f"{token.epoch}) — all ranks' buffers must stay "
                "untouched while the collective executes",
                CollectiveBufferError,
            )

    def on_collective(self, tag: int) -> None:
        """Runtime-level hook: a collective reserved its internal tag."""
        self.clock.tick()
        self.shared.merge_peers_into(self.clock)


@contextmanager
def sanitize(target, *, strict: bool = True):
    """Sanitize all buffer traffic of this rank inside the ``with`` block.

    ``target`` is any communicator-bearing object (runtime ``Comm`` or
    ``World``, bindings ``Comm``/``CommWorld``, or an ``Endpoint``), the
    same resolution as :func:`repro.analysis.verify`.  ``strict=True``
    (default) raises a :class:`RaceError` subclass at the detection point;
    ``strict=False`` records findings on ``Sanitizer.findings`` instead.

    Composes freely with ``verify`` — the two install on different hook
    points of the same endpoint.
    """
    endpoint = _resolve_endpoint(target)
    shared = _race_state_for(endpoint.transport)
    s = Sanitizer(endpoint, shared, strict=strict)
    s.attach()
    try:
        yield s
    except BaseException:
        raise
    else:
        s.finish()
    finally:
        s.detach()
