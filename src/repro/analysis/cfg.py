"""Per-function control-flow graphs for the whole-program analyses.

The OMB001-010 rules work on a flat statement list per scope; the
performance family (OMB301-310) and the static communication-graph pass
(OMB401-403) need more structure: *where* a statement sits relative to
loops, and which parts of a function are reachable.  This module builds a
classic basic-block CFG per function (or module top level):

* every block holds the statements that execute together, in order;
* edges follow Python's structured control flow — ``if``/``else`` arms,
  loop back-edges, ``break``/``continue``, ``return``/``raise`` to the
  exit block, exception edges from a ``try`` body into its handlers;
* every block is annotated with its **loop-nesting depth**, and the CFG
  carries a ``node_depth`` map from every AST node (statements *and* the
  expressions inside them) to the depth of the innermost enclosing loop —
  the "is this on a per-message / per-iteration path" question the perf
  rules ask constantly;
* :func:`dominators` computes the classic iterative dominator sets, used
  by tests to assert the graph is well-formed (strict dominance must be
  antisymmetric) and available to future path-sensitive rules.

Invariants (property-tested over random ASTs in the test suite):

* the entry and exit blocks exist and are distinct;
* every block except the exit has at least one successor;
* predecessor/successor sets are mutually consistent;
* strict dominance is acyclic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Block",
    "CFG",
    "build_cfg",
    "dominators",
]


@dataclass
class Block:
    """One basic block: statements that execute as a unit."""

    id: int
    #: loop-nesting depth (0 = outside any loop in this function)
    depth: int = 0
    #: statements anchored in this block (compound statements anchor
    #: their *header* here; their bodies live in successor blocks)
    statements: list[ast.stmt] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)
    #: diagnostic label ("entry", "exit", "loop-header", "body", ...)
    label: str = "body"


class CFG:
    """Control-flow graph of one function body (or the module top level)."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self.entry: int = 0
        self.exit: int = 0
        #: id(ast node) -> loop-nesting depth of the innermost loop
        #: containing it (covers statements and their sub-expressions)
        self.node_depth: dict[int, int] = {}

    # -- queries -----------------------------------------------------------
    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def depth_of(self, node: ast.AST) -> int:
        """Loop-nesting depth of an AST node (0 when unknown)."""
        return self.node_depth.get(id(node), 0)

    def max_depth(self) -> int:
        return max((b.depth for b in self.blocks.values()), default=0)

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry block."""
        seen = {self.entry}
        todo = [self.entry]
        while todo:
            for succ in self.blocks[todo.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    todo.append(succ)
        return seen

    def check(self) -> list[str]:
        """Well-formedness violations (empty list == healthy graph)."""
        problems = []
        if self.entry == self.exit:
            problems.append("entry and exit blocks coincide")
        for bid, block in self.blocks.items():
            if bid != self.exit and not block.succs:
                problems.append(f"non-exit block {bid} has no successor")
            for succ in block.succs:
                if succ not in self.blocks:
                    problems.append(f"edge {bid}->{succ} dangles")
                elif bid not in self.blocks[succ].preds:
                    problems.append(f"edge {bid}->{succ} missing back-link")
            for pred in block.preds:
                if pred not in self.blocks:
                    problems.append(f"pred {pred}->{bid} dangles")
                elif bid not in self.blocks[pred].succs:
                    problems.append(f"pred {pred}->{bid} missing forward-link")
        return problems


class _Builder:
    """Single-pass structured-statement walk producing the CFG."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self._next_id = 0
        self._depth = 0
        #: stack of (loop_header_id, loop_after_id) for break/continue
        self._loops: list[tuple[int, int]] = []

    # -- plumbing ----------------------------------------------------------
    def _new_block(self, label: str = "body",
                   depth: int | None = None) -> Block:
        block = Block(
            id=self._next_id,
            depth=self._depth if depth is None else depth,
            label=label,
        )
        self._next_id += 1
        self.cfg.blocks[block.id] = block
        return block

    def _edge(self, src: Block | None, dst: Block) -> None:
        if src is None:
            return
        src.succs.add(dst.id)
        dst.preds.add(src.id)

    def _anchor(self, stmt: ast.stmt, block: Block) -> None:
        block.statements.append(stmt)
        for node in ast.walk(stmt):
            # Innermost-statement wins: nested loop bodies re-anchor their
            # own statements at a deeper depth afterwards, overwriting the
            # shallower annotation written by the enclosing header here.
            self.cfg.node_depth[id(node)] = self._depth

    # -- entry point -------------------------------------------------------
    def build(self, node: ast.AST) -> CFG:
        entry = self._new_block("entry")
        exit_block = self._new_block("exit")
        self.cfg.entry = entry.id
        self.cfg.exit = exit_block.id
        body = getattr(node, "body", None) or []
        end = self._stmts(body, entry)
        self._edge(end, exit_block)
        # Safety net for approximated constructs: any block left without a
        # successor (other than the exit) falls through to the exit, which
        # keeps the "non-exit blocks have successors" invariant airtight.
        for block in self.cfg.blocks.values():
            if block.id != exit_block.id and not block.succs:
                self._edge(block, exit_block)
        return self.cfg

    # -- statement dispatch ------------------------------------------------
    def _stmts(self, body: list[ast.stmt],
               current: Block | None) -> Block | None:
        """Thread ``body`` through the graph; returns the fall-through block
        (None when every path ended in return/raise/break/continue)."""
        for stmt in body:
            if current is None:
                # Statically unreachable code still gets blocks so the
                # depth annotation and per-statement queries stay total.
                current = self._new_block("unreachable")
            self._anchor(stmt, current)
            if isinstance(stmt, ast.If):
                current = self._if(stmt, current)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current = self._loop(stmt, current)
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                current = self._try(stmt, current)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = self._stmts(stmt.body, current)
            elif isinstance(stmt, ast.Match):
                current = self._match(stmt, current)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self._edge(current, self.cfg.blocks[self.cfg.exit])
                current = None
            elif isinstance(stmt, ast.Break):
                if self._loops:
                    _header, after = self._loops[-1]
                    self._edge(current, self.cfg.blocks[after])
                else:
                    self._edge(current, self.cfg.blocks[self.cfg.exit])
                current = None
            elif isinstance(stmt, ast.Continue):
                if self._loops:
                    header, _after = self._loops[-1]
                    self._edge(current, self.cfg.blocks[header])
                else:
                    self._edge(current, self.cfg.blocks[self.cfg.exit])
                current = None
            # Function/class definitions and plain statements are linear;
            # nested function bodies get their own CFGs, not edges here.
        return current

    def _if(self, stmt: ast.If, current: Block) -> Block | None:
        then_block = self._new_block("then")
        self._edge(current, then_block)
        then_end = self._stmts(stmt.body, then_block)
        if stmt.orelse:
            else_block = self._new_block("else")
            self._edge(current, else_block)
            else_end = self._stmts(stmt.orelse, else_block)
        else:
            else_end = current  # condition false: fall through
        ends = [e for e in (then_end, else_end) if e is not None]
        if not ends:
            return None
        after = self._new_block("after-if")
        for end in ends:
            self._edge(end, after)
        return after

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              current: Block) -> Block:
        header = self._new_block("loop-header")
        self._edge(current, header)
        after = self._new_block("after-loop")
        self._loops.append((header.id, after.id))
        self._depth += 1
        body_block = self._new_block("loop-body")
        self._edge(header, body_block)
        body_end = self._stmts(stmt.body, body_block)
        self._edge(body_end, header)  # back edge
        self._depth -= 1
        self._loops.pop()
        if stmt.orelse:
            else_block = self._new_block("loop-else")
            self._edge(header, else_block)
            else_end = self._stmts(stmt.orelse, else_block)
            self._edge(else_end, after)
        else:
            self._edge(header, after)
        return after

    def _try(self, stmt: ast.stmt, current: Block) -> Block | None:
        body_block = self._new_block("try-body")
        self._edge(current, body_block)
        body_end = self._stmts(stmt.body, body_block)
        ends: list[Block] = []
        for handler in getattr(stmt, "handlers", []):
            handler_block = self._new_block("except")
            # Any point in the try body may raise; approximating with an
            # edge from the body's *start* keeps handlers reachable.
            self._edge(body_block, handler_block)
            handler_end = self._stmts(handler.body, handler_block)
            if handler_end is not None:
                ends.append(handler_end)
        if getattr(stmt, "orelse", None):
            else_block = self._new_block("try-else")
            self._edge(body_end, else_block)
            body_end = self._stmts(stmt.orelse, else_block)
        if body_end is not None:
            ends.append(body_end)
        if getattr(stmt, "finalbody", None):
            final_block = self._new_block("finally")
            for end in ends:
                self._edge(end, final_block)
            if not ends:
                # All paths ended; finally still runs on the way out.
                self._edge(body_block, final_block)
            return self._stmts(stmt.finalbody, final_block)
        if not ends:
            return None
        after = self._new_block("after-try")
        for end in ends:
            self._edge(end, after)
        return after

    def _match(self, stmt: ast.Match, current: Block) -> Block | None:
        ends: list[Block] = []
        exhaustive = False
        for case in stmt.cases:
            case_block = self._new_block("case")
            self._edge(current, case_block)
            case_end = self._stmts(case.body, case_block)
            if case_end is not None:
                ends.append(case_end)
            if isinstance(case.pattern, ast.MatchAs) \
                    and case.pattern.pattern is None and case.guard is None:
                exhaustive = True  # bare `case _:` catches everything
        if not exhaustive:
            ends.append(current)  # no case matched: fall through
        if not ends:
            return None
        after = self._new_block("after-match")
        for end in ends:
            self._edge(end, after)
        return after


def build_cfg(node: ast.AST) -> CFG:
    """Build the CFG of one function (or ``ast.Module``) body."""
    return _Builder().build(node)


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """Dominator sets via the classic iterative dataflow algorithm.

    ``doms[b]`` is the set of blocks that dominate ``b`` (including ``b``
    itself).  Blocks unreachable from the entry dominate only themselves.
    """
    reachable = cfg.reachable()
    doms: dict[int, set[int]] = {}
    for bid in cfg.blocks:
        if bid == cfg.entry:
            doms[bid] = {bid}
        elif bid in reachable:
            doms[bid] = set(reachable)
        else:
            doms[bid] = {bid}
    changed = True
    while changed:
        changed = False
        for bid in cfg.blocks:
            if bid == cfg.entry or bid not in reachable:
                continue
            preds = [p for p in cfg.blocks[bid].preds if p in reachable]
            new = set(reachable)
            for pred in preds:
                new &= doms[pred]
            new |= {bid}
            if new != doms[bid]:
                doms[bid] = new
                changed = True
    return doms
