"""Rank-symbolic protocol verifier: OMB501-506.

The commgraph pass (OMB4xx) matches send/recv *sites* syntactically; it
cannot see a deadlock whose shape only exists once ``rank`` takes a
value — the classic shifted ring ``recv((rank-1) % size)`` before
``send((rank+1) % size)`` looks perfectly paired site-by-site.  This
pass closes that gap: for each function it **abstractly interprets**
the body once per concrete ``(rank, N)`` over a ladder of sample sizes,
folding every branch condition, loop bound, peer and tag expression
through the symbolic-rank domain (:mod:`repro.analysis.rankdom`).  The
result is one communication trace per rank, verified parametrically by
a deterministic progress engine that mirrors the runtime's matching
semantics (buffered/eager ``isend``-style sends, ``sendrecv`` posts its
receive first, collectives complete only when every rank arrives).

========  ==============================================================
OMB501    collective-order inconsistency: rank classes reach different
          collectives (or collectives in different orders)
OMB502    subset collective: some ranks reach a collective that other
          ranks never call (they exit, or block in point-to-point)
OMB503    send that is never received at any sampled size
OMB504    recv that no send ever matches (blocks forever, or leaks)
OMB505    rank-dependent deadlock: a cycle of blocking receives proved
          by simulation — the shape ``--commgraph`` cannot see
OMB506    deadlock under rendezvous sends: the pattern completes only
          because every send is eagerly buffered
========  ==============================================================

The interpreter is deliberately *ineligible-by-default*: a function
with an unresolvable peer, a rank-dependent loop it cannot unroll, a
call into another comm-bearing function, or comm inside an unknown
branch is skipped silently.  Every reported deadlock is therefore a
replayed execution, not a heuristic — the cross-validation suite
(tests/test_analysis_protocol_crossval.py) checks the verdict against
exhaustive concrete simulation.

Runs under ``ombpy-lint --protocol``; see ``docs/protocol-lint.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from . import rankdom
from . import rules as _rules
from .commgraph import (
    _BLOCKING_RECVS,
    _PEER_KEYWORDS,
    _PEER_POSITION,
    _TAG_POSITION,
    _site_kind,
)
from .findings import Finding
from .interproc import FunctionInfo, Program

__all__ = [
    "PROTOCOL_RULES",
    "SAMPLE_SIZES",
    "TraceOp",
    "build_traces",
    "run_protocol_rules",
    "simulate",
    "verify_function",
]

#: Job sizes the verifier replays each eligible function at.  Small
#: sizes catch parity/boundary bugs; 8 and 16 catch log-tree shapes.
SAMPLE_SIZES = (2, 3, 4, 5, 8, 16)

_ANY_SOURCE = -1
_ANY_TAG = -1
_PROC_NULL = -2

_MAX_OPS = 2048
_MAX_ITERS = 512

#: Methods that hand back a *different communicator*; collectives on it
#: would involve a subset of ranks, which the flat model cannot see.
_COMM_CREATORS = frozenset({
    "Split", "split", "Dup", "dup", "Create", "create", "Create_cart",
    "create_cart", "Shrink", "shrink", "Merge", "Spawn",
})

_WAIT_METHODS = frozenset({"wait", "Wait", "waitall", "Waitall", "wait_all"})


def _canon_collective(method: str) -> str:
    name = method.lower()
    for suffix in ("_bytes", "_array"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    return name


@dataclass
class TraceOp:
    """One abstract communication operation of one rank."""

    kind: str                     # send|isend|recv|irecv|coll|wait
    method: str = ""
    peer: int | None = None       # None = wildcard (ANY_SOURCE)
    tag: int | None = None        # None = wildcard (ANY_TAG)
    coll: str = ""                # canonical collective name
    node: ast.AST | None = None
    #: produced by an unroll-once approximation of an unknown-trip loop
    approx: bool = False

    def describe(self) -> str:
        if self.kind == "coll":
            return f"collective '{self.coll}'"
        if self.kind == "wait":
            return "wait"
        return f"'{self.method}()'"


class _Unsupported(Exception):
    """The function uses a construct the interpreter will not model."""


class _Return(Exception):
    pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _iter_calls(node: ast.AST):
    """Every Call in ``node`` in (approximate) source order, skipping
    nested function/class bodies and lambdas."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda, ast.ClassDef)):
        return
    if isinstance(node, ast.Call):
        # Arguments evaluate before the call itself.
        for child in ast.iter_child_nodes(node):
            yield from _iter_calls(child)
        yield node
        return
    for child in ast.iter_child_nodes(node):
        yield from _iter_calls(child)


def _has_comm(node: ast.AST, comm_funcs: frozenset[str]) -> bool:
    """Does this subtree communicate (directly or through a known
    comm-bearing helper)?"""
    for call in _iter_calls(node):
        if _site_kind(call) is not None:
            return True
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in comm_funcs:
            return True
    return False


def _assigned_names(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
    return names


class _TraceBuilder:
    """Interpret one function body for one concrete ``(rank, size)``."""

    def __init__(self, info: FunctionInfo, comm_funcs: frozenset[str],
                 rank: int, size: int) -> None:
        self.info = info
        self.comm_funcs = comm_funcs
        self.env: dict[str, int] = {"rank": rank, "size": size}
        self.ops: list[TraceOp] = []
        self.approx = False
        self._loop_depth = 0

    # -- expression helpers ------------------------------------------------

    def _eval(self, node: ast.expr) -> int | None:
        return rankdom.eval_expr(node, self.env)

    def _arg(self, call: ast.Call, method: str,
             positions: dict[str, int], keywords: frozenset[str],
             index: int | None = None) -> ast.expr | None:
        pos = positions.get(method) if index is None else index
        if pos is not None and pos < len(call.args):
            return call.args[pos]
        for kw in call.keywords:
            if kw.arg in keywords:
                return kw.value
        return None

    def _resolve_peer(self, expr: ast.expr | None) -> int | None:
        """Concrete peer, None for ANY_SOURCE; _Unsupported otherwise."""
        if expr is None:
            raise _Unsupported("missing peer argument")
        if isinstance(expr, (ast.Name, ast.Attribute)):
            text = expr.id if isinstance(expr, ast.Name) else expr.attr
            if text in ("ANY_SOURCE", "ANY_TAG"):
                return None
        value = self._eval(expr)
        if value is None:
            raise _Unsupported(f"unresolvable peer {ast.unparse(expr)!r}")
        if value == _ANY_SOURCE:
            return None
        if value != _PROC_NULL and not 0 <= value < self.env["size"]:
            # The real call would raise RankError at this (rank, size);
            # the author is guarding it some way the model cannot see.
            raise _Unsupported(f"peer {value} out of range")
        return value

    def _resolve_tag(self, expr: ast.expr | None) -> int | None:
        if expr is None:
            return 0  # byte API has no default, object API defaults to 0
        if isinstance(expr, (ast.Name, ast.Attribute)):
            text = expr.id if isinstance(expr, ast.Name) else expr.attr
            if text in ("ANY_TAG", "ANY_SOURCE"):
                return None
        value = self._eval(expr)
        if value is None:
            raise _Unsupported(f"unresolvable tag {ast.unparse(expr)!r}")
        if value == _ANY_TAG:
            return None
        return value

    # -- op emission -------------------------------------------------------

    def _emit(self, op: TraceOp) -> None:
        if len(self.ops) >= _MAX_OPS:
            raise _Unsupported("trace exceeds op budget")
        if self._loop_depth and self.approx:
            op.approx = True
        self.ops.append(op)

    def _emit_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.comm_funcs:
                raise _Unsupported(f"calls comm-bearing '{func.id}()'")
            if func.id in _WAIT_METHODS:
                self._emit(TraceOp(kind="wait", method=func.id, node=call))
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        if method in _COMM_CREATORS and _rules._comm_like(func.value):
            raise _Unsupported(f"derives a sub-communicator via {method}()")
        if method in _WAIT_METHODS:
            self._emit(TraceOp(kind="wait", method=method, node=call))
            return
        if method in self.comm_funcs and _site_kind(call) is None:
            raise _Unsupported(f"calls comm-bearing '{method}()'")
        kind = _site_kind(call)
        if kind is None:
            return
        if method in ("sendrecv", "sendrecv_bytes"):
            # The runtime posts the receive first, then does a buffered
            # send — deadlock-free by construction.  Model exactly that.
            dest = self._resolve_peer(self._arg(
                call, method, {}, frozenset({"dest"}), index=1))
            sendtag = self._resolve_tag(self._arg(
                call, method, {}, frozenset({"sendtag"}), index=2))
            source = self._resolve_peer(self._arg(
                call, method, {}, frozenset({"source"}), index=3))
            recvtag = self._resolve_tag(self._arg(
                call, method, {}, frozenset({"recvtag"}), index=4))
            if dest is None:
                raise _Unsupported("sendrecv to wildcard destination")
            if source != _PROC_NULL:
                self._emit(TraceOp(kind="irecv", method=method,
                                   peer=source, tag=recvtag, node=call))
            if dest != _PROC_NULL:
                self._emit(TraceOp(kind="isend", method=method,
                                   peer=dest, tag=sendtag, node=call))
            if source != _PROC_NULL:
                self._emit(TraceOp(kind="wait", method=method, node=call))
            return
        if kind == "collective":
            self._emit(TraceOp(kind="coll", method=method,
                               coll=_canon_collective(method), node=call))
            return
        peer = self._resolve_peer(self._arg(
            call, method, _PEER_POSITION, _PEER_KEYWORDS))
        tag = self._resolve_tag(self._arg(
            call, method, _TAG_POSITION, _rules.TAG_KEYWORDS))
        if peer == _PROC_NULL:
            return  # MPI semantics: a no-op that completes immediately
        if kind == "send":
            if peer is None:
                raise _Unsupported("send to wildcard destination")
            blocking = method in ("send", "Send", "ssend", "Ssend")
            self._emit(TraceOp(kind="send" if blocking else "isend",
                               method=method, peer=peer, tag=tag, node=call))
        else:
            blocking = method in _BLOCKING_RECVS
            self._emit(TraceOp(kind="recv" if blocking else "irecv",
                               method=method, peer=peer, tag=tag, node=call))

    def _scan_stmt_calls(self, stmt: ast.stmt) -> None:
        for call in _iter_calls(stmt):
            self._emit_call(call)

    # -- statement interpretation -----------------------------------------

    def run(self) -> list[TraceOp]:
        node = self.info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        try:
            self._block(node.body)
        except _Return:
            pass
        return self.ops

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _invalidate(self, node: ast.AST) -> None:
        for name in _assigned_names(node):
            self.env.pop(name, None)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Pass, ast.Global, ast.Nonlocal)):
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_stmt_calls(stmt)
            raise _Return
        if isinstance(stmt, ast.Break):
            raise _Break
        if isinstance(stmt, ast.Continue):
            raise _Continue
        if isinstance(stmt, ast.If):
            self._if(stmt)
            return
        if isinstance(stmt, ast.For):
            self._for(stmt)
            return
        if isinstance(stmt, ast.While):
            self._while(stmt)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_stmt_calls(item.context_expr)
            self._block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            for region in (stmt.handlers, stmt.orelse):
                for sub in region:
                    if _has_comm(sub, self.comm_funcs):
                        raise _Unsupported("comm in try handler/else")
            self._block(stmt.body)
            self._block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            # A raise aborts the rank mid-protocol; an assert might.
            # Neither path is modeled — only reject when it could change
            # the communication structure.
            if isinstance(stmt, ast.Raise):
                raise _Unsupported("raise on an interpreted path")
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
            return
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            self._scan_stmt_calls(stmt)
            self._invalidate(stmt)
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                    and isinstance(stmt.target, ast.Name):
                value = self._eval(stmt.value)
                if value is not None:
                    self.env[stmt.target.id] = value
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)) \
                    and _has_comm(stmt.value, self.comm_funcs):
                raise _Unsupported("comm inside a comprehension")
            self._scan_stmt_calls(stmt)
            return
        if _has_comm(stmt, self.comm_funcs):
            raise _Unsupported(
                f"comm in unmodeled {type(stmt).__name__} statement"
            )
        self._invalidate(stmt)

    def _assign(self, stmt: ast.Assign) -> None:
        if _has_comm(stmt.value, self.comm_funcs) and isinstance(
            stmt.value, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp),
        ):
            raise _Unsupported("comm inside a comprehension")
        self._scan_stmt_calls(stmt)
        self._invalidate(stmt)
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            value = self._eval(stmt.value)
            if value is not None:
                self.env[stmt.targets[0].id] = value

    def _if(self, stmt: ast.If) -> None:
        self._scan_stmt_calls(stmt.test)
        truth = rankdom.eval_pred(stmt.test, self.env)
        if truth is True:
            self._block(stmt.body)
            return
        if truth is False:
            self._block(stmt.orelse)
            return
        # Unknown condition: only safe to skip when neither arm talks.
        for region in (stmt.body, stmt.orelse):
            for sub in region:
                if _has_comm(sub, self.comm_funcs):
                    raise _Unsupported(
                        "comm under unresolvable branch "
                        f"{ast.unparse(stmt.test)!r}"
                    )
        self._invalidate(stmt)

    def _range_values(self, iter_expr: ast.expr) -> list[int] | None:
        if not (isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Name)
                and iter_expr.func.id == "range"
                and not iter_expr.keywords
                and 1 <= len(iter_expr.args) <= 3):
            return None
        args = [self._eval(a) for a in iter_expr.args]
        if any(a is None for a in args):
            return None
        values = list(range(*args))  # type: ignore[arg-type]
        if len(values) > _MAX_ITERS:
            raise _Unsupported("loop trip count exceeds budget")
        return values

    def _for(self, stmt: ast.For) -> None:
        self._scan_stmt_calls(stmt.iter)
        values = self._range_values(stmt.iter)
        if values is not None and isinstance(stmt.target, ast.Name):
            target = stmt.target.id
            broke = False
            for v in values:
                self.env[target] = v
                try:
                    self._block(stmt.body)
                except _Break:
                    broke = True
                    break
                except _Continue:
                    continue
            if not broke:
                self._block(stmt.orelse)
            return
        self._unroll_once(stmt, stmt.body, stmt.orelse)

    def _while(self, stmt: ast.While) -> None:
        self._scan_stmt_calls(stmt.test)
        truth = rankdom.eval_pred(stmt.test, self.env)
        if truth is False:
            self._block(stmt.orelse)
            return
        # A `while` whose body communicates is a progress/service loop
        # with a data-dependent trip count — not a protocol this model
        # can replay.  Without comm the loop is irrelevant to the trace;
        # just forget everything it binds.
        if any(_has_comm(s, self.comm_funcs) for s in stmt.body):
            raise _Unsupported("comm in while loop")
        self._invalidate(stmt)
        self._block(stmt.orelse)

    def _unroll_once(self, stmt: ast.stmt, body: list[ast.stmt],
                     orelse: list[ast.stmt]) -> None:
        """Unknown-trip loop: interpret one iteration with every name the
        loop binds unknown, and mark the emitted ops approximate (the
        unmatched-at-exit rules stand down; replayed deadlocks remain)."""
        has_comm = any(_has_comm(s, self.comm_funcs) for s in body)
        self._invalidate(stmt)
        if not has_comm:
            self._block(orelse)
            return
        assert isinstance(stmt, ast.For)
        if rankdom.mentions_scale(stmt.iter):
            # Rank-dependent trip counts give different ranks different
            # op multiplicities; one unrolling would be unsound.
            raise _Unsupported("comm in rank-dependent unbounded loop")
        self.approx = True
        self._loop_depth += 1
        try:
            self._block(body)
        except (_Break, _Continue):
            pass
        finally:
            self._loop_depth -= 1
        self._invalidate(stmt)
        self._block(orelse)


def comm_bearing_names(program: Program) -> frozenset[str]:
    """Simple names of functions that contain a direct comm call."""
    names = set()
    for info in program.functions:
        if info.is_module_level():
            continue
        node = info.node
        body = getattr(node, "body", [])
        if any(
            _site_kind(call) is not None
            for stmt in body for call in _iter_calls(stmt)
        ):
            names.add(info.name)
    return frozenset(names)


def build_traces(
    info: FunctionInfo, comm_funcs: frozenset[str], size: int,
) -> list[list[TraceOp]] | None:
    """One trace per rank at job size ``size``; None when ineligible."""
    traces: list[list[TraceOp]] = []
    for rank in range(size):
        builder = _TraceBuilder(info, comm_funcs, rank, size)
        try:
            traces.append(builder.run())
        except _Unsupported:
            return None
    return traces


# -- the progress engine ---------------------------------------------------

@dataclass
class SimResult:
    """Outcome of replaying one trace set."""

    ok: bool
    #: rank -> the op it is stuck at (empty when ok)
    blocked: dict[int, TraceOp] = field(default_factory=dict)
    #: ranks that ran their whole trace
    done: set[int] = field(default_factory=set)
    #: (src, op) messages sent but never received
    unreceived: list[tuple[int, TraceOp]] = field(default_factory=list)
    #: (rank, op) posted receives never matched
    unmatched_recvs: list[tuple[int, TraceOp]] = field(default_factory=list)


def _msg_matches(pending: TraceOp, src: int, tag: int | None) -> bool:
    if pending.peer is not None and pending.peer != src:
        return False
    if pending.tag is not None and tag is not None and pending.tag != tag:
        return False
    return True


def simulate(traces: list[list[TraceOp]], eager: bool = True) -> SimResult:
    """Deterministically replay one trace per rank.

    ``eager=True`` mirrors the runtime (every send is buffered and
    completes immediately); ``eager=False`` gives standard-conforming
    rendezvous semantics where a blocking send needs a posted receive.
    """
    n = len(traces)
    idx = [0] * n
    # In-flight messages per destination, in arrival order.
    mailbox: list[list[tuple[int, int | None, TraceOp]]] = [
        [] for _ in range(n)
    ]
    # Posted-but-unmatched irecvs per rank, in post order.
    pending: list[list[TraceOp]] = [[] for _ in range(n)]
    satisfied: list[set[int]] = [set() for _ in range(n)]

    def current(r: int) -> TraceOp | None:
        return traces[r][idx[r]] if idx[r] < len(traces[r]) else None

    def try_deliver(dst: int, src: int, tag: int | None,
                    op: TraceOp) -> None:
        for p in pending[dst]:
            if id(p) not in satisfied[dst] and _msg_matches(p, src, tag):
                satisfied[dst].add(id(p))
                return
        mailbox[dst].append((src, tag, op))

    def take_from_mailbox(r: int, op: TraceOp) -> bool:
        for i, (src, tag, _sop) in enumerate(mailbox[r]):
            if _msg_matches(op, src, tag):
                del mailbox[r][i]
                return True
        return False

    def waits_clear(r: int) -> bool:
        return all(id(p) in satisfied[r] for p in pending[r])

    progressed = True
    while progressed:
        progressed = False
        # Collectives complete only when every rank has arrived at the
        # same one.
        heads = [current(r) for r in range(n)]
        if all(h is not None and h.kind == "coll" for h in heads):
            names = {h.coll for h in heads}  # type: ignore[union-attr]
            if len(names) == 1:
                for r in range(n):
                    idx[r] += 1
                progressed = True
                continue
        for r in range(n):
            op = current(r)
            if op is None:
                continue
            if op.kind == "isend":
                try_deliver(op.peer, r, op.tag, op)  # type: ignore[arg-type]
                idx[r] += 1
                progressed = True
            elif op.kind == "send":
                if eager:
                    try_deliver(op.peer, r, op.tag, op)  # type: ignore
                    idx[r] += 1
                    progressed = True
                    continue
                dst = op.peer
                assert dst is not None
                other = current(dst) if 0 <= dst < n else None
                matched = False
                for p in pending[dst] if 0 <= dst < n else []:
                    if id(p) not in satisfied[dst] \
                            and _msg_matches(p, r, op.tag):
                        satisfied[dst].add(id(p))
                        matched = True
                        break
                if matched:
                    idx[r] += 1
                    progressed = True
                elif other is not None and other.kind == "recv" \
                        and _msg_matches(other, r, op.tag):
                    idx[r] += 1
                    idx[dst] += 1
                    progressed = True
            elif op.kind == "irecv":
                pending[r].append(op)
                idx[r] += 1
                progressed = True
                # Late match against already-buffered messages.
                if take_from_mailbox(r, op):
                    satisfied[r].add(id(op))
            elif op.kind == "recv":
                if take_from_mailbox(r, op):
                    idx[r] += 1
                    progressed = True
                elif not eager:
                    # Rendezvous with a peer blocked in a matching send.
                    for s in range(n):
                        sop = current(s)
                        if sop is not None and sop.kind == "send" \
                                and sop.peer == r \
                                and _msg_matches(op, s, sop.tag):
                            idx[s] += 1
                            idx[r] += 1
                            progressed = True
                            break
            elif op.kind == "wait":
                if waits_clear(r):
                    idx[r] += 1
                    progressed = True
            # coll: handled by the all-ranks check above

    blocked = {r: current(r) for r in range(n) if current(r) is not None}
    done = {r for r in range(n) if r not in blocked}
    result = SimResult(ok=not blocked,
                       blocked=blocked,  # type: ignore[arg-type]
                       done=done)
    if result.ok:
        for dst in range(n):
            for src, _tag, op in mailbox[dst]:
                result.unreceived.append((src, op))
        for r in range(n):
            for p in pending[r]:
                if id(p) not in satisfied[r]:
                    result.unmatched_recvs.append((r, p))
    return result


# -- classification --------------------------------------------------------

def _rank_set(ranks) -> str:
    ordered = sorted(ranks)
    if len(ordered) > 6:
        return f"ranks {ordered[0]}..{ordered[-1]}"
    if len(ordered) == 1:
        return f"rank {ordered[0]}"
    return "ranks " + ",".join(str(r) for r in ordered)


@dataclass
class _Report:
    rule: str
    severity: str
    node: ast.AST
    message: str


def _classify_deadlock(result: SimResult, size: int,
                       eager: bool) -> _Report:
    blocked = result.blocked
    kinds = {op.kind for op in blocked.values()}
    coll_heads = {r: op for r, op in blocked.items() if op.kind == "coll"}
    anchor_rank = min(blocked)
    anchor = blocked[anchor_rank]
    where = _rank_set(blocked)

    if coll_heads:
        names = sorted({op.coll for op in coll_heads.values()})
        if kinds == {"coll"} and not result.done and len(names) > 1:
            return _Report(
                "OMB501", "error", anchor.node,
                f"collective order diverges at N={size}: "
                + "; ".join(
                    f"'{nm}' called by "
                    f"{_rank_set(r for r, op in coll_heads.items() if op.coll == nm)}"
                    for nm in names
                )
                + " — every rank must call the same collectives in the "
                "same order",
            )
        anchor_rank = min(coll_heads)
        anchor = coll_heads[anchor_rank]
        others = (
            f"never called by {_rank_set(result.done)}" if result.done
            else f"{_rank_set(set(blocked) - set(coll_heads))} stuck in "
            "point-to-point first"
        )
        return _Report(
            "OMB502", "error", anchor.node,
            f"collective '{anchor.coll}' is reached by only "
            f"{_rank_set(coll_heads)} at N={size} ({others}) — a subset "
            "collective hangs every participant",
        )
    if not eager:
        return _Report(
            "OMB506", "warning", anchor.node,
            f"deadlock under rendezvous sends at N={size}: {where} "
            f"block ({anchor.describe()} first among them) — the "
            "pattern only completes because sends are eagerly "
            "buffered; reorder or use non-blocking posts",
        )
    # All heads are recv/wait: decide cycle vs. orphaned receive.
    waiting_on_blocked = False
    for r, op in blocked.items():
        peers = [op.peer] if op.peer is not None else list(blocked)
        if op.kind == "wait":
            peers = list(blocked)
        if any(p in blocked and p != r for p in peers):
            waiting_on_blocked = True
            break
    if waiting_on_blocked:
        peer_text = (
            f" from rank {anchor.peer}" if anchor.peer is not None else ""
        )
        return _Report(
            "OMB505", "error", anchor.node,
            f"rank-dependent deadlock at N={size}: {where} block in "
            f"{anchor.describe()}{peer_text} before any matching send "
            "is posted — a blocking-receive cycle; post the receive "
            "non-blocking or reorder one rank class",
        )
    return _Report(
        "OMB504", "error", anchor.node,
        f"{where} block forever in {anchor.describe()} at N={size}: "
        "every rank that could send has already finished — this "
        "receive can never be matched",
    )


def verify_function(
    info: FunctionInfo, comm_funcs: frozenset[str],
    sizes: tuple[int, ...] = SAMPLE_SIZES,
) -> list[_Report]:
    """Replay one function across the size ladder; aggregated reports."""
    if info.is_module_level() or not isinstance(
        info.node, (ast.FunctionDef, ast.AsyncFunctionDef),
    ):
        return []
    # _iter_calls stops at function boundaries, so probe the body.
    if not any(_has_comm(s, frozenset()) for s in info.node.body):
        return []
    deadlock: _Report | None = None
    rendezvous: _Report | None = None
    unreceived: dict[int, tuple[ast.AST, str, int]] = {}
    unmatched: dict[int, tuple[ast.AST, str, int]] = {}
    evaluated = 0
    any_approx = False
    for size in sizes:
        traces = build_traces(info, comm_funcs, size)
        if traces is None:
            continue
        evaluated += 1
        approx = any(op.approx for trace in traces for op in trace)
        any_approx = any_approx or approx
        result = simulate(traces, eager=True)
        if not result.ok:
            if deadlock is None:
                deadlock = _classify_deadlock(result, size, eager=True)
            continue
        strict = simulate(traces, eager=False)
        if not strict.ok and rendezvous is None:
            rendezvous = _classify_deadlock(strict, size, eager=False)
        # Unmatched-at-exit rules need the miss at *every* sampled size
        # (and no approximation): a boundary size where a peer class is
        # empty is normal, a message nobody ever receives is not.
        if evaluated == 1:
            for src, op in result.unreceived:
                assert op.node is not None
                unreceived[id(op.node)] = (op.node, op.describe(), src)
            for r, op in result.unmatched_recvs:
                assert op.node is not None
                unmatched[id(op.node)] = (op.node, op.describe(), r)
        else:
            still = {id(op.node) for _s, op in result.unreceived}
            unreceived = {
                k: v for k, v in unreceived.items() if k in still
            }
            still = {id(op.node) for _r, op in result.unmatched_recvs}
            unmatched = {k: v for k, v in unmatched.items() if k in still}
    if evaluated == 0:
        return []
    reports: list[_Report] = []
    if deadlock is not None:
        reports.append(deadlock)
        return reports
    if rendezvous is not None:
        reports.append(rendezvous)
    if not any_approx:
        for node, desc, src in unreceived.values():
            reports.append(_Report(
                "OMB503", "warning", node,
                f"{desc} from rank {src} is never received at any "
                f"sampled size (N ∈ {{{', '.join(map(str, sizes))}}}) — "
                "no receive matches this message",
            ))
        for node, desc, r in unmatched.values():
            reports.append(_Report(
                "OMB504", "warning", node,
                f"{desc} posted by rank {r} is never matched at any "
                f"sampled size — no send reaches this receive",
            ))
    return reports


# -- registry / runner -----------------------------------------------------

#: rule ID -> (checker placeholder, one-line description).  The family
#: is produced by one whole-function verification pass, so the registry
#: carries docs (for --list-rules / SARIF) rather than per-rule entry
#: points.
PROTOCOL_RULES = {
    "OMB501": (
        None,
        "rank classes reach different collectives (order inconsistency)",
    ),
    "OMB502": (
        None,
        "a collective only a subset of ranks ever calls",
    ),
    "OMB503": (
        None,
        "send that is never received at any sampled job size",
    ),
    "OMB504": (
        None,
        "recv that no send ever matches",
    ),
    "OMB505": (
        None,
        "proved rank-dependent blocking-receive deadlock",
    ),
    "OMB506": (
        None,
        "deadlock under rendezvous sends (eager-buffering dependent)",
    ),
}


def run_protocol_rules(
    program: Program,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Verify every eligible function in the program."""
    comm_funcs = comm_bearing_names(program)
    findings: list[Finding] = []
    for info in program.functions:
        for report in verify_function(info, comm_funcs):
            if select is not None and report.rule not in select:
                continue
            if ignore is not None and report.rule in ignore:
                continue
            node = report.node
            findings.append(Finding(
                rule=report.rule,
                severity=report.severity,
                path=info.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                message=f"in '{info.name}': {report.message}",
                end_line=getattr(node, "end_lineno", 0) or 0,
            ))
    return findings
