"""Whole-program interprocedural engine for the performance rules.

The per-function rules (OMB001-010) see one :class:`~repro.analysis.rules.Scope`
at a time.  The performance family needs program-wide facts:

* **call graph** — who calls whom, resolved by simple-name matching
  (``spec.read()`` links to every function named ``read`` in the program:
  a deliberate over-approximation, because for a linter a spurious edge
  costs at most a grandfathered finding while a missed edge hides a real
  copy);
* **hot set** — every function reachable, through call edges, from a
  communication entry point: the send/recv/collective API surface plus
  any function that delivers into a matching engine (transport read
  loops).  A copy inside a hot function executes per message; the same
  copy in setup code is free;
* **alias facts across call edges** — the whole-program upgrade of
  :mod:`repro.analysis.dataflow`'s first-order alias tracking: an
  argument whose buffer-ness is known at a call site flows into the
  callee's parameter, to a fixpoint, so ``def _post(self, buf): ...
  comm.send(buf)`` is flagged even though ``buf``'s origin is in another
  function (or another file);
* **loop context** — each function's CFG (:mod:`repro.analysis.cfg`)
  annotates every node with its loop-nesting depth.

Everything here is heuristic and name-based by design; see
``docs/perf-lint.md`` for the precision/soundness trade-offs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from . import rules as _rules
from .cfg import CFG, build_cfg

__all__ = [
    "CallSite",
    "FunctionInfo",
    "Program",
    "load_program",
    "HOT_ENTRY_NAMES",
    "COMM_CALL_NAMES",
]

#: Names that *are* the communication API surface: a function with one of
#: these names, or calling one of them as a method, sits on the hot path.
#: Mirrors repro.mpi.comm / repro.bindings.comm_api / the transports.
HOT_ENTRY_NAMES = frozenset({
    # runtime byte-level API
    "send_bytes", "isend_bytes", "recv_bytes", "irecv_bytes",
    "sendrecv_bytes", "bcast_bytes", "gather_bytes", "scatter_bytes",
    "allgather_bytes", "alltoall_bytes", "gatherv_bytes", "scatterv_bytes",
    "allgatherv_bytes", "alltoallv_bytes",
    # mpi4py-workalike surface
    "Send", "Recv", "Isend", "Irecv", "Issend", "Ssend", "Sendrecv",
    "send", "recv", "isend", "irecv", "ssend", "issend", "sendrecv",
    "Bcast", "Reduce", "Allreduce", "Gather", "Scatter", "Allgather",
    "Alltoall", "Reduce_scatter", "Scan", "Exscan",
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall", "scan", "exscan",
    # matching engine / transport data path
    "deliver", "_deliver_local", "post_recv",
})

#: The subset that, appearing as a *method call*, marks the caller hot.
#: ``send``/``recv``/``gather`` alone are too common (sockets, queues);
#: require a comm-looking receiver for the ambiguous ones, mirroring
#: rules._comm_like.
_UNAMBIGUOUS_CALLS = frozenset({
    "send_bytes", "isend_bytes", "recv_bytes", "irecv_bytes",
    "sendrecv_bytes", "bcast_bytes", "allgather_bytes", "alltoall_bytes",
    "Isend", "Irecv", "Issend", "Sendrecv", "Bcast", "Allreduce",
    "Allgather", "Alltoall", "Reduce_scatter", "_deliver_local",
})

#: Every method name that counts as "a communication call" for loop rules.
COMM_CALL_NAMES = frozenset({
    "send", "recv", "isend", "irecv", "ssend", "issend", "sendrecv",
    "Send", "Recv", "Isend", "Irecv", "Ssend", "Issend", "Sendrecv",
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall", "scan", "exscan", "barrier", "Barrier",
    "Bcast", "Reduce", "Allreduce", "Gather", "Scatter", "Allgather",
    "Alltoall", "Reduce_scatter", "Scan", "Exscan",
    "send_bytes", "isend_bytes", "recv_bytes", "irecv_bytes",
    "sendrecv_bytes", "bcast_bytes", "gather_bytes", "scatter_bytes",
    "allgather_bytes", "alltoall_bytes",
})


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: simple callee name: the attribute for methods, the id for plain calls
    callee: str
    #: dotted receiver text for methods ("self._endpoint.engine"), else None
    receiver: str | None


@dataclass
class FunctionInfo:
    """One function (or module top level) with its per-function facts."""

    qualname: str                 # "relative/path.py::Class.method"
    name: str                     # simple name ("method")
    path: str
    node: ast.AST                 # FunctionDef | AsyncFunctionDef | Module
    scope: _rules.Scope
    cfg: CFG
    calls: list[CallSite] = field(default_factory=list)
    #: positional parameter names (self/cls included, in order)
    params: list[str] = field(default_factory=list)
    #: parameters known buffer-capable at >= 1 call site (fixpoint result)
    buffer_params: set[str] = field(default_factory=set)

    def is_module_level(self) -> bool:
        return isinstance(self.node, ast.Module)


def _dotted(node: ast.expr) -> str | None:
    """Render an attribute chain as dotted text; None for complex bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _collect_calls(scope: _rules.Scope) -> list[CallSite]:
    sites = []
    for node in scope.nodes:
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            sites.append(CallSite(
                node=node,
                callee=node.func.attr,
                receiver=_dotted(node.func.value),
            ))
        elif isinstance(node.func, ast.Name):
            sites.append(CallSite(node=node, callee=node.func.id,
                                  receiver=None))
    return sites


def _qualname_prefixes(tree: ast.Module) -> dict[int, str]:
    """Map id(function node) -> its class-qualified name."""
    out: dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out[id(child)] = qual
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


class Program:
    """The whole-program view the perf/commgraph rules run over."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self.by_name: dict[str, list[FunctionInfo]] = {}
        #: qualname -> qualnames of (name-resolved) callees
        self.call_edges: dict[str, set[str]] = {}
        #: qualnames on the hot path, mapped to a human-readable reason
        self.hot: dict[str, str] = {}

    # -- construction ------------------------------------------------------
    def add_module(self, path: str, tree: ast.Module) -> None:
        prefixes = _qualname_prefixes(tree)
        for scope in _rules.build_scopes(tree, path):
            node = scope.node
            if isinstance(node, ast.Module):
                qual = f"{path}::<module>"
                name = "<module>"
                params: list[str] = []
            else:
                name = node.name  # type: ignore[union-attr]
                qual = f"{path}::{prefixes.get(id(node), name)}"
                args = node.args  # type: ignore[union-attr]
                params = [a.arg for a in (
                    list(args.posonlyargs) + list(args.args)
                )]
            info = FunctionInfo(
                qualname=qual, name=name, path=path, node=node,
                scope=scope, cfg=build_cfg(node), params=params,
            )
            info.calls = _collect_calls(scope)
            self.functions.append(info)
            self.by_name.setdefault(name, []).append(info)

    def finalize(self) -> None:
        """Resolve call edges, compute the hot set, run the alias fixpoint."""
        self._resolve_calls()
        self._compute_hot()
        self._propagate_buffer_params()

    def _resolve_calls(self) -> None:
        for info in self.functions:
            edges = set()
            for site in info.calls:
                for callee in self.by_name.get(site.callee, ()):
                    if not callee.is_module_level():
                        edges.add(callee.qualname)
            self.call_edges[info.qualname] = edges

    def _is_hot_seed(self, info: FunctionInfo) -> str | None:
        if info.name in HOT_ENTRY_NAMES and not info.is_module_level():
            return f"communication API entry point '{info.name}'"
        for site in info.calls:
            if site.callee in _UNAMBIGUOUS_CALLS:
                return f"calls communication primitive '{site.callee}()'"
            if site.callee in COMM_CALL_NAMES and site.receiver is not None:
                tail = ast.Name(id=site.receiver.split(".")[-1])
                if _rules._comm_like(tail):
                    return (
                        f"calls '{site.receiver}.{site.callee}()' "
                        "on a communicator"
                    )
        return None

    def _compute_hot(self) -> None:
        by_qual = {f.qualname: f for f in self.functions}
        todo: list[str] = []
        for info in self.functions:
            reason = self._is_hot_seed(info)
            if reason is not None:
                self.hot[info.qualname] = reason
                todo.append(info.qualname)
        # Close over callees: anything a hot function calls runs per
        # message too (over-approximate: name-resolved edges).
        # Sorted edge order keeps the attributed caller (and with it the
        # baseline fingerprint of every downstream finding) independent
        # of set-iteration order across interpreter runs.
        while todo:
            qual = todo.pop()
            for callee in sorted(self.call_edges.get(qual, ())):
                if callee not in self.hot:
                    caller = by_qual[qual]
                    self.hot[callee] = f"called from hot '{caller.name}()'"
                    todo.append(callee)

    def _propagate_buffer_params(self) -> None:
        """Flow buffer-ness from arguments into parameters, to a fixpoint."""
        changed = True
        rounds = 0
        while changed and rounds < 20:  # paranoia bound; converges in 2-3
            changed = False
            rounds += 1
            for info in self.functions:
                for site in info.calls:
                    for callee in self.by_name.get(site.callee, ()):
                        if callee.is_module_level():
                            continue
                        if self._flow_args(info, site.node, callee):
                            changed = True

    def _flow_args(self, caller: FunctionInfo, call: ast.Call,
                   callee: FunctionInfo) -> bool:
        params = callee.params
        # Method calls bind the receiver to `self`/`cls` implicitly.
        offset = 1 if params and params[0] in ("self", "cls") \
            and isinstance(call.func, ast.Attribute) else 0
        changed = False
        for i, arg in enumerate(call.args):
            slot = i + offset
            if slot >= len(params) or isinstance(arg, ast.Starred):
                break
            if self._arg_is_buffer(caller, arg) \
                    and params[slot] not in callee.buffer_params:
                callee.buffer_params.add(params[slot])
                changed = True
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params \
                    and self._arg_is_buffer(caller, kw.value) \
                    and kw.arg not in callee.buffer_params:
                callee.buffer_params.add(kw.arg)
                changed = True
        return changed

    def _arg_is_buffer(self, caller: FunctionInfo, arg: ast.expr) -> bool:
        if isinstance(arg, ast.Name) and arg.id in caller.buffer_params:
            return True
        return _rules._is_buffer_expr(arg, caller.scope)

    # -- queries -----------------------------------------------------------
    def is_hot(self, info: FunctionInfo) -> bool:
        return info.qualname in self.hot

    def hot_reason(self, info: FunctionInfo) -> str:
        return self.hot.get(info.qualname, "")


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted set of ``*.py`` files."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def load_program(paths: list[str | Path]) -> Program:
    """Parse every ``*.py`` under ``paths`` into one :class:`Program`.

    Files that fail to parse are skipped here — the per-file linter
    already reports OMB000 for them.
    """
    program = Program()
    for file in iter_python_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError):
            continue
        program.add_module(str(file), tree)
    program.finalize()
    return program
