"""Performance rules OMB301-OMB310: copies, pickle falls, loop hazards.

The OMB-Py paper attributes most of Python/MPI's overhead to avoidable
object copies and pickle-path serialization on the critical send/recv
path; our own ``BENCH_telemetry.json`` shows the hot path is copy-bound.
These rules find that overhead *statically*, before a benchmark runs,
using the whole-program facts from :mod:`repro.analysis.interproc`:

========  ==============================================================
OMB301    ``bytes()``/``bytearray()`` copy of a buffer on the hot path
OMB302    slice / concat / ``tobytes()`` materialization on the hot path
OMB303    pickle-path send of an argument that is buffer-capable at a
          call site (interprocedural upgrade of OMB001)
OMB304    blocking communication call inside a loop (batch or go
          non-blocking)
OMB305    collective inside a message-size sweep loop
OMB306    buffer allocation repeated inside a communicating loop
OMB307    telemetry-hook work not guarded by the enabled check
OMB308    struct format string re-parsed per call on a hot path
OMB309    eager log-message formatting on the hot path
OMB310    deep attribute chain re-resolved in a hot inner loop
========  ==============================================================

All rules are warnings: they point at throughput, not correctness.  They
run only under ``ombpy-lint --perf`` and are gated by the checked-in
baseline (``tools/perf_lint_baseline.json``) in CI, so existing sites
are grandfathered while new ones fail the build.  See
``docs/perf-lint.md`` for the catalogue with before/after examples.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterator

from . import rules as _rules
from .findings import Finding
from .interproc import COMM_CALL_NAMES, FunctionInfo, Program

__all__ = ["PERF_RULES", "run_perf_rules"]

#: Names that look like they hold wire bytes / communication buffers.
_BUFFERISH = re.compile(
    r"(payload|frame|buf|buffer|data|chunk|pending|body|msg|message|view"
    r"|blob|wire|header|packet|bytes_|_bytes)",
    re.IGNORECASE,
)

#: Names that look like integer sizes/offsets, even when they also match
#: the buffer pattern ("msg_size", "HEADER_SIZE" are ints, not buffers).
_SIZEISH = re.compile(
    r"(size|count|len|num|idx|index|offset|\boff\b|limit|pos|total|nbytes"
    r"|depth|width|rank|peer|tag)",
    re.IGNORECASE,
)


def _bufferish_name(name: str) -> bool:
    return bool(_BUFFERISH.search(name)) and not _SIZEISH.search(name)

#: Blocking point-to-point methods for the in-loop rule.
_BLOCKING_CALLS = frozenset({
    "send", "recv", "ssend", "sendrecv",
    "Send", "Recv", "Ssend", "Sendrecv",
    "send_bytes", "recv_bytes", "sendrecv_bytes",
})

#: Collective methods (all API families) for the size-sweep rule.
_COLLECTIVES = frozenset({
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall", "scan", "exscan", "barrier",
    "Bcast", "Reduce", "Allreduce", "Gather", "Scatter", "Allgather",
    "Alltoall", "Reduce_scatter", "Scan", "Exscan", "Barrier",
    "bcast_bytes", "gather_bytes", "scatter_bytes", "allgather_bytes",
    "alltoall_bytes",
})

_SIZE_NAME = re.compile(r"(^|_)(size|sizes|nbytes|msg|length|len)s?($|_)",
                        re.IGNORECASE)

_TELEMETRY_RECV = re.compile(r"(telemetry|tele\b|tracer|metrics)",
                             re.IGNORECASE)

_LOG_METHODS = frozenset({
    "debug", "info", "warning", "error", "exception", "critical", "log",
})
_LOG_RECEIVERS = frozenset({"logger", "logging", "log", "_log", "_logger"})


def _finding(rule: str, info: FunctionInfo, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=rule,
        severity="warning",
        path=info.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
        end_line=getattr(node, "end_lineno", 0) or 0,
    )


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _bufferish_expr(info: FunctionInfo, node: ast.expr,
                    depth: int = 0) -> bool:
    """Does this expression plausibly denote wire bytes / a buffer?"""
    if depth > 4:
        return False
    if isinstance(node, ast.Name):
        return (
            node.id in info.buffer_params
            or _bufferish_name(node.id)
            or _rules._is_buffer_expr(node, info.scope)
        )
    if isinstance(node, ast.Attribute):
        return _bufferish_name(node.attr)
    if isinstance(node, ast.Subscript):
        return _bufferish_expr(info, node.value, depth + 1)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in (
            "memoryview", "bytes", "bytearray",
        ):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "tobytes", "read", "pack", "pack_header", "dumps", "cast",
        ):
            return True
        if isinstance(func, ast.Name) and func.id in (
            "pack_header", "pack",
        ):
            return True
    return _rules._is_buffer_expr(node, info.scope, depth)


def _literal_intish(info: FunctionInfo, node: ast.expr) -> bool:
    """Is this argument a size (an int), i.e. an allocation not a copy?"""
    if _rules._literal_int(node) is not None:
        return True
    if isinstance(node, ast.Name):
        assigned = info.scope.assignments.get(node.id)
        if assigned is not None and _rules._literal_int(assigned) is not None:
            return True
        return bool(_SIZEISH.search(node.id))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "len":
        return True
    return False


def _loops(info: FunctionInfo) -> Iterator[ast.For | ast.While]:
    for node in info.scope.nodes:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node


def _walk_no_nested(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function bodies."""
    todo = list(ast.iter_child_nodes(root))
    while todo:
        node = todo.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            todo.extend(ast.iter_child_nodes(node))


def _comm_calls_in(root: ast.AST) -> list[ast.Call]:
    out = []
    for node in _walk_no_nested(root):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in COMM_CALL_NAMES:
                out.append(node)
    return out


# -- OMB301: bytes()/bytearray() copy on the hot path ----------------------

def check_hot_copy(program: Program, info: FunctionInfo) -> list[Finding]:
    """A ``bytes(x)``/``bytearray(x)`` of an existing buffer in a hot
    function copies the payload once per message; a memoryview (or
    passing the original buffer through) does not."""
    if not program.is_hot(info):
        return []
    findings = []
    for site in info.calls:
        if site.callee not in ("bytes", "bytearray") \
                or site.receiver is not None:
            continue
        call = site.node
        if len(call.args) != 1 or call.keywords:
            continue  # bytes() / bytearray(n, ...) forms
        arg = call.args[0]
        if _literal_intish(info, arg):
            continue  # an allocation, not a copy (OMB306's domain)
        if not _bufferish_expr(info, arg):
            continue
        findings.append(_finding(
            "OMB301", info, call,
            f"'{site.callee}()' copies an existing buffer on the hot path "
            f"({program.hot_reason(info)}); pass a memoryview or the "
            "original buffer to stay zero-copy",
        ))
    return findings


# -- OMB302: slice / concat / tobytes materialization on the hot path ------

def check_hot_materialization(program: Program,
                              info: FunctionInfo) -> list[Finding]:
    """Slicing bytes, concatenating frames, or ``.tobytes()`` in a hot
    function materializes a fresh buffer per message."""
    if not program.is_hot(info):
        return []
    findings = []
    reason = program.hot_reason(info)
    memoryview_wrapped: set[int] = set()
    mv_names: set[str] = set()
    for node in info.scope.nodes:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "memoryview":
            for sub in ast.walk(node):
                memoryview_wrapped.add(id(sub))
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name) \
                and node.value.func.id == "memoryview":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    mv_names.add(target.id)
        elif isinstance(node, ast.withitem) \
                and isinstance(node.context_expr, ast.Call) \
                and isinstance(node.context_expr.func, ast.Name) \
                and node.context_expr.func.id == "memoryview" \
                and isinstance(node.optional_vars, ast.Name):
            mv_names.add(node.optional_vars.id)

    def _is_memoryview(value: ast.expr) -> bool:
        if id(value) in memoryview_wrapped:
            return True  # memoryview(...) call (or a piece of one)
        return isinstance(value, ast.Name) and value.id in mv_names

    for node in info.scope.nodes:
        if id(node) in memoryview_wrapped:
            continue  # slices of a memoryview are zero-copy
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if _bufferish_expr(info, node.left) \
                    and _bufferish_expr(info, node.right):
                findings.append(_finding(
                    "OMB302", info, node,
                    "bytes concatenation builds a combined buffer per "
                    f"message on the hot path ({reason}); write the parts "
                    "separately (writev/sendmsg style) or reuse a frame "
                    "buffer",
                ))
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target = node.target
            if isinstance(target, ast.Name) \
                    and _bufferish_expr(info, target) \
                    and _bufferish_expr(info, node.value):
                findings.append(_finding(
                    "OMB302", info, node,
                    f"'{target.id} += ...' re-copies the accumulated bytes "
                    f"on the hot path ({reason}); use a bytearray and "
                    "extend it in place",
                ))
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.slice, ast.Slice) \
                and not _is_memoryview(node.value) \
                and _bufferish_expr(info, node.value):
            findings.append(_finding(
                "OMB302", info, node,
                "slicing a bytes-like object materializes a copy on the "
                f"hot path ({reason}); slice a memoryview of it instead",
            ))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "tobytes":
            findings.append(_finding(
                "OMB302", info, node,
                "'.tobytes()' copies the array out on the hot path "
                f"({reason}); communicate the array's memoryview directly",
            ))
    return findings


# -- OMB303: interprocedural pickle-fallback send --------------------------

def check_pickle_fallback(program: Program,
                          info: FunctionInfo) -> list[Finding]:
    """A lower-case (pickle-path) send of a parameter whose call sites
    pass buffer-capable objects — OMB001 with cross-function vision."""
    findings = []
    for site in info.calls:
        if site.callee not in _rules.PICKLE_DATA_METHODS \
                or site.receiver is None:
            continue
        tail = ast.Name(id=site.receiver.split(".")[-1])
        if site.callee not in _rules._DISTINCTIVE \
                and not _rules._comm_like(tail):
            continue
        call = site.node
        data = call.args[0] if call.args else None
        if data is None:
            for kw in call.keywords:
                if kw.arg in ("obj", "sendobj", "buf", "sendbuf"):
                    data = kw.value
                    break
        if not isinstance(data, ast.Name) \
                or data.id not in info.buffer_params:
            continue
        if _rules._is_buffer_expr(data, info.scope):
            continue  # locally visible: OMB001's finding, not ours
        upper = site.callee[0].upper() + site.callee[1:]
        findings.append(_finding(
            "OMB303", info, call,
            f"parameter '{data.id}' receives buffer-capable objects at "
            f"call sites but is sent through pickle-path "
            f"'{site.callee}()'; use '{upper}()' to take the "
            "buffer-protocol path",
        ))
    return findings


# -- OMB304: blocking communication call inside a loop ---------------------

def check_blocking_in_loop(program: Program,
                           info: FunctionInfo) -> list[Finding]:
    """A blocking send/recv per loop iteration serializes communication
    with iteration overhead; batching or non-blocking posts overlap it."""
    findings = []
    for site in info.calls:
        if site.callee not in _BLOCKING_CALLS or site.receiver is None:
            continue
        if info.cfg.depth_of(site.node) < 1:
            continue
        tail = ast.Name(id=site.receiver.split(".")[-1])
        if not site.callee.endswith("_bytes") \
                and not _rules._comm_like(tail):
            continue
        nb = ("i" + site.callee if site.callee[0].islower()
              else "I" + site.callee[0].lower() + site.callee[1:])
        findings.append(_finding(
            "OMB304", info, site.node,
            f"blocking '{site.callee}()' inside a loop (depth "
            f"{info.cfg.depth_of(site.node)}) completes one message per "
            f"iteration; post '{nb}()' per iteration and complete them "
            "with waitall, or batch the payloads",
        ))
    return findings


# -- OMB305: collective inside a size-sweep loop ---------------------------

def _sweeps_sizes(loop: ast.For | ast.While) -> bool:
    if isinstance(loop, ast.While):
        return False
    names: list[str] = []
    for node in ast.walk(loop.target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    for node in ast.walk(loop.iter):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return any(_SIZE_NAME.search(n) for n in names)


def check_collective_in_sweep(program: Program,
                              info: FunctionInfo) -> list[Finding]:
    """A collective per size-sweep iteration pays full latency per size;
    sweeping inside one communicator epoch (or reusing a persistent
    schedule) amortizes the synchronization."""
    findings = []
    for loop in _loops(info):
        if not _sweeps_sizes(loop):
            continue
        for call in _comm_calls_in(loop):
            attr = call.func.attr  # type: ignore[union-attr]
            if attr not in _COLLECTIVES:
                continue
            receiver = call.func.value  # type: ignore[union-attr]
            if not _rules._comm_like(receiver) \
                    and not attr.endswith("_bytes"):
                continue
            findings.append(_finding(
                "OMB305", info, call,
                f"collective '{attr}()' re-synchronizes every iteration "
                "of a message-size sweep; hoist setup out of the sweep or "
                "reuse one schedule across sizes",
            ))
    return findings


# -- OMB306: buffer allocation repeated inside a communicating loop --------

def _is_allocation(info: FunctionInfo, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id in ("bytearray", "bytes"):
        return bool(call.args) and _literal_intish(info, call.args[0])
    if isinstance(func, ast.Attribute):
        root = _rules._root_name(func)
        return root in _rules.ARRAY_MODULES \
            and func.attr in _rules.ARRAY_CTORS
    return False


def check_alloc_in_loop(program: Program,
                        info: FunctionInfo) -> list[Finding]:
    """Allocating the message buffer inside the loop that communicates it
    adds allocator + zeroing cost to every iteration; allocate once
    outside and reuse."""
    findings = []
    flagged: set[int] = set()
    for loop in _loops(info):
        if not _comm_calls_in(loop):
            continue
        for node in _walk_no_nested(loop):
            if not isinstance(node, ast.Call) or id(node) in flagged:
                continue
            if _is_allocation(info, node):
                flagged.add(id(node))
                name = (node.func.attr if isinstance(node.func, ast.Attribute)
                        else node.func.id)  # type: ignore[union-attr]
                findings.append(_finding(
                    "OMB306", info, node,
                    f"'{name}()' allocates a fresh buffer every iteration "
                    "of a communicating loop; allocate once before the "
                    "loop and reuse it",
                ))
    return findings


# -- OMB307: telemetry-hook work on the disabled path ----------------------

def _guard_texts(test: ast.expr) -> frozenset[str]:
    mentioned = set()
    for sub in ast.walk(test):
        if isinstance(sub, (ast.Attribute, ast.Name)):
            text = _dotted(sub)
            if text:
                mentioned.add(text)
                mentioned.add(text.split(".")[-1])
    return frozenset(mentioned)


def _guarded_calls(root: ast.AST) -> list[tuple[ast.Call, frozenset[str]]]:
    """Every call in ``root`` paired with the names/dotted attributes
    mentioned in its enclosing ``if`` tests (``while`` tests count too:
    ``while tele is not None: tele.on_x()`` is guarded)."""
    out: list[tuple[ast.Call, frozenset[str]]] = []

    def walk(node: ast.AST, guards: frozenset[str]) -> None:
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        ):
            return
        if isinstance(node, ast.Call):
            out.append((node, guards))
        if isinstance(node, (ast.If, ast.While)):
            walk(node.test, guards)
            inner = guards | _guard_texts(node.test)
            for stmt in node.body:
                walk(stmt, inner)
            for stmt in getattr(node, "orelse", []):
                walk(stmt, inner)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, guards)

    walk(root, frozenset())
    return out


def check_unguarded_telemetry(program: Program,
                              info: FunctionInfo) -> list[Finding]:
    """Telemetry hooks must cost one attribute check when disabled; an
    unguarded hook call pays argument construction even when telemetry
    is off."""
    if not program.is_hot(info):
        return []
    findings = []
    for call, guards in _guarded_calls(info.node):
        if not isinstance(call.func, ast.Attribute):
            continue
        receiver = _dotted(call.func.value)
        if receiver is None or not _TELEMETRY_RECV.search(receiver):
            continue
        if not call.func.attr.startswith("on_") \
                and call.func.attr not in ("record", "observe", "emit"):
            continue
        root = receiver.split(".")[0]
        if receiver in guards or root in guards \
                or receiver.split(".")[-1] in guards:
            continue
        findings.append(_finding(
            "OMB307", info, call,
            f"telemetry hook '{receiver}.{call.func.attr}()' is not "
            "guarded by an enabled check; its arguments are built even "
            "when telemetry is off — wrap it in "
            f"'if {receiver} is not None:'",
        ))
    return findings


# -- OMB308: struct format re-parsed on a hot path -------------------------

def check_struct_reparse(program: Program,
                         info: FunctionInfo) -> list[Finding]:
    """``struct.pack("<q", ...)`` re-parses the format string per call;
    a module-level ``struct.Struct`` compiles it once."""
    if not program.is_hot(info) and info.cfg.max_depth() == 0:
        return []
    findings = []
    for site in info.calls:
        call = site.node
        in_loop = info.cfg.depth_of(call) >= 1
        hot = program.is_hot(info)
        if not (in_loop or hot):
            continue
        if site.receiver == "struct" and site.callee in (
            "pack", "unpack", "pack_into", "unpack_from", "calcsize",
        ):
            if call.args and isinstance(call.args[0], ast.Constant) \
                    and isinstance(call.args[0].value, str):
                where = "inside a loop" if in_loop else "on the hot path"
                findings.append(_finding(
                    "OMB308", info, call,
                    f"'struct.{site.callee}()' re-parses its format "
                    f"string on every call {where}; hoist a "
                    "'struct.Struct' instance to module level",
                ))
        elif site.receiver == "struct" and site.callee == "Struct" \
                and in_loop:
            findings.append(_finding(
                "OMB308", info, call,
                "'struct.Struct()' compiles its format inside a loop; "
                "hoist the instance to module level",
            ))
    return findings


# -- OMB309: eager log formatting on the hot path --------------------------

def _eager_format(arg: ast.expr) -> str | None:
    if isinstance(arg, ast.JoinedStr):
        return "an f-string"
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Mod):
        return "%-interpolation"
    if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Attribute) \
            and arg.func.attr == "format":
        return "'.format()'"
    return None


def check_eager_logging(program: Program,
                        info: FunctionInfo) -> list[Finding]:
    """An f-string handed to ``logger.debug`` formats even when the
    level is off; lazy ``%`` arguments only format when emitted."""
    if not program.is_hot(info):
        return []
    findings = []
    for site in info.calls:
        if site.callee not in _LOG_METHODS or site.receiver is None:
            continue
        if site.receiver.split(".")[-1] not in _LOG_RECEIVERS:
            continue
        for arg in site.node.args:
            how = _eager_format(arg)
            if how is not None:
                findings.append(_finding(
                    "OMB309", info, site.node,
                    f"log call formats {how} eagerly on the hot path; "
                    "pass lazy %-style arguments "
                    "(logger.debug(\"... %s\", value)) so disabled "
                    "levels cost nothing",
                ))
                break
    return findings


# -- OMB310: attribute chain re-resolved in a hot inner loop ---------------

def check_attr_chain_in_loop(program: Program,
                             info: FunctionInfo) -> list[Finding]:
    """``self._endpoint.engine`` resolves two attributes per mention;
    in a hot inner loop, hoist the target into a local first."""
    if not program.is_hot(info):
        return []
    findings = []
    for loop in _loops(info):
        inner_values: set[int] = set()
        call_funcs: set[int] = set()
        for node in _walk_no_nested(loop):
            if isinstance(node, ast.Attribute):
                inner_values.add(id(node.value))
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                call_funcs.add(id(node.func))
        chains: dict[str, list[ast.Attribute]] = {}
        for node in _walk_no_nested(loop):
            if not isinstance(node, ast.Attribute) \
                    or not isinstance(node.ctx, ast.Load) \
                    or id(node) in inner_values:
                continue  # only maximal chains
            # For a method call a.b.c.meth(...) the chain that gets
            # re-resolved per iteration is the receiver a.b.c — the
            # method attribute itself differs per call and can't be
            # hoisted, so count the shared prefix instead.
            target: ast.expr = node.value if id(node) in call_funcs else node
            if not isinstance(target, ast.Attribute):
                continue
            text = _dotted(target)
            if text is None or text.count(".") < 2:
                continue  # need >= 2 attribute hops (a.b.c)
            chains.setdefault(text, []).append(target)
        for text, nodes in sorted(chains.items()):
            if len(nodes) < 3:
                continue
            findings.append(_finding(
                "OMB310", info, nodes[0],
                f"attribute chain '{text}' is re-resolved {len(nodes)} "
                "times inside a hot loop; hoist it into a local before "
                "the loop",
            ))
    return findings


# -- registry --------------------------------------------------------------

PerfRuleFn = Callable[[Program, FunctionInfo], "list[Finding]"]

#: rule ID -> (checker, one-line description).
PERF_RULES: dict[str, tuple[PerfRuleFn, str]] = {
    "OMB301": (
        check_hot_copy,
        "bytes()/bytearray() copy of a buffer on the hot path",
    ),
    "OMB302": (
        check_hot_materialization,
        "slice/concat/tobytes materialization on the hot path",
    ),
    "OMB303": (
        check_pickle_fallback,
        "pickle-path send of a parameter that is buffer-capable at call "
        "sites",
    ),
    "OMB304": (
        check_blocking_in_loop,
        "blocking communication call inside a loop",
    ),
    "OMB305": (
        check_collective_in_sweep,
        "collective inside a message-size sweep loop",
    ),
    "OMB306": (
        check_alloc_in_loop,
        "buffer allocation repeated inside a communicating loop",
    ),
    "OMB307": (
        check_unguarded_telemetry,
        "telemetry hook not guarded by an enabled check",
    ),
    "OMB308": (
        check_struct_reparse,
        "struct format string re-parsed on a hot path",
    ),
    "OMB309": (
        check_eager_logging,
        "eager log-message formatting on the hot path",
    ),
    "OMB310": (
        check_attr_chain_in_loop,
        "deep attribute chain re-resolved in a hot inner loop",
    ),
}


def run_perf_rules(
    program: Program,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Run every (selected) performance rule over every function."""
    active = [
        fn for rule_id, (fn, _doc) in PERF_RULES.items()
        if (select is None or rule_id in select)
        and (ignore is None or rule_id not in ignore)
    ]
    findings: list[Finding] = []
    for info in program.functions:
        for fn in active:
            findings.extend(fn(program, info))
    return findings
