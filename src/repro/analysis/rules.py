"""Lint rules: mpi4py-API misuse patterns over Python ASTs.

Each rule is a function ``rule(scope) -> list[Finding]`` over a
:class:`Scope` (one function body, or the module top level, with nested
function bodies excluded — they form their own scopes).  Rules are
heuristic by design: they favour the patterns that corrupt benchmark
results in practice (see docs/analysis.md for the catalogue and the
paper measurements each rule is anchored to).

Rule IDs are stable; new rules append.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from . import dataflow
from .dataflow import NONBLOCKING, is_nonblocking_call
from .findings import Finding

# -- API-surface vocabulary (mirrors repro.bindings.comm_api) -------------

#: Lower-case (pickle-path) methods taking a data object first.
PICKLE_DATA_METHODS = frozenset({
    "send", "isend", "ssend", "issend", "bcast", "reduce", "allreduce",
    "gather", "scatter", "allgather", "alltoall", "scan", "sendrecv",
})
#: Methods whose names alone identify an MPI communicator receiver.
_DISTINCTIVE = frozenset({
    "bcast", "allreduce", "allgather", "alltoall", "scatter", "sendrecv",
})

LOWER_SENDS = frozenset({"send", "isend", "ssend", "issend", "sendrecv"})
UPPER_SENDS = frozenset({"Send", "Isend", "Ssend", "Issend", "Sendrecv"})
LOWER_RECVS = frozenset({"recv", "irecv"})
UPPER_RECVS = frozenset({"Recv", "Irecv"})

#: Positional index of the tag argument per method (mpi4py signatures).
TAG_POSITION = {
    "send": 2, "isend": 2, "ssend": 2, "issend": 2, "bsend": 2,
    "Send": 2, "Isend": 2, "Ssend": 2, "Issend": 2, "Bsend": 2,
    "recv": 1, "irecv": 1,
    "Recv": 2, "Irecv": 2,
}
TAG_KEYWORDS = frozenset({"tag", "sendtag", "recvtag"})

#: Reserved band for internal collective traffic (repro.mpi.constants).
INTERNAL_TAG_BASE = 2 ** 30
TAG_UB = 2 ** 30 - 1

#: Constants removed from MPI-3 / deprecated in mpi4py; using them against
#: a modern MPI module is an error waiting to happen.
DEPRECATED_MPI_ATTRS = frozenset({"UB", "LB", "HOST"})

#: Module aliases whose constructors produce buffer-protocol objects.
ARRAY_MODULES = frozenset({"np", "numpy", "cp", "cupy", "cuda", "numba"})
ARRAY_CTORS = frozenset({
    "zeros", "ones", "empty", "full", "arange", "array", "asarray",
    "frombuffer", "fromiter", "ascontiguousarray", "linspace",
    "zeros_like", "ones_like", "empty_like", "full_like", "rand", "randn",
    "random", "device_array", "to_device",
})
BYTES_CTORS = frozenset({"bytearray", "memoryview"})

WAITISH = frozenset({
    "wait", "Wait", "test", "Test", "waitall", "Waitall", "testall",
    "Testall", "waitany", "Waitany", "cancel", "Cancel", "Free", "free",
})


# -- scope model ----------------------------------------------------------

@dataclass
class Scope:
    """One lexical scope: a function body or the module top level."""

    path: str
    node: ast.AST                     # Module | FunctionDef | AsyncFunctionDef
    name: str
    #: every node in this scope, document order, nested scopes excluded
    nodes: list[ast.AST] = field(default_factory=list)
    #: simple name -> last assigned value expression
    assignments: dict[str, ast.expr] = field(default_factory=dict)
    #: statements (direct or nested in if/for/while/with), document order
    statements: list[ast.stmt] = field(default_factory=list)


_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _iter_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Yield nodes under ``root`` without descending into nested scopes."""
    todo = list(ast.iter_child_nodes(root))
    while todo:
        node = todo.pop(0)
        yield node
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        todo.extend(ast.iter_child_nodes(node))


def build_scopes(tree: ast.Module, path: str) -> list[Scope]:
    """Split a module into lintable scopes (module + each function)."""
    roots: list[tuple[ast.AST, str]] = [(tree, "<module>")]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            roots.append((node, node.name))
    scopes = []
    for root, name in roots:
        scope = Scope(path=path, node=root, name=name)
        for node in _iter_scope(root):
            scope.nodes.append(node)
            if isinstance(node, ast.stmt):
                scope.statements.append(node)
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    scope.assignments[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    scope.assignments[node.target.id] = node.value
        scopes.append(scope)
    return scopes


# -- shared predicates ----------------------------------------------------

def _root_name(node: ast.expr) -> str | None:
    """Leftmost name of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _terminal_name(node: ast.expr) -> str | None:
    """Rightmost component naming a receiver (``a.comm`` -> ``comm``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _comm_like(receiver: ast.expr) -> bool:
    """Does this expression plausibly name an MPI communicator?"""
    name = _terminal_name(receiver)
    if name is None:
        return False
    lowered = name.lower()
    return (
        any(hint in lowered for hint in ("comm", "world", "grid", "mpi"))
        or lowered in ("c", "sub", "peer")
    )


def _method_calls(scope: Scope, names: frozenset[str]) -> list[ast.Call]:
    """All ``<recv>.<method>(...)`` calls in the scope, document order."""
    out = [
        node for node in scope.nodes
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in names
    ]
    out.sort(key=lambda n: (n.lineno, n.col_offset))
    return out


def _is_buffer_expr(node: ast.expr, scope: Scope, depth: int = 0) -> bool:
    """Heuristic: does this expression yield a buffer-protocol object?"""
    if depth > 4:
        return False
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in BYTES_CTORS:
            return True
        if isinstance(func, ast.Attribute):
            root = _root_name(func)
            if root in ARRAY_MODULES and func.attr in ARRAY_CTORS:
                return True
            # np.random.rand(...), cuda.device_array(...) style chains.
            if root in ARRAY_MODULES and isinstance(func.value, ast.Attribute):
                if func.attr in ARRAY_CTORS or func.value.attr in ARRAY_CTORS:
                    return True
            # arr.astype(...)/arr.copy()/arr.reshape(...) of a known array.
            if func.attr in ("astype", "copy", "reshape", "ravel", "view"):
                return _is_buffer_expr(func.value, scope, depth + 1)
        return False
    if isinstance(node, ast.Name):
        assigned = scope.assignments.get(node.id)
        if assigned is not None and assigned is not node:
            return _is_buffer_expr(assigned, scope, depth + 1)
        return False
    if isinstance(node, (ast.List, ast.Tuple)):
        return any(_is_buffer_expr(e, scope, depth + 1) for e in node.elts)
    if isinstance(node, ast.BinOp):
        # e.g. np.arange(10) + rank: still an ndarray.
        return (
            _is_buffer_expr(node.left, scope, depth + 1)
            or _is_buffer_expr(node.right, scope, depth + 1)
        )
    if isinstance(node, ast.Subscript):
        # Slices of arrays are arrays: arr[1:] — only if base is buffer-like.
        return _is_buffer_expr(node.value, scope, depth + 1)
    return False


def _finding(rule: str, severity: str, scope: Scope, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        path=scope.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


def _finding_at(rule: str, severity: str, scope: Scope,
                pos: tuple[int, int], message: str) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        path=scope.path,
        line=pos[0],
        col=pos[1] + 1,
        message=message,
    )


_FOLDABLE_BINOPS = {
    ast.Pow: lambda a, b: a ** b,
    ast.Mult: lambda a, b: a * b,
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.LShift: lambda a, b: a << b,
}


def _literal_int(node: ast.expr) -> int | None:
    """Constant-fold simple integer expressions (``2**30``, ``1 << 20``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_int(node.operand)
        if inner is not None:
            return -inner
    if isinstance(node, ast.BinOp):
        fold = _FOLDABLE_BINOPS.get(type(node.op))
        left = _literal_int(node.left)
        right = _literal_int(node.right)
        if fold is None or left is None or right is None:
            return None
        if isinstance(node.op, (ast.Pow, ast.LShift)) \
                and not (0 <= right < 64 and abs(left) < 2 ** 32):
            return None  # refuse to fold huge exponents/shifts
        return fold(left, right)
    return None


# -- OMB001: buffer object through the pickle path ------------------------

def check_pickle_buffer(scope: Scope) -> list[Finding]:
    """Lower-case method called with a buffer-capable argument.

    The paper's Figs 32-35: ``comm.send(ndarray)`` serializes through
    pickle and costs up to ~4x the latency of ``comm.Send(ndarray)``.
    """
    findings = []
    for call in _method_calls(scope, PICKLE_DATA_METHODS):
        method = call.func.attr  # type: ignore[union-attr]
        receiver = call.func.value  # type: ignore[union-attr]
        # `send`/`gather`/... are common names on sockets, queues, executors;
        # require a comm-looking receiver unless the name is unambiguous.
        if method not in _DISTINCTIVE and not _comm_like(receiver):
            continue
        data = call.args[0] if call.args else None
        if data is None:
            for kw in call.keywords:
                if kw.arg in ("obj", "sendobj", "buf", "sendbuf"):
                    data = kw.value
                    break
        if data is None or not _is_buffer_expr(data, scope):
            continue
        upper = method[0].upper() + method[1:]
        findings.append(_finding(
            "OMB001", "warning", scope, call,
            f"buffer-capable object passed to pickle-path '{method}()'; "
            f"use '{upper}()' to avoid serialization overhead "
            "(the paper measures up to ~4x latency for the pickle path)",
        ))
    return findings


# -- OMB002: leaked non-blocking request ----------------------------------

def check_leaked_request(scope: Scope) -> list[Finding]:
    """``isend``/``irecv`` whose request is never waited or tested.

    Built on the shared alias tracker (:mod:`repro.analysis.dataflow`), so
    requests that travel through tuple unpacking or ``requests.append(...)``
    are followed to their consumption; only genuinely dead requests are
    flagged.  A never-consumed request *list* is OMB009's finding, not
    this rule's.
    """
    flow = dataflow.flow_for(scope)
    findings = []
    for post in flow.posts:
        if post.escapes or post.container is not None:
            continue
        if post.discarded:
            findings.append(_finding_at(
                "OMB002", "error", scope, post.pos,
                f"request returned by '{post.method}()' is discarded; the "
                "operation is never completed (wait/test) and its "
                "completion semantics are lost",
            ))
        elif post.names and not dataflow.ever_used(flow, post):
            findings.append(_finding_at(
                "OMB002", "error", scope, post.pos,
                f"request '{post.names[0]}' from '{post.method}()' is "
                "never used again — non-blocking operation leaked without "
                "wait/test",
            ))
    return findings


# Kept as the public predicate name other modules/tests may use.
_is_nonblocking_call = is_nonblocking_call


# -- OMB003: case-mismatched send/recv pairing ----------------------------

def check_case_mismatch(scope: Scope) -> list[Finding]:
    """Pickle-path send paired with buffer-path recv (or vice versa).

    A lower-case ``send`` ships a pickle stream; an upper-case ``Recv`` on
    the other end copies that stream raw into a typed buffer — silently
    corrupt data.  Flagged when one scope contains exactly one pairing
    direction of each case.
    """
    lower_send = _method_calls(scope, LOWER_SENDS)
    upper_send = _method_calls(scope, UPPER_SENDS)
    lower_recv = _method_calls(scope, LOWER_RECVS)
    upper_recv = _method_calls(scope, UPPER_RECVS)
    findings = []
    if lower_send and upper_recv and not upper_send and not lower_recv:
        s, r = lower_send[0], upper_recv[0]
        findings.append(_finding(
            "OMB003", "error", scope, r,
            f"'{r.func.attr}()' receives into a raw buffer but the "  # type: ignore[union-attr]
            f"matching send at line {s.lineno} is pickle-path "
            f"'{s.func.attr}()'; the buffer will be filled with a "  # type: ignore[union-attr]
            "pickle stream, not data",
        ))
    if upper_send and lower_recv and not lower_send and not upper_recv:
        s, r = upper_send[0], lower_recv[0]
        findings.append(_finding(
            "OMB003", "error", scope, r,
            f"'{r.func.attr}()' expects a pickle stream but the "  # type: ignore[union-attr]
            f"matching send at line {s.lineno} is buffer-path "
            f"'{s.func.attr}()'; unpickling raw bytes will fail or "  # type: ignore[union-attr]
            "corrupt",
        ))
    return findings


# -- OMB004: reserved or invalid tags -------------------------------------

def check_reserved_tag(scope: Scope) -> list[Finding]:
    """Literal tags in the reserved internal band or outside legal range."""
    findings = []
    for call in _method_calls(scope, frozenset(TAG_POSITION)):
        method = call.func.attr  # type: ignore[union-attr]
        tag_expr = None
        pos = TAG_POSITION[method]
        if len(call.args) > pos:
            tag_expr = call.args[pos]
        for kw in call.keywords:
            if kw.arg in TAG_KEYWORDS:
                tag_expr = kw.value
        if tag_expr is None:
            continue
        tag = _literal_int(tag_expr)
        if tag is None:
            continue
        is_recv = method in LOWER_RECVS or method in UPPER_RECVS
        if tag >= INTERNAL_TAG_BASE:
            findings.append(_finding(
                "OMB004", "error", scope, call,
                f"tag {tag} is in the reserved internal-collective band "
                f"(>= 2**30); user tags must be in [0, {TAG_UB}]",
            ))
        elif tag < 0 and not (is_recv and tag == -1):
            findings.append(_finding(
                "OMB004", "error", scope, call,
                f"negative tag {tag} is invalid for '{method}()'"
                + (" (only ANY_TAG == -1 is legal on receives)"
                   if is_recv else ""),
            ))
    return findings


# -- OMB005: deprecated constants -----------------------------------------

def check_deprecated_constant(scope: Scope) -> list[Finding]:
    """``MPI.UB``/``MPI.LB``/``MPI.HOST`` — removed in MPI-3."""
    findings = []
    for node in scope.nodes:
        if isinstance(node, ast.Attribute) \
                and node.attr in DEPRECATED_MPI_ATTRS \
                and _root_name(node) == "MPI":
            findings.append(_finding(
                "OMB005", "warning", scope, node,
                f"'MPI.{node.attr}' was deprecated in MPI-2 and removed "
                "in MPI-3; modern MPI modules do not define it",
            ))
    return findings


# -- OMB006: recv-before-send on both rank branches -----------------------

def check_head_to_head_recv(scope: Scope) -> list[Finding]:
    """Both branches of a rank split block in recv before sending.

    ``if rank == 0: recv; send  else: recv; send`` is the canonical
    head-to-head deadlock: each side waits for a message the other has
    not sent yet.  (The runtime verifier catches the live counterpart.)
    """
    findings = []
    for node in scope.nodes:
        if not isinstance(node, ast.If) or not node.orelse:
            continue
        if not _mentions_rank(node.test):
            continue
        branches = [node.body, node.orelse]
        if all(_recv_blocks_before_send(b) for b in branches):
            findings.append(_finding(
                "OMB006", "warning", scope, node,
                "both rank branches post a blocking receive before any "
                "send — head-to-head receives deadlock once messages "
                "exceed eager limits (reorder one side or use Sendrecv)",
            ))
    return findings


def _mentions_rank(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "rank":
            return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "rank", "Get_rank",
        ):
            return True
    return False


def _recv_blocks_before_send(body: list[ast.stmt]) -> bool:
    """First p2p op in the branch is a blocking recv, and a send follows."""
    ops: list[tuple[int, int, str]] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in ("recv", "Recv"):
                    ops.append((node.lineno, node.col_offset, "recv"))
                elif attr in ("send", "Send", "isend", "Isend"):
                    ops.append((node.lineno, node.col_offset, "send"))
                elif attr in ("sendrecv", "Sendrecv", "irecv", "Irecv"):
                    # Combined or non-blocking first ops break the deadlock.
                    ops.append((node.lineno, node.col_offset, "safe"))
    ops.sort()
    kinds = [k for _, _, k in ops]
    return bool(kinds) and kinds[0] == "recv" and "send" in kinds


# -- OMB007: buffer mutated while a non-blocking operation is pending -----

def check_buffer_mutation(scope: Scope) -> list[Finding]:
    """Buffer touched in place between a non-blocking post and its wait.

    MPI forbids modifying a send buffer (and touching a receive buffer at
    all) while the operation is in flight.  The pending window runs from
    the post to the first load of any request alias — the earliest point
    the program could wait or test it (the dynamic counterpart is the
    sanitizer's OMB201/OMB202).
    """
    flow = dataflow.flow_for(scope)
    findings = []
    for post in flow.posts:
        if post.buffer is None or post.discarded or post.escapes:
            continue
        end = dataflow.completion_pos(flow, post)
        for node, pos, desc in dataflow.buffer_mutations(
            scope, post.buffer, post.pos, end
        ):
            findings.append(_finding(
                "OMB007", "error", scope, node,
                f"buffer '{post.buffer}' is mutated ({desc}) while "
                f"'{post.method}()' posted at line {post.pos[0]} is still "
                "pending — complete the request with wait/test before "
                "touching the buffer",
            ))
    return findings


# -- OMB008: receive buffer read before completion ------------------------

def check_premature_read(scope: Scope) -> list[Finding]:
    """``Irecv`` buffer contents read before the request completes.

    Until wait/test succeeds the receive buffer's contents are undefined;
    reading them races the transport's write-back.  Metadata accesses
    (``buf.shape``, ``len(buf)``) are fine and not flagged.
    """
    flow = dataflow.flow_for(scope)
    findings = []
    for post in flow.posts:
        if not post.recv or post.buffer is None \
                or post.discarded or post.escapes:
            continue
        end = dataflow.completion_pos(flow, post)
        reads = dataflow.buffer_reads(scope, post.buffer, post.pos, end)
        if reads:
            node, pos = reads[0]
            findings.append(_finding(
                "OMB008", "error", scope, node,
                f"receive buffer '{post.buffer}' is read before the "
                f"'{post.method}()' posted at line {post.pos[0]} "
                "completes — its contents are undefined until wait/test",
            ))
    return findings


# -- OMB009: request list collected but never consumed --------------------

def check_unwaited_request_list(scope: Scope) -> list[Finding]:
    """Requests collected into a list that never reaches waitall/testall.

    ``reqs.append(comm.Irecv(...))`` in a loop, then the list is dropped:
    every operation leaks.  Only lists born in this scope are judged —
    a list received as a parameter or attribute may be consumed elsewhere.
    """
    flow = dataflow.flow_for(scope)
    by_container: dict[str, list[dataflow.NBPost]] = {}
    for post in flow.posts:
        if post.container is not None:
            by_container.setdefault(post.container, []).append(post)
    findings = []
    for name, posts in sorted(by_container.items()):
        if name not in flow.fresh_lists or flow.uses.get(name):
            continue
        count = len(posts)
        sites = "site" if count == 1 else "sites"
        findings.append(_finding_at(
            "OMB009", "error", scope, posts[0].pos,
            f"request list '{name}' collects non-blocking requests "
            f"({count} post {sites}) but is never passed to "
            "waitall/testall or otherwise used — the operations are "
            "never completed",
        ))
    return findings


# -- OMB010: one buffer posted to two concurrent operations ---------------

def check_concurrent_buffer_posts(scope: Scope) -> list[Finding]:
    """Same buffer posted to overlapping non-blocking operations.

    Two pending receives into one buffer (or a send racing a receive on
    the same memory) leave its contents transport-order dependent.  Two
    concurrent *sends* of one buffer are legal and common (the bandwidth
    benchmark's window) and are not flagged.
    """
    flow = dataflow.flow_for(scope)
    by_buffer: dict[str, list[dataflow.NBPost]] = {}
    for post in flow.posts:
        if post.buffer is not None and not post.escapes:
            by_buffer.setdefault(post.buffer, []).append(post)
    findings = []
    for buffer, posts in sorted(by_buffer.items()):
        flagged: set[int] = set()
        for i, first in enumerate(posts):
            end = dataflow.completion_pos(flow, first)
            for second in posts[i + 1:]:
                if id(second) in flagged or second.pos >= end:
                    continue
                if not (first.recv or second.recv):
                    continue  # send+send overlap is MPI-legal
                flagged.add(id(second))
                findings.append(_finding(
                    "OMB010", "error", scope, second.call,
                    f"buffer '{buffer}' is posted to '{second.method}()' "
                    f"while '{first.method}()' posted at line "
                    f"{first.pos[0]} is still pending on the same buffer "
                    "— concurrent operations may fill or drain it in "
                    "transport order",
                ))
    return findings


# -- registry -------------------------------------------------------------

RuleFn = Callable[[Scope], "list[Finding]"]

#: rule ID -> (checker, one-line description for --list-rules / docs).
RULES: dict[str, tuple[RuleFn, str]] = {
    "OMB001": (
        check_pickle_buffer,
        "buffer-capable object sent through a pickle-path (lower-case) "
        "method",
    ),
    "OMB002": (
        check_leaked_request,
        "non-blocking request never waited or tested",
    ),
    "OMB003": (
        check_case_mismatch,
        "upper/lower-case send/recv pairing mismatch",
    ),
    "OMB004": (
        check_reserved_tag,
        "tag in the reserved internal band or outside the legal range",
    ),
    "OMB005": (
        check_deprecated_constant,
        "deprecated/removed MPI constant",
    ),
    "OMB006": (
        check_head_to_head_recv,
        "blocking receive posted before send on both rank branches",
    ),
    "OMB007": (
        check_buffer_mutation,
        "buffer mutated between a non-blocking post and its wait/test",
    ),
    "OMB008": (
        check_premature_read,
        "receive buffer read before the non-blocking receive completes",
    ),
    "OMB009": (
        check_unwaited_request_list,
        "request list collected but never passed to waitall/testall",
    ),
    "OMB010": (
        check_concurrent_buffer_posts,
        "same buffer posted to two concurrent non-blocking operations",
    ),
}


def run_rules(
    tree: ast.Module,
    path: str,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Run every (selected) rule over every scope of a parsed module."""
    active = {
        rule_id: fn
        for rule_id, (fn, _doc) in RULES.items()
        if (select is None or rule_id in select)
        and (ignore is None or rule_id not in ignore)
    }
    findings: list[Finding] = []
    for scope in build_scopes(tree, path):
        for fn in active.values():
            findings.extend(fn(scope))
    return findings
