"""Runtime MPI verifier — live deadlock, mismatch, and leak detection.

Activated with::

    with repro.analysis.verify(comm) as v:
        ...   # any runtime/bindings traffic on this rank

or for benchmark runs via the driver's ``--validate`` flag.  While
active, the verifier hooks this rank's endpoint (duck-typed: the runtime
consults ``endpoint.verifier``/``ticket.verifier`` without importing this
module) and detects:

* **deadlock** — under the threads transport, every rank's blocking
  receive registers in a shared wait-for graph; a cycle of blocked ranks
  whose pending receives can only be satisfied by other blocked ranks is
  reported as :class:`DeadlockError` naming each rank's pending
  operation.  Sound here because the inproc fabric delivers
  synchronously: a blocked rank cannot have a message in flight.
* **timeout escalation** — under multi-process transports (no shared
  graph), any receive pending longer than ``op_timeout`` raises the same
  diagnostic from local state, bounding hangs.
* **collective mismatches** — each rank's Nth collective on a
  communicator must agree on (operation, root, reduce-op) across ranks;
  disagreement raises :class:`CollectiveMismatchError` at call time.
* **count mismatches** — a buffer receive completing with fewer bytes
  than the posted buffer (beyond the existing oversized-message
  :class:`~repro.mpi.exceptions.TruncationError`).
* **leaked operations at finalize** — receives posted but never
  completed, and requests never waited/tested, reported when the
  ``verify`` block exits.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass

from .findings import Finding

#: Tags at or above this value belong to internal collective traffic
#: (mirrors repro.mpi.constants.INTERNAL_TAG_BASE; kept literal so this
#: module stays import-light for the hook path).
_INTERNAL_TAG_BASE = 2 ** 30


class VerifyError(RuntimeError):
    """Base class for runtime-verifier diagnostics."""


class DeadlockError(VerifyError):
    """A wait-for cycle (or bounded-timeout escalation) was detected."""


class CollectiveMismatchError(VerifyError):
    """Ranks disagreed on the Nth collective call on a communicator."""


class CountMismatchError(VerifyError):
    """A receive completed with fewer bytes than the posted buffer."""


class PendingOperationError(VerifyError):
    """Operations were still pending when verification ended."""


class PeerFailedError(VerifyError):
    """A receive waits on a rank whose verified region already failed."""


@dataclass
class _WaitInfo:
    """One rank's currently blocked receive (world-rank coordinates)."""

    rank: int
    source: int | None    # sender world rank, None = ANY_SOURCE
    tag: int
    context: int
    collective: str | None
    since: float
    ticket: object

    def describe(self) -> str:
        src = "ANY_SOURCE" if self.source is None else self.source
        where = (
            f"in collective '{self.collective}'"
            if self.collective is not None
            else f"tag={self.tag}"
        )
        return (
            f"rank {self.rank}: recv(source={src}, {where}, "
            f"context={self.context:#x}) pending "
            f"{time.monotonic() - self.since:.2f}s"
        )


class _SharedState:
    """Cross-rank verifier state, shared through the transport fabric.

    Under the threads transport every rank's :class:`Verifier` resolves to
    the same instance (anchored on the ``InprocFabric``), enabling the
    wait-for graph and the collective ledger.  Multi-process transports
    get a per-process instance, degrading gracefully to local checks.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ranks: set[int] = set()
        self.waiting: dict[int, _WaitInfo] = {}
        self.failed: dict[int, str] = {}
        #: members of a detected wait-for cycle -> shared diagnostic, so
        #: every member raises the same DeadlockError (not a peer error).
        self.deadlocked: dict[int, str] = {}
        #: ranks whose collective can never complete because a peer
        #: entered a mismatched one -> shared diagnostic.
        self.mismatched: dict[int, str] = {}
        #: (rank, context) -> next collective call index.  Lives here, not
        #: on the per-session Verifier, so sequential verify() regions on
        #: one fabric stay aligned even when ranks overlap session exits.
        self.coll_seq: dict[tuple[int, int], int] = {}
        #: (context, call index) -> ((name, root, op), first rank)
        self.ledger: dict[tuple[int, int], tuple[tuple, int]] = {}

    # -- membership ------------------------------------------------------
    def register(self, rank: int) -> None:
        with self.lock:
            self.ranks.add(rank)

    def unregister(self, rank: int) -> None:
        with self.lock:
            self.ranks.discard(rank)
            self.waiting.pop(rank, None)
            if not self.ranks:
                # Last rank out: reset session state so a later verify()
                # on the same fabric starts from a clean ledger.
                self.ledger.clear()
                self.failed.clear()
                self.deadlocked.clear()
                self.mismatched.clear()
                self.coll_seq.clear()

    def mark_failed(self, rank: int, reason: str) -> None:
        with self.lock:
            self.failed[rank] = reason

    # -- wait-for graph --------------------------------------------------
    def set_waiting(self, info: _WaitInfo) -> None:
        with self.lock:
            self.waiting[info.rank] = info

    def clear_waiting(self, rank: int) -> None:
        with self.lock:
            self.waiting.pop(rank, None)

    def failed_source(self, info: _WaitInfo) -> tuple[int, str] | None:
        """Has a rank this receive depends on already failed?"""
        with self.lock:
            if not self.failed:
                return None
            if info.source is None:
                rank, reason = next(iter(self.failed.items()))
                return rank, reason
            if info.source in self.failed:
                return info.source, self.failed[info.source]
        return None

    def find_deadlock(self, min_age: float) -> dict[int, _WaitInfo]:
        """Return the set of provably deadlocked ranks (empty if none).

        A rank is *possibly live* if it is not blocked, or if any rank
        its receive could be satisfied by is possibly live.  The fixpoint
        complement is the deadlocked set: every potential sender is
        itself blocked, so no future delivery can occur (the inproc
        fabric has no in-flight window — sends deliver synchronously).
        """
        now = time.monotonic()
        with self.lock:
            waiting = dict(self.waiting)
            ranks = set(self.ranks)
        targets = {}
        for rank, info in waiting.items():
            targets[rank] = (
                ranks - {rank} if info.source is None else {info.source}
            )
        live = ranks - set(waiting)
        changed = True
        while changed:
            changed = False
            for rank, deps in targets.items():
                if rank not in live and deps & live:
                    live.add(rank)
                    changed = True
        dead = {
            rank: waiting[rank]
            for rank in set(targets) - live
        }
        # Discard transient states: a member whose message just arrived
        # (event set but waiter not yet woken) or that only just blocked.
        for rank, info in dead.items():
            if info.ticket.done():  # type: ignore[attr-defined]
                return {}
            if now - info.since < min_age:
                return {}
        return dead


#: fabric/transport -> shared state for all ranks communicating over it.
_STATES: "weakref.WeakKeyDictionary[object, _SharedState]" = \
    weakref.WeakKeyDictionary()
_STATES_LOCK = threading.Lock()


def _shared_state_for(transport: object) -> _SharedState:
    anchor = getattr(transport, "_fabric", None)
    if anchor is None:
        anchor = transport
    with _STATES_LOCK:
        state = _STATES.get(anchor)
        if state is None:
            state = _SharedState()
            _STATES[anchor] = state
        return state


class Verifier:
    """Per-rank verifier handle, installed on one endpoint.

    The runtime calls into this object through three duck-typed hook
    points: ``Comm`` registers posted receives and collective entries,
    ``RecvTicket.wait`` delegates its blocking wait to
    :meth:`wait_ticket`, and the bindings layer reports byte counts of
    completed buffer receives.
    """

    def __init__(
        self,
        endpoint,
        shared: _SharedState,
        op_timeout: float = 30.0,
        grace: float = 0.25,
        poll: float = 0.02,
        strict: bool = True,
    ) -> None:
        self.endpoint = endpoint
        self.rank: int = endpoint.world_rank
        self.shared = shared
        self.op_timeout = op_timeout
        self.grace = grace
        self.poll = poll
        self.strict = strict
        self.findings: list[Finding] = []
        self._tracked: dict[int, tuple] = {}   # id(ticket) -> (ticket, desc)
        self._last_collective: str | None = None
        self._tag_collective: dict[int, str] = {}

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> None:
        self.shared.register(self.rank)
        self.endpoint.verifier = self

    def detach(self) -> None:
        if self.endpoint.verifier is self:
            self.endpoint.verifier = None
        self.shared.unregister(self.rank)

    def abort(self, exc: BaseException) -> None:
        """Record this rank's failure so blocked peers fail fast."""
        self.shared.mark_failed(self.rank, repr(exc))

    def on_rank_failed(self, rank: int, reason: str) -> None:
        """The failure detector declared a *peer* rank dead.

        Called from the detector thread; must never raise — it sits on
        the path that unblocks every pending receive.
        """
        self.shared.mark_failed(rank, reason)
        self.findings.append(Finding(
            rule="OMB103", severity="error", path=f"rank {self.rank}",
            line=0, col=0,
            message=f"peer rank {rank} declared failed: {reason}",
        ))

    def finish(self) -> None:
        """Finalize checks: nothing may still be pending on this rank."""
        leaks = []
        for ticket, source_world, tag, context in self._tracked.values():
            if getattr(ticket, "cancelled", False):
                continue
            state = "matched but never waited/tested" if ticket.done() \
                else "still unmatched"
            src = "ANY_SOURCE" if source_world is None else source_world
            leaks.append(
                f"recv(source={src}, tag={tag}, context={context:#x}) "
                f"{state}"
            )
        unexpected = self.endpoint.engine.pending_unexpected()
        if unexpected:
            leaks.append(
                f"{unexpected} delivered message(s) never received"
            )
        if not leaks:
            return
        message = (
            f"rank {self.rank}: {len(leaks)} operation(s) pending at "
            "finalize: " + "; ".join(leaks)
        )
        self._report("OMB102", message, PendingOperationError)

    def _report(self, rule: str, message: str, exc_type) -> None:
        self.findings.append(Finding(
            rule=rule, severity="error", path=f"rank {self.rank}",
            line=0, col=0, message=message,
        ))
        if self.strict:
            raise exc_type(message)

    # -- hooks: point-to-point -------------------------------------------
    def on_post(self, ticket, source_world: int | None, tag: int,
                context: int) -> None:
        """A receive was posted on this rank (called from Comm).

        ``source_world`` is the sender's *world* rank (None for
        ANY_SOURCE) — the coordinate system of the wait-for graph; the
        ticket itself only knows communicator-local ranks.
        """
        ticket.verifier = self
        self._tracked[id(ticket)] = (ticket, source_world, tag, context)

    def on_consume(self, ticket) -> None:
        """The receive completed and its result was consumed."""
        self._tracked.pop(id(ticket), None)

    def wait_ticket(self, ticket, timeout: float | None) -> None:
        """Slice-wait on a ticket with deadlock/timeout surveillance."""
        event = ticket._event
        if event.is_set():
            self.on_consume(ticket)
            return
        tracked = self._tracked.get(id(ticket))
        if tracked is not None:
            _t, source, tag, context = tracked
        else:
            # Untracked ticket (posted outside the hook path): fall back
            # to local fields; correct for COMM_WORLD, conservative else.
            source = None if ticket.source < 0 else ticket.source
            tag, context = ticket.tag, ticket.context
        info = _WaitInfo(
            rank=self.rank,
            source=source,
            tag=tag,
            context=context,
            collective=(
                self._tag_collective.get(tag)
                if tag >= _INTERNAL_TAG_BASE else None
            ),
            since=time.monotonic(),
            ticket=ticket,
        )
        deadline = None if timeout is None else info.since + timeout
        self.shared.set_waiting(info)
        try:
            while True:
                if event.wait(self.poll):
                    self.on_consume(ticket)
                    return
                now = time.monotonic()
                with self.shared.lock:
                    marked = self.shared.deadlocked.get(self.rank)
                    mismatch = self.shared.mismatched.get(self.rank)
                if marked is not None:
                    # A peer detected a cycle this rank belongs to.
                    raise DeadlockError(marked)
                if mismatch is not None:
                    # A peer entered a mismatched collective; this rank's
                    # collective (or dependent receive) cannot complete.
                    raise CollectiveMismatchError(mismatch)
                if now - info.since >= self.grace:
                    dead = self.shared.find_deadlock(self.grace)
                    if self.rank in dead:
                        message = (
                            "deadlock detected among ranks "
                            f"{sorted(dead)}: "
                            + "; ".join(
                                dead[r].describe() for r in sorted(dead)
                            )
                        )
                        with self.shared.lock:
                            for member in dead:
                                self.shared.deadlocked.setdefault(
                                    member, message
                                )
                        raise DeadlockError(message)
                failed = self.shared.failed_source(info)
                if failed is not None:
                    peer, reason = failed
                    raise PeerFailedError(
                        f"rank {self.rank} waits on rank {peer}, whose "
                        f"verified region already failed: {reason}"
                    )
                if now - info.since >= self.op_timeout:
                    raise DeadlockError(
                        f"operation exceeded the {self.op_timeout}s "
                        "verification timeout — "
                        + self._timeout_snapshot(info)
                    )
                if deadline is not None and now >= deadline:
                    raise TimeoutError(
                        f"receive (source={ticket.source}, "
                        f"tag={ticket.tag}) timed out after {timeout}s"
                    )
        finally:
            self.shared.clear_waiting(self.rank)

    def _timeout_snapshot(self, info: _WaitInfo) -> str:
        with self.shared.lock:
            waiting = list(self.shared.waiting.values())
        if not waiting:
            waiting = [info]
        return "pending operations: " + "; ".join(
            w.describe() for w in sorted(waiting, key=lambda w: w.rank)
        )

    # -- hooks: collectives ----------------------------------------------
    def on_collective(self, context: int, name: str,
                      root: int | None = None,
                      op: str | None = None) -> None:
        """A collective was entered on this rank (called from Comm)."""
        self._last_collective = name
        entry = (name, root, op)
        with self.shared.lock:
            index = self.shared.coll_seq.get((self.rank, context), 0)
            self.shared.coll_seq[(self.rank, context)] = index + 1
            prev = self.shared.ledger.setdefault(
                (context, index), (entry, self.rank)
            )
        (prev_entry, prev_rank) = prev
        if prev_entry != entry and prev_rank != self.rank:
            pname, proot, pop = prev_entry
            message = (
                f"collective mismatch on context {context:#x}, call "
                f"#{index}: rank {self.rank} entered "
                f"{_describe_collective(name, root, op)} but rank "
                f"{prev_rank} entered "
                f"{_describe_collective(pname, proot, pop)}"
            )
            # Peers blocked inside the mismatched collective can never
            # complete it; mark them so they raise this same diagnostic
            # instead of a generic peer-failure.
            with self.shared.lock:
                for member in self.shared.ranks - {self.rank}:
                    self.shared.mismatched.setdefault(member, message)
            raise CollectiveMismatchError(message)

    def on_collective_tag(self, tag: int) -> None:
        """Map a reserved collective tag to the entered collective name."""
        if self._last_collective is not None:
            self._tag_collective[tag] = self._last_collective

    # -- hooks: bindings layer -------------------------------------------
    def check_recv_count(self, received: int, expected: int,
                         source: int, tag: int) -> None:
        """A buffer receive completed; counts must match exactly."""
        if received == expected:
            return
        self._report(
            "OMB101",
            f"rank {self.rank}: receive completed with {received} bytes "
            f"into a {expected}-byte buffer (source={source}, tag={tag}) "
            "— send/recv count or datatype mismatch",
            CountMismatchError,
        )


def _describe_collective(name: str, root: int | None, op: str | None) -> str:
    parts = []
    if root is not None:
        parts.append(f"root={root}")
    if op is not None:
        parts.append(f"op={op}")
    return f"{name}({', '.join(parts)})"


def _resolve_endpoint(target):
    """Accept a runtime Comm/World, a bindings Comm/CommWorld, or an
    Endpoint itself."""
    endpoint = getattr(target, "endpoint", None)
    if endpoint is not None:
        return endpoint
    runtime = getattr(target, "runtime", None)
    if runtime is not None:
        return runtime.endpoint
    if hasattr(target, "engine") and hasattr(target, "transport"):
        return target
    raise TypeError(
        f"cannot resolve an MPI endpoint from {type(target).__name__!r}; "
        "pass a communicator, a World, or an Endpoint"
    )


@contextmanager
def verify(
    target,
    *,
    op_timeout: float = 30.0,
    grace: float = 0.25,
    poll: float = 0.02,
    strict: bool = True,
):
    """Verify all MPI traffic of this rank inside the ``with`` block.

    ``target`` is any communicator-bearing object (runtime ``Comm`` or
    ``World``, bindings ``Comm``/``CommWorld``, or an ``Endpoint``).
    Every participating rank should enter ``verify`` at the same logical
    point of the program; under the threads transport the ranks share
    one cross-rank state and get full deadlock/mismatch detection, under
    process transports each rank verifies locally with timeout
    escalation.

    ``op_timeout`` bounds any single blocking operation; ``grace`` is the
    minimum blocked time before a wait-for cycle is reported; ``strict``
    raises on count-mismatch/finalize findings instead of only recording
    them on ``Verifier.findings``.
    """
    endpoint = _resolve_endpoint(target)
    shared = _shared_state_for(endpoint.transport)
    v = Verifier(
        endpoint, shared,
        op_timeout=op_timeout, grace=grace, poll=poll, strict=strict,
    )
    v.attach()
    try:
        yield v
    except BaseException as exc:
        v.abort(exc)
        raise
    else:
        v.finish()
    finally:
        v.detach()
