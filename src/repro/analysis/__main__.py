"""``python -m repro.analysis`` — subsystem usage summary."""

from __future__ import annotations

import sys

USAGE = """\
repro.analysis — MPI correctness tooling for OMB-Py

Static linter (mpi4py-API misuse; see `ombpy-lint --list-rules`):
    ombpy-lint [paths...] [--format text|json] [--select IDs] [--ignore IDs]
    python -m repro.analysis.lint examples/ benchmarks/

Runtime verifier (deadlock / collective-mismatch / leak detection):
    with repro.analysis.verify(comm):          # in user code
        ...
    ombpy <benchmark> --threads N --validate   # in the benchmark driver

Documentation: docs/analysis.md
"""


def main() -> int:
    print(USAGE, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
