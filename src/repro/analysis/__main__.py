"""``python -m repro.analysis`` — subsystem usage summary."""

from __future__ import annotations

import sys

USAGE = """\
repro.analysis — MPI correctness tooling for OMB-Py

Static linter (mpi4py-API misuse; see `ombpy-lint --list-rules`):
    ombpy-lint [paths...] [--format text|json|sarif] [--select IDs]
               [--ignore IDs]
    python -m repro.analysis.lint examples/ benchmarks/

Whole-program performance & communication-graph analysis (hot-path
copies, blocking calls in loops, unmatched tags; see docs/perf-lint.md):
    ombpy-lint --perf --commgraph src/ benchmarks/ examples/
    ombpy-lint --perf --commgraph --baseline tools/perf_lint_baseline.json \\
               --inventory results/perf_lint.json src/

Runtime verifier (deadlock / collective-mismatch / leak detection):
    with repro.analysis.verify(comm):          # in user code
        ...
    ombpy <benchmark> --threads N --validate   # in the benchmark driver

Buffer-race sanitizer (write-after-Isend, touch-before-Wait, overlapping
pins, mid-collective mutation; see docs/race.md):
    with repro.analysis.sanitize(comm):        # in user code
        ...
    ombpy <benchmark> --threads N --sanitize   # in the benchmark driver

Documentation: docs/analysis.md, docs/race.md
"""


def main() -> int:
    print(USAGE, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
