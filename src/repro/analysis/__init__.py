"""Correctness analysis for MPI programs written against :mod:`repro`.

Two complementary halves, mirroring how MPI-Checker (static, clang-based)
and MUST (dynamic, PMPI-based) divide the problem for C MPI codes:

* :mod:`repro.analysis.lint` — an AST linter (``ombpy-lint``) that flags
  mpi4py-API misuse *before* a program runs: buffer-capable objects sent
  through the pickle path (the paper's ~4x latency trap), leaked
  non-blocking requests, case-mismatched send/recv pairs, reserved tags,
  deprecated constants, and recv-before-send deadlock shapes.
* :mod:`repro.analysis.verifier` — a runtime verifier
  (``with repro.analysis.verify(comm): ...`` or the benchmark driver's
  ``--validate`` flag) that hooks the matching engine and collectives to
  detect real-time deadlock, cross-rank collective mismatches, count
  mismatches, and operations still pending at finalize.
* :mod:`repro.analysis.race` — a buffer-race sanitizer
  (``with repro.analysis.sanitize(comm): ...`` or the driver's
  ``--sanitize`` flag) that pins every buffer posted to a non-blocking
  operation and, with per-rank vector clocks and content snapshots,
  detects write-after-Isend, read/write-before-Wait, overlapping pinned
  regions, and mid-collective buffer mutation.

On top of the linter sits a whole-program engine
(:mod:`repro.analysis.interproc`) with four opt-in rule families:
``--perf`` (:mod:`.perf`, OMB3xx hot-path waste), ``--commgraph``
(:mod:`.commgraph`, OMB4xx send/recv matching), ``--protocol``
(:mod:`.protocol`, OMB50x — a rank-symbolic verifier that proves
collective-order and deadlock properties parametrically in the job
size, using the :mod:`.rankdom` symbolic-rank domain), and ``--scale``
(:mod:`.scale`, OMB51x — scalability debt priced with LogGP cost
estimates from :mod:`repro.simulator`).
"""

from __future__ import annotations

from .findings import Finding, findings_to_json, findings_to_sarif

# Submodules are imported lazily: eagerly importing ``lint`` here would
# trip runpy's double-import warning for ``python -m repro.analysis.lint``.
_LINT_NAMES = {"lint_file", "lint_paths", "lint_source"}
_VERIFIER_NAMES = {
    "CollectiveMismatchError",
    "CountMismatchError",
    "DeadlockError",
    "PeerFailedError",
    "PendingOperationError",
    "Verifier",
    "VerifyError",
    "verify",
}
_RACE_NAMES = {
    "CollectiveBufferError",
    "OverlappingPinError",
    "RaceError",
    "ReadBeforeWaitError",
    "Sanitizer",
    "VectorClock",
    "WriteAfterPostError",
    "sanitize",
}


def __getattr__(name: str):
    if name in _LINT_NAMES:
        from . import lint

        return getattr(lint, name)
    if name in _VERIFIER_NAMES:
        from . import verifier

        return getattr(verifier, name)
    if name in _RACE_NAMES:
        from . import race

        return getattr(race, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Finding",
    "findings_to_json",
    "findings_to_sarif",
    "lint_file",
    "lint_paths",
    "lint_source",
    "verify",
    "Verifier",
    "VerifyError",
    "DeadlockError",
    "CollectiveMismatchError",
    "CountMismatchError",
    "PendingOperationError",
    "PeerFailedError",
    "sanitize",
    "Sanitizer",
    "VectorClock",
    "RaceError",
    "WriteAfterPostError",
    "ReadBeforeWaitError",
    "OverlappingPinError",
    "CollectiveBufferError",
]
