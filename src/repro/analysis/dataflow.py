"""Alias-tracking dataflow over lint scopes.

A reaching-definitions walk shared by the non-blocking-hazard lint rules
(OMB002, OMB007-OMB010): within one :class:`~repro.analysis.rules.Scope`
it records every non-blocking post as an :class:`NBPost` — which simple
names alias the returned request (direct assignment and tuple unpacking),
which list container collects it (list/tuple literals, comprehensions,
``.append()``), and which simple name the posted buffer argument carries —
then answers the questions the rules ask: *when does this request
complete?* (the first load of any alias after the post), *is this buffer
mutated or read inside the pending window?*, *is this request list ever
consumed?*

The walk is deliberately first-order: only simple names are tracked, and
any post whose request lands somewhere else (an attribute, a dict, a call
argument) is marked ``escapes`` and exempted from the leak rules — a
heuristic linter must prefer false negatives over false positives.

Buffer tracking applies to the upper-case methods only: the pickle-path
``isend`` serializes its object *at post time*, so mutating it afterwards
is safe; ``Isend``/``Issend``/``Irecv`` hand the live buffer to MPI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Non-blocking request-returning methods (both API families).
NONBLOCKING = frozenset({
    "isend", "irecv", "issend", "Isend", "Irecv", "Issend",
})
#: Upper-case posts whose first argument is a live communication buffer.
BUFFER_ARG_METHODS = frozenset({"Isend", "Issend", "Irecv"})
#: Posts that *write* their buffer on completion.
RECV_METHODS = frozenset({"Irecv"})

#: Attribute reads that inspect metadata, not buffer contents.
METADATA_ATTRS = frozenset({
    "shape", "dtype", "nbytes", "size", "itemsize", "ndim", "flags",
    "strides", "base",
})
#: Builtins whose application to a buffer does not read its contents.
METADATA_BUILTINS = frozenset({"len", "id", "type"})
#: In-place mutating methods of ndarray/bytearray/list.
MUTATING_METHODS = frozenset({
    "fill", "sort", "put", "resize", "setflags", "partition", "itemset",
    "byteswap", "setfield", "append", "extend", "insert", "pop", "remove",
    "reverse", "clear",
})
#: Methods collecting a request into a list container.
_COLLECTOR_METHODS = ("append", "extend", "insert")

#: Sentinel window end for a post with no visible completion.
NEVER = (float("inf"), 0)


def _pos(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def is_nonblocking_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in NONBLOCKING
    )


def _subscript_root(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@dataclass
class NBPost:
    """One non-blocking post site and where its request went."""

    call: ast.Call
    method: str
    pos: tuple[int, int]
    #: simple names aliasing the request (assignment / tuple unpacking)
    names: tuple[str, ...] = ()
    #: list variable collecting the request (literal/comprehension/append)
    container: str | None = None
    #: the request was dropped on the floor (bare expression statement)
    discarded: bool = False
    #: the request landed somewhere untrackable (attribute, call arg, ...)
    escapes: bool = False
    #: simple name of the posted buffer argument (upper-case methods only)
    buffer: str | None = None

    @property
    def recv(self) -> bool:
        return self.method in RECV_METHODS


@dataclass
class ScopeFlow:
    """The dataflow facts one scope's rules share."""

    posts: list[NBPost] = field(default_factory=list)
    #: name -> sorted Load-use positions (collector receivers excluded)
    uses: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    #: names bound to a fresh list/tuple in this scope (container lifetime
    #: is visible, so "never consumed" is a sound claim)
    fresh_lists: set[str] = field(default_factory=set)


def _buffer_name(call: ast.Call, method: str) -> str | None:
    if method not in BUFFER_ARG_METHODS:
        return None
    arg = call.args[0] if call.args else None
    if arg is None:
        for kw in call.keywords:
            if kw.arg == "buf":
                arg = kw.value
                break
    return arg.id if isinstance(arg, ast.Name) else None


def flow_for(scope) -> ScopeFlow:
    """The (cached) dataflow facts for one scope."""
    flow = getattr(scope, "_flow", None)
    if flow is None:
        flow = _analyse(scope)
        scope._flow = flow
    return flow


def _analyse(scope) -> ScopeFlow:
    flow = ScopeFlow()
    claimed: set[int] = set()

    def post(call: ast.Call, anchor: ast.AST, **kw) -> None:
        method = call.func.attr  # type: ignore[union-attr]
        claimed.add(id(call))
        flow.posts.append(NBPost(
            call=call, method=method, pos=_pos(anchor),
            buffer=_buffer_name(call, method), **kw,
        ))

    for stmt in scope.statements:
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if is_nonblocking_call(value):
                post(value, stmt, discarded=True)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _COLLECTOR_METHODS
                and isinstance(value.func.value, ast.Name)
            ):
                for arg in value.args:
                    if is_nonblocking_call(arg):
                        post(arg, stmt, container=value.func.value.id)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
            if isinstance(target, ast.Name):
                if is_nonblocking_call(value):
                    post(value, stmt, names=(target.id,))
                elif isinstance(value, (ast.List, ast.Tuple)):
                    flow.fresh_lists.add(target.id)
                    for elt in value.elts:
                        if is_nonblocking_call(elt):
                            post(elt, stmt, container=target.id)
                elif isinstance(value, ast.ListComp):
                    flow.fresh_lists.add(target.id)
                    if is_nonblocking_call(value.elt):
                        post(value.elt, stmt, container=target.id)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "list"
                    and not value.args
                ):
                    flow.fresh_lists.add(target.id)
            elif isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple) \
                    and len(target.elts) == len(value.elts):
                # Tuple unpacking: pair targets with values elementwise.
                for t_elt, v_elt in zip(target.elts, value.elts):
                    if not is_nonblocking_call(v_elt):
                        continue
                    if isinstance(t_elt, ast.Name):
                        post(v_elt, stmt, names=(t_elt.id,))
                    else:
                        post(v_elt, stmt, escapes=True)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name) \
                and is_nonblocking_call(stmt.value):
            post(stmt.value, stmt, names=(stmt.target.id,))

    # Any post not claimed by a trackable pattern escapes this analysis
    # (return value, call argument, attribute store, dict entry, ...).
    for node in scope.nodes:
        if isinstance(node, ast.Call) and is_nonblocking_call(node) \
                and id(node) not in claimed:
            flow.posts.append(NBPost(
                call=node, method=node.func.attr,  # type: ignore[union-attr]
                pos=_pos(node), escapes=True,
                buffer=_buffer_name(node, node.func.attr),  # type: ignore[union-attr]
            ))

    # Load uses, excluding collector receivers: `reqs.append(r)` loads
    # `reqs` but does not consume the requests already inside it.
    collector_receivers: set[int] = set()
    for node in scope.nodes:
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _COLLECTOR_METHODS \
                and isinstance(node.func.value, ast.Name):
            collector_receivers.add(id(node.func.value))
    for node in scope.nodes:
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and id(node) not in collector_receivers:
            flow.uses.setdefault(node.id, []).append(_pos(node))
    for positions in flow.uses.values():
        positions.sort()

    flow.posts.sort(key=lambda p: p.pos)
    return flow


def completion_pos(flow: ScopeFlow, post: NBPost) -> tuple:
    """Document position where the post's pending window ends.

    The first Load use of any request alias (or of the collecting
    container) after the post — the earliest point the program *could*
    wait or test it.  :data:`NEVER` when no such use exists.
    """
    candidates: list[tuple[int, int]] = []
    for name in post.names:
        candidates.extend(
            p for p in flow.uses.get(name, ()) if p > post.pos
        )
    if post.container is not None:
        candidates.extend(
            p for p in flow.uses.get(post.container, ()) if p > post.pos
        )
    return min(candidates) if candidates else NEVER


def ever_used(flow: ScopeFlow, post: NBPost) -> bool:
    """Is any alias of the request loaded anywhere in the scope?

    Position-insensitive on purpose: a wait at the top of a loop body
    completes the post at the bottom of the previous iteration.
    """
    return any(flow.uses.get(name) for name in post.names) or (
        post.container is not None and bool(flow.uses.get(post.container))
    )


def buffer_mutations(
    scope, name: str, start: tuple, end: tuple
) -> list[tuple[ast.AST, tuple, str]]:
    """In-place mutations of ``name``'s buffer inside ``(start, end)``.

    Covers element/slice stores (``buf[i] = x``), augmented assignment
    (``buf += x`` mutates ndarrays in place), and the in-place methods of
    ndarray/bytearray.  Rebinding the bare name is *not* a mutation — the
    pinned memory is unaffected.
    """
    out = []
    for node in scope.nodes:
        pos = _pos(node)
        if not (start < pos < end):
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and _subscript_root(target) == name:
                    out.append((node, pos, "element/slice store"))
                    break
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if (isinstance(target, ast.Name) and target.id == name) or (
                isinstance(target, ast.Subscript)
                and _subscript_root(target) == name
            ):
                out.append((node, pos, "augmented assignment"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == name:
            out.append((node, pos, f"'.{node.func.attr}()' call"))
    out.sort(key=lambda item: item[1])
    return out


def buffer_reads(
    scope, name: str, start: tuple, end: tuple
) -> list[tuple[ast.Name, tuple]]:
    """Content reads of ``name`` inside ``(start, end)``.

    A Load use of the name, excluding accesses that do not observe the
    buffer's *contents*: metadata attributes (``buf.shape``), metadata
    builtins (``len(buf)``), mutation constructs (OMB007's domain), any
    non-blocking post call (OMB010's domain), and wait/test calls on it.
    """
    excluded: set[int] = set()
    for node in scope.nodes:
        if isinstance(node, ast.Attribute) \
                and node.attr in METADATA_ATTRS \
                and isinstance(node.value, ast.Name):
            excluded.add(id(node.value))
        elif isinstance(node, ast.Call) and is_nonblocking_call(node):
            for sub in ast.walk(node):
                excluded.add(id(sub))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id in METADATA_BUILTINS:
            for sub in ast.walk(node):
                excluded.add(id(sub))
    for mut, _mpos, _desc in buffer_mutations(
        scope, name, (0, 0), NEVER
    ):
        for sub in ast.walk(mut):
            excluded.add(id(sub))

    reads = [
        (node, _pos(node))
        for node in scope.nodes
        if isinstance(node, ast.Name)
        and node.id == name
        and isinstance(node.ctx, ast.Load)
        and id(node) not in excluded
        and start < _pos(node) < end
    ]
    reads.sort(key=lambda item: item[1])
    return reads


# -- statement line spans (pragma resolution) ------------------------------

#: Header expressions of compound statements: a pragma on any line of the
#: *header* suppresses header findings, but must not silence the body.
_HEADER_FIELDS = {
    ast.If: ("test",),
    ast.While: ("test",),
    ast.For: ("target", "iter"),
    ast.AsyncFor: ("target", "iter"),
    ast.With: ("items",),
    ast.AsyncWith: ("items",),
    ast.FunctionDef: ("args", "returns"),
    ast.AsyncFunctionDef: ("args", "returns"),
    ast.ClassDef: ("bases", "keywords"),
    ast.Match: ("subject",),
}
_COMPOUND = tuple(_HEADER_FIELDS) + (
    ast.Try, getattr(ast, "TryStar", ast.Try),
)


def _header_end(stmt: ast.stmt) -> int:
    """Last line of a compound statement's header (test/iter/items...)."""
    end = stmt.lineno
    for field_name in _HEADER_FIELDS.get(type(stmt), ()):
        value = getattr(stmt, field_name, None)
        values = value if isinstance(value, list) else [value]
        for item in values:
            item_end = getattr(item, "end_lineno", None)
            if item_end is not None:
                end = max(end, item_end)
    return end


def statement_spans(tree: ast.AST) -> dict[int, tuple[int, int]]:
    """Map each source line to the full line span of its statement.

    A simple statement continued across lines (backslash or open parens)
    spans all of them: a suppression pragma anywhere in that span applies
    to findings anywhere in it.  Compound statements contribute only
    their *header* span, so a pragma on an ``if``/``for`` line never
    silences the body.  Inner statements win over enclosing ones
    (``ast.walk`` yields parents first; children overwrite).
    """
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        if isinstance(node, _COMPOUND):
            end = _header_end(node)
        else:
            end = getattr(node, "end_lineno", None) or start
        for line in range(start, end + 1):
            spans[line] = (start, end)
    return spans
