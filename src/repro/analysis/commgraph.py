"""Static communication graph: OMB401-403.

PR 1's runtime verifier checks envelope matching *while a job runs*;
this pass is its static complement.  It extracts every send / recv /
collective **site** from the program (with the enclosing ``if rank == K``
guard recorded as the site's *rank role*), matches sends against recvs
symbolically by tag, and flags:

========  ==============================================================
OMB401    send with a literal tag that no recv in the program can match
OMB402    recv with a literal tag that no send in the program can match
OMB403    two rank roles whose first blocking operation toward each
          other is a recv — a head-to-head wait cycle across functions
========  ==============================================================

Matching is deliberately generous: a symbolic (non-literal) or wildcard
(``ANY_TAG``/``ANY_SOURCE``) counterpart matches anything, so OMB401/402
only fire when *every* potential partner uses a different literal — the
"nobody can ever rendezvous with this tag" case.  OMB403 is scoped to
one module at a time: role guards in one file describe one SPMD program,
while roles in unrelated files do not talk to each other.

Runs under ``ombpy-lint --commgraph``; see ``docs/perf-lint.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from . import rankdom
from . import rules as _rules
from .findings import Finding
from .interproc import FunctionInfo, Program

__all__ = [
    "CommSite",
    "COMMGRAPH_RULES",
    "extract_sites",
    "run_commgraph_rules",
]

#: Wildcard marker for ANY_TAG / ANY_SOURCE arguments.
ANY = "ANY"

_SEND_METHODS = frozenset(
    _rules.LOWER_SENDS | _rules.UPPER_SENDS
    | {"send_bytes", "isend_bytes", "sendrecv_bytes"}
)
_RECV_METHODS = frozenset(
    _rules.LOWER_RECVS | _rules.UPPER_RECVS
    | {"recv_bytes", "irecv_bytes"}
)
_COLLECTIVE_METHODS = frozenset({
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall", "scan", "exscan", "barrier",
    "Bcast", "Reduce", "Allreduce", "Gather", "Scatter", "Allgather",
    "Alltoall", "Reduce_scatter", "Scan", "Exscan", "Barrier",
    "bcast_bytes", "gather_bytes", "scatter_bytes", "allgather_bytes",
    "alltoall_bytes",
})

#: Blocking subsets for the wait-cycle rule (non-blocking posts and the
#: combined sendrecv cannot deadlock head-to-head).
_BLOCKING_RECVS = frozenset({"recv", "Recv", "recv_bytes"})
_BLOCKING_SENDS = frozenset({"send", "Send", "ssend", "Ssend", "send_bytes"})

#: Positional index of the tag argument, extending rules.TAG_POSITION
#: with the repro byte-level API (send_bytes(payload, dest, tag),
#: recv_bytes(source, tag, max_bytes)).
_TAG_POSITION = dict(_rules.TAG_POSITION)
_TAG_POSITION.update({
    "send_bytes": 2, "isend_bytes": 2,
    "recv_bytes": 1, "irecv_bytes": 1,
})

#: Positional index of the peer (dest for sends, source for recvs).
_PEER_POSITION = {
    "send": 1, "isend": 1, "ssend": 1, "issend": 1,
    "Send": 1, "Isend": 1, "Ssend": 1, "Issend": 1,
    "send_bytes": 1, "isend_bytes": 1,
    "recv": 0, "irecv": 0, "recv_bytes": 0, "irecv_bytes": 0,
    "Recv": 1, "Irecv": 1,
}
_PEER_KEYWORDS = frozenset({"dest", "source", "peer"})

@dataclass
class CommSite:
    """One send/recv/collective call site with its static context."""

    kind: str                     # "send" | "recv" | "collective"
    method: str
    #: literal tag, ANY for a wildcard, None when symbolic
    tag: int | str | None
    #: literal peer rank, ANY for a wildcard, None when symbolic
    peer: int | str | None
    #: enclosing `if rank == K` guard value; None outside any guard
    role: int | None
    path: str
    line: int
    col: int
    func: str                     # qualname of the enclosing function


def _arg_value(node: ast.expr) -> int | str | None:
    literal = _rules._literal_int(node)
    if literal is not None:
        return literal
    text = None
    if isinstance(node, ast.Attribute):
        text = node.attr
    elif isinstance(node, ast.Name):
        text = node.id
    if text in ("ANY_TAG", "ANY_SOURCE"):
        return ANY
    return None


def _call_arg(call: ast.Call, method: str,
              positions: dict[str, int],
              keywords: frozenset[str]) -> int | str | None:
    index = positions.get(method)
    if index is not None and index < len(call.args):
        return _arg_value(call.args[index])
    for kw in call.keywords:
        if kw.arg in keywords:
            return _arg_value(kw.value)
    return None


def _site_kind(call: ast.Call) -> str | None:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    if method in _SEND_METHODS:
        kind = "send"
    elif method in _RECV_METHODS:
        kind = "recv"
    elif method in _COLLECTIVE_METHODS:
        kind = "collective"
    else:
        return None
    if not method.endswith("_bytes") and method not in _rules._DISTINCTIVE \
            and not _rules._comm_like(func.value):
        return None
    return kind


def extract_sites(info: FunctionInfo) -> list[CommSite]:
    """All communication sites in one function, with rank-role context,
    in source order."""
    sites: list[CommSite] = []

    def record(call: ast.Call, role: int | None) -> None:
        kind = _site_kind(call)
        if kind is None:
            return
        method = call.func.attr  # type: ignore[union-attr]
        tag = _call_arg(call, method, _TAG_POSITION, _rules.TAG_KEYWORDS)
        peer = _call_arg(call, method, _PEER_POSITION, _PEER_KEYWORDS)
        sites.append(CommSite(
            kind=kind, method=method, tag=tag, peer=peer, role=role,
            path=info.path, line=call.lineno, col=call.col_offset + 1,
            func=info.qualname,
        ))

    def walk(node: ast.AST, role: int | None) -> None:
        if node is not info.node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        ):
            return
        if isinstance(node, ast.If):
            walk(node.test, role)
            # Guards normalize through the symbolic-rank domain, so
            # `rank == 0`, `0 == rank`, `not rank` and the else-arm of
            # `rank != 0` all land on the same role.
            guard = rankdom.rank_guard_value(node.test)
            else_guard = rankdom.else_guard_value(node.test)
            for stmt in node.body:
                walk(stmt, guard if guard is not None else role)
            for stmt in node.orelse:
                if else_guard is not None:
                    walk(stmt, else_guard)
                else:
                    # `else` of a multi-rank guard is "some other rank":
                    # role unknown.  A non-rank test keeps the outer role.
                    walk(stmt, role if guard is None else None)
            return
        if isinstance(node, ast.Call):
            record(node, role)
        for child in ast.iter_child_nodes(node):
            walk(child, role)

    walk(info.node, None)
    return sites


def _internal_tag(tag: int | str | None) -> bool:
    return isinstance(tag, int) \
        and (tag < 0 or tag >= _rules.INTERNAL_TAG_BASE)


def _finding(rule: str, site: CommSite, message: str) -> Finding:
    return Finding(
        rule=rule, severity="warning", path=site.path,
        line=site.line, col=site.col, message=message,
    )


# -- OMB401 / OMB402: statically-unmatched literal tags --------------------

def _can_rendezvous(send: CommSite, recv: CommSite) -> bool:
    """Could this send ever match this recv?  Generous: unknown values
    match anything; only a *proven* tag or endpoint mismatch excludes a
    pairing.  Roles arrive pre-normalized through the symbolic-rank
    domain, so textually different but equivalent guards pair cleanly."""
    if isinstance(send.tag, int) and isinstance(recv.tag, int) \
            and send.tag != recv.tag:
        return False
    # send's destination vs. the rank the recv runs on
    if isinstance(send.peer, int) and isinstance(recv.role, int) \
            and send.peer != recv.role:
        return False
    # recv's source vs. the rank the send runs on
    if isinstance(recv.peer, int) and isinstance(send.role, int) \
            and recv.peer != send.role:
        return False
    return True


def check_unmatched_sends(sites: list[CommSite]) -> list[Finding]:
    """A send whose literal tag no recv in the program can ever match."""
    recvs = [s for s in sites if s.kind == "recv"]
    findings = []
    for site in sites:
        if site.kind != "send" or not isinstance(site.tag, int) \
                or _internal_tag(site.tag):
            continue
        if any(_can_rendezvous(site, recv) for recv in recvs):
            continue
        findings.append(_finding(
            "OMB401", site,
            f"'{site.method}()' sends with tag {site.tag} but no recv in "
            "the program uses that tag (or a wildcard); this message can "
            "never be matched",
        ))
    return findings


def check_unmatched_recvs(sites: list[CommSite]) -> list[Finding]:
    """A recv whose literal tag no send in the program can ever match."""
    sends = [s for s in sites if s.kind == "send"]
    findings = []
    for site in sites:
        if site.kind != "recv" or not isinstance(site.tag, int) \
                or _internal_tag(site.tag):
            continue
        if any(_can_rendezvous(send, site) for send in sends):
            continue
        findings.append(_finding(
            "OMB402", site,
            f"'{site.method}()' waits for tag {site.tag} but no send in "
            "the program uses that tag; this recv blocks forever",
        ))
    return findings


# -- OMB403: head-to-head wait cycle across rank roles ---------------------

def check_wait_cycles(sites: list[CommSite]) -> list[Finding]:
    """Two rank roles whose *first* blocking operation toward each other
    is a recv: both block before either sends — a deadlock cycle the
    runtime verifier would only see as a hang."""
    findings = []
    by_path: dict[str, list[CommSite]] = {}
    for site in sites:
        if site.role is not None and isinstance(site.peer, int):
            by_path.setdefault(site.path, []).append(site)
    for path_sites in by_path.values():
        # first blocking op per (role, peer), in source order
        first: dict[tuple[int, int], CommSite] = {}
        for site in path_sites:
            blocking = (
                (site.kind == "recv" and site.method in _BLOCKING_RECVS)
                or (site.kind == "send" and site.method in _BLOCKING_SENDS)
            )
            if not blocking:
                continue
            key = (site.role, site.peer)  # type: ignore[arg-type]
            first.setdefault(key, site)
        reported: set[tuple[int, int]] = set()
        for (role, peer), site in sorted(
            first.items(), key=lambda kv: (kv[1].line, kv[1].col),
        ):
            if site.kind != "recv":
                continue
            other = first.get((peer, role))
            if other is None or other.kind != "recv":
                continue
            pair = (min(role, peer), max(role, peer))
            if pair in reported:
                continue
            reported.add(pair)
            findings.append(_finding(
                "OMB403", site,
                f"rank {role} blocks in '{site.method}()' waiting on rank "
                f"{peer} while rank {peer} blocks in '{other.method}()' "
                f"waiting on rank {role}; neither reaches its send — "
                "reorder one side or use sendrecv/non-blocking posts",
            ))
    return findings


# -- registry --------------------------------------------------------------

#: rule ID -> (checker over the global site list, one-line description).
COMMGRAPH_RULES = {
    "OMB401": (
        check_unmatched_sends,
        "send with a literal tag no recv in the program matches",
    ),
    "OMB402": (
        check_unmatched_recvs,
        "recv with a literal tag no send in the program matches",
    ),
    "OMB403": (
        check_wait_cycles,
        "head-to-head blocking recv cycle between rank roles",
    ),
}


def run_commgraph_rules(
    program: Program,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Extract every site, then run the (selected) graph rules."""
    sites: list[CommSite] = []
    for info in program.functions:
        # extract_sites stops at nested function boundaries, so the
        # module-level scope and the per-function scopes never double
        # count a site.
        sites.extend(extract_sites(info))
    findings: list[Finding] = []
    for rule_id, (fn, _doc) in COMMGRAPH_RULES.items():
        if select is not None and rule_id not in select:
            continue
        if ignore is not None and rule_id in ignore:
            continue
        findings.extend(fn(sites))
    return findings
