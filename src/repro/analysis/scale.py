"""Scalability lint: OMB510-515 — laptop-scale assumptions, priced.

The perf family (OMB3xx) finds per-message waste; this family finds
code whose *shape* stops working when N grows from 4 to 1024: eager
O(N²) connection meshes, roots that accumulate O(N) state through a
serialized receive loop, linear fan-out where a log₂N tree exists,
one thread or file descriptor per peer, and reorder/hold buffers with
no bound.  Every finding carries an analytic LogGP cost estimate
computed through :mod:`repro.simulator`'s network model, so reports
can be ranked by projected cost at N=1024 (``tools/scale_report.py``
renders the ranked "scale debt" table).

========  ==============================================================
OMB510    connection dial inside a rank loop — O(N) dials per rank,
          O(N²) eager mesh job-wide
OMB511    rank-loop of blocking receives accumulating on one rank —
          O(N) root state, (N-1) serialized message latencies
OMB512    rank-loop of sends fanning out linearly where a binomial
          tree or two-level shape exists
OMB513    one thread per peer (rank-loop Thread creation, or Thread
          creation in a helper invoked from a rank loop)
OMB514    one socket/file descriptor per peer, created eagerly
OMB515    unbounded reorder/hold buffer on a receive path
========  ==============================================================

Pairwise-exchange loops (``sendrecv`` per step, the optimal alltoall
shape) are deliberately *not* flagged as linear collectives.

Runs under ``ombpy-lint --scale``; see ``docs/protocol-lint.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from . import rankdom
from .commgraph import _site_kind
from .findings import Finding
from .interproc import FunctionInfo, Program
from ..simulator.collective_cost import _ceil_log2
from ..simulator.loggp import NetworkModel

__all__ = [
    "ANNOTATE_N",
    "DEFAULT_MSG_BYTES",
    "DEFAULT_NET",
    "REPORT_SIZES",
    "SCALE_RULES",
    "ScaleSite",
    "fmt_us",
    "projected_cost_us",
    "run_scale_rules",
    "scale_inventory",
]

#: Reference fabric for the projections: ~20 µs one-way latency,
#: ~780 MB/s eager bandwidth — the measured shape of the repo's TCP
#: transport on one node, i.e. deliberately *favourable* numbers.
DEFAULT_NET = NetworkModel(alpha_us=20.0, beta_us_per_byte=1.0 / 780.0)

#: Message size the annotations price (one mid-size eager message).
DEFAULT_MSG_BYTES = 8192

#: The headline annotation size and the report ladder.
ANNOTATE_N = 1024
REPORT_SIZES = (64, 256, 1024)

#: Cost kind per rule: how ``projected_cost_us`` prices one site.
_RULE_KIND = {
    "OMB510": "mesh",
    "OMB511": "linear",
    "OMB512": "linear",
    "OMB513": "perpeer",
    "OMB514": "perpeer",
    "OMB515": "linear",
}


def projected_cost_us(
    kind: str,
    n: int,
    m: int = DEFAULT_MSG_BYTES,
    net: NetworkModel = DEFAULT_NET,
) -> float:
    """Analytic LogGP cost of one site's pattern at job size ``n``.

    ``mesh``    — ~3 zero-byte exchanges per dialed connection, N-1
                  connections per rank (SYN/HELLO/register handshake);
    ``linear``  — (N-1) serialized m-byte message latencies;
    ``tree``    — ceil(log₂N) m-byte message latencies (the fix);
    ``perpeer`` — (N-1) serialized zero-byte accept/registrations.
    """
    if n <= 1:
        return 0.0
    if kind == "mesh":
        return 3.0 * (n - 1) * net.latency_us(0)
    if kind == "linear":
        return (n - 1) * net.latency_us(m)
    if kind == "tree":
        return _ceil_log2(n) * net.latency_us(m)
    if kind == "perpeer":
        return (n - 1) * net.latency_us(0)
    raise ValueError(f"unknown cost kind {kind!r}")


def fmt_us(us: float) -> str:
    """Compact human form of a microsecond figure (3 significant digits)."""
    if us < 1e3:
        return f"{us:.3g} µs"
    if us < 1e6:
        return f"{us / 1e3:.3g} ms"
    return f"{us / 1e6:.3g} s"


def _linear_vs_tree() -> str:
    linear = projected_cost_us("linear", ANNOTATE_N)
    tree = projected_cost_us("tree", ANNOTATE_N)
    return (
        f"LogGP @N={ANNOTATE_N}, m=8KiB: linear ~(N-1)·(α+mβ) ≈ "
        f"{fmt_us(linear)} vs tree ~log₂N·(α+mβ) ≈ {fmt_us(tree)}"
    )


@dataclass
class ScaleSite:
    """One OMB51x site with its cost model, for the debt report."""

    rule: str
    path: str
    line: int
    col: int
    end_line: int
    func: str
    summary: str                  # what the site is, no cost numbers
    message: str                  # full lint message incl. annotation
    kind: str                     # projected_cost_us kind

    def cost_us(self, n: int) -> float:
        return projected_cost_us(self.kind, n)


# -- structure helpers -----------------------------------------------------

_HOLD_NAME = re.compile(
    r"buffered|reorder|hold|held|backlog|unacked", re.IGNORECASE
)
_BOUND_NAME = re.compile(r"max|limit|cap|bound|window", re.IGNORECASE)

_DIAL_CALLEES = frozenset({
    "connect", "connect_ex", "create_connection", "open_connection", "dial",
})
_FD_CALLEES = frozenset({"socket", "open", "socketpair"})


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _walk_scope(root: ast.AST):
    """Walk ``root`` without crossing into nested function/class scopes
    (lambdas are transparent — a dial wrapped in a retry lambda still
    runs once per loop iteration).  Prevents a module-level scope from
    re-reporting every site its functions already own."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.append(child)


#: Helper-function names that are send/recv wrappers — the collectives
#: route through ``csend``/``crecv`` rather than comm methods directly.
_NAME_KIND = re.compile(r"^c?i?(send|recv)(_bytes)?$")


def _call_kind(call: ast.Call) -> str | None:
    kind = _site_kind(call)
    if kind is not None:
        return kind
    if isinstance(call.func, ast.Name):
        match = _NAME_KIND.match(call.func.id)
        if match:
            return match.group(1)
    return None


def _rank_loops(info: FunctionInfo) -> list[ast.For]:
    """Loops whose trip count grows with the job size.

    ``range(size)``-style bounds and ``for peer in self._peers``-style
    iteration over a peer table both count — each runs once per rank.
    """
    loops: list[ast.For] = []
    for node in _walk_scope(info.node):
        if not isinstance(node, ast.For):
            continue
        it = node.iter
        if rankdom.mentions_scale(it):
            loops.append(node)
            continue
        base = it
        if isinstance(base, ast.Call) and base.args:
            base = base.args[0]
        text = None
        if isinstance(base, ast.Attribute):
            text = base.attr
        elif isinstance(base, ast.Name):
            text = base.id
        if text is not None and re.search(r"peers|ranks", text):
            loops.append(node)
    return loops


def _loop_comm_kinds(loop: ast.For) -> set[str]:
    """Communication kinds in the loop body, with ``sendrecv`` counted
    as both (a pairwise exchange, not a fan-out)."""
    kinds: set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            kind = _call_kind(node)
            if kind is None:
                continue
            name = _callee_name(node) or ""
            if name.startswith("sendrecv"):
                kinds.update(("send", "recv"))
            else:
                kinds.add(kind)
    return kinds


def _rank_loop_callees(program: Program) -> frozenset[str]:
    """Simple names of functions invoked from inside any rank loop —
    one level of interprocedural vision for the per-peer rules (the
    transports dial in a loop but start the reader thread in a helper)."""
    names: set[str] = set()
    for info in program.functions:
        for loop in _rank_loops(info):
            for node in ast.walk(loop):
                if isinstance(node, ast.Call):
                    callee = _callee_name(node)
                    if callee is not None:
                        names.add(callee)
    return frozenset(names)


def _site(rule: str, info: FunctionInfo, node: ast.AST, summary: str,
          annotation: str, fix: str) -> ScaleSite:
    return ScaleSite(
        rule=rule,
        path=info.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0) + 1,
        end_line=getattr(node, "end_lineno", 0) or 0,
        func=info.name,
        summary=summary,
        message=f"{summary}; {annotation}; {fix}",
        kind=_RULE_KIND[rule],
    )


# -- the rules -------------------------------------------------------------

def _check_mesh_dial(program: Program, info: FunctionInfo,
                     ctx: "_Context") -> list[ScaleSite]:
    for loop in _rank_loops(info):
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) \
                    and _callee_name(node) in _DIAL_CALLEES:
                mesh = projected_cost_us("mesh", ANNOTATE_N)
                return [_site(
                    "OMB510", info, node,
                    f"'{info.name}' dials a connection per peer in a "
                    "rank loop — O(N) dials per rank, O(N²) eager mesh "
                    "job-wide",
                    f"LogGP @N={ANNOTATE_N}: ~3·(N-1)·α ≈ "
                    f"{fmt_us(mesh)} handshake time per rank",
                    "dial lazily on first send or through a "
                    "hierarchical leader mesh",
                )]
    return []


def _check_root_accumulation(program: Program, info: FunctionInfo,
                             ctx: "_Context") -> list[ScaleSite]:
    for loop in _rank_loops(info):
        kinds = _loop_comm_kinds(loop)
        if "recv" in kinds and "send" not in kinds:
            return [_site(
                "OMB511", info, loop,
                f"'{info.name}' receives from every rank in a loop — "
                "O(N) state accumulated on one rank, (N-1) serialized "
                "message latencies",
                _linear_vs_tree(),
                "gather through a binomial tree or two-level "
                "(node-leader) reduction",
            )]
    return []


def _check_linear_fanout(program: Program, info: FunctionInfo,
                         ctx: "_Context") -> list[ScaleSite]:
    for loop in _rank_loops(info):
        kinds = _loop_comm_kinds(loop)
        if "send" in kinds and "recv" not in kinds:
            return [_site(
                "OMB512", info, loop,
                f"'{info.name}' sends to every rank in a loop — a "
                "linear collective where a log₂N shape exists",
                _linear_vs_tree(),
                "fan out through a binomial tree (each round doubles "
                "the senders)",
            )]
    return []


def _creation_sites(info: FunctionInfo, callees: frozenset[str],
                    ctx: "_Context") -> ast.AST | None:
    """First matching creation call that runs once per peer: inside one
    of this function's own rank loops, or anywhere in a function that a
    rank loop elsewhere invokes."""
    regions: list[ast.AST] = list(_rank_loops(info))
    if info.name in ctx.rank_loop_callees and not info.is_module_level():
        regions = [info.node]
    for region in regions:
        for node in ast.walk(region):
            if isinstance(node, ast.Call) \
                    and _callee_name(node) in callees:
                return node
    return None


def _check_thread_per_peer(program: Program, info: FunctionInfo,
                           ctx: "_Context") -> list[ScaleSite]:
    node = _creation_sites(info, frozenset({"Thread"}), ctx)
    if node is None:
        return []
    per = projected_cost_us("perpeer", ANNOTATE_N)
    return [_site(
        "OMB513", info, node,
        f"'{info.name}' starts one thread per peer — N-1 threads per "
        "rank, N·(N-1) job-wide",
        f"LogGP @N={ANNOTATE_N}: ~(N-1)·α ≈ {fmt_us(per)} serialized "
        "spawn/handshake per rank, plus N-1 stacks of scheduler load",
        "multiplex peers onto a selector/epoll loop or a small worker "
        "pool",
    )]


def _check_fd_per_peer(program: Program, info: FunctionInfo,
                       ctx: "_Context") -> list[ScaleSite]:
    node = _creation_sites(info, _FD_CALLEES, ctx)
    if node is None:
        return []
    per = projected_cost_us("perpeer", ANNOTATE_N)
    return [_site(
        "OMB514", info, node,
        f"'{info.name}' opens one socket/fd per peer — N-1 descriptors "
        "per rank, N·(N-1) job-wide (ulimit territory at N=1024)",
        f"LogGP @N={ANNOTATE_N}: ~(N-1)·α ≈ {fmt_us(per)} serialized "
        "setup per rank",
        "share descriptors through a leader per node or connect "
        "on demand",
    )]


def _check_hold_buffer(program: Program, info: FunctionInfo,
                       ctx: "_Context") -> list[ScaleSite]:
    """A store into a hold/reorder container with no visible bound."""
    src_names: list[str] = []
    bounded = False
    store: ast.AST | None = None
    container = ""
    for node in _walk_scope(info.node):
        # len(x) comparisons or max/limit names anywhere in the function
        # count as a bound — this rule wants the *no backpressure at
        # all* case, not imperfect backpressure.
        if isinstance(node, ast.Name) and _BOUND_NAME.search(node.id):
            bounded = True
        if isinstance(node, ast.Attribute) and _BOUND_NAME.search(node.attr):
            bounded = True
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Subscript):
            target = node.targets[0].value
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "append":
            target = node.func.value
        if target is None:
            continue
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name is not None and _HOLD_NAME.search(name) and store is None:
            store = node
            container = name
    if store is None or bounded:
        return []
    drain = projected_cost_us("linear", ANNOTATE_N)
    return [_site(
        "OMB515", info, store,
        f"'{info.name}' grows '{container}' without a bound — a "
        "stalled or slow peer makes it hold O(messages-in-flight) "
        "buffers",
        f"LogGP @N={ANNOTATE_N}, m=8KiB: draining one held message "
        f"per peer costs ~(N-1)·(α+mβ) ≈ {fmt_us(drain)}",
        "cap the window (drop + NACK, or block the sender) so memory "
        "is O(window), not O(backlog)",
    )]


@dataclass
class _Context:
    rank_loop_callees: frozenset[str]


#: rule ID -> (checker over (program, info, ctx), one-line description).
SCALE_RULES = {
    "OMB510": (
        _check_mesh_dial,
        "connection dial in a rank loop (O(N²) eager mesh)",
    ),
    "OMB511": (
        _check_root_accumulation,
        "O(N) root accumulation through a serialized receive loop",
    ),
    "OMB512": (
        _check_linear_fanout,
        "linear send fan-out where a log-tree shape exists",
    ),
    "OMB513": (
        _check_thread_per_peer,
        "one thread per peer",
    ),
    "OMB514": (
        _check_fd_per_peer,
        "one socket/file descriptor per peer, opened eagerly",
    ),
    "OMB515": (
        _check_hold_buffer,
        "unbounded reorder/hold buffer on a receive path",
    ),
}


def scale_inventory(
    program: Program,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[ScaleSite]:
    """Every OMB51x site in the program (one per rule per function)."""
    ctx = _Context(rank_loop_callees=_rank_loop_callees(program))
    sites: list[ScaleSite] = []
    for info in program.functions:
        for rule_id, (fn, _doc) in SCALE_RULES.items():
            if select is not None and rule_id not in select:
                continue
            if ignore is not None and rule_id in ignore:
                continue
            sites.extend(fn(program, info, ctx))
    return sites


def run_scale_rules(
    program: Program,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    return [
        Finding(
            rule=s.rule, severity="warning", path=s.path,
            line=s.line, col=s.col, message=s.message, end_line=s.end_line,
        )
        for s in scale_inventory(program, select, ignore)
    ]
