"""Symbolic-rank domain: evaluate rank/size expressions parametrically.

The commgraph and protocol passes both need to answer the same question
about source text: *given that this process is rank ``r`` of ``N``, what
does this expression evaluate to?*  This module is that evaluator.  An
environment maps the distinguished keys ``"rank"`` / ``"size"`` (plus
any locally-bound loop or assignment names) to concrete integers, and

* :func:`eval_expr` folds an arithmetic expression over ranks —
  ``(rank + 1) % size``, ``size - 1``, ``2 * rank`` — to an ``int``, or
  ``None`` when any leaf is unknown;
* :func:`eval_pred` gives three-valued truth for a branch condition —
  ``rank == 0``, ``not rank``, ``rank % 2 == 1``, ``rank < k and size
  > 2`` — as ``True`` / ``False`` / ``None`` (unknown);
* :func:`rank_guard_value` / :func:`else_guard_value` normalize a guard
  to the single literal rank it selects, so textually different but
  equivalent predicates (``rank == 0``, ``not rank``, ``0 == rank``,
  the ``else`` of ``rank != 0``) all canonicalize to the same role.

Rank and size leaves are recognized by name (``rank``, ``world_rank``,
``size``, ``nprocs``, …), through attributes (``comm.rank``,
``self.world_size``) and through the mpi4py-style getter calls
(``comm.Get_rank()`` / ``comm.Get_size()``).
"""

from __future__ import annotations

import ast

from . import rules as _rules

__all__ = [
    "RANK_NAMES",
    "SIZE_NAMES",
    "eval_expr",
    "eval_pred",
    "is_rankish",
    "is_sizeish",
    "mentions_scale",
    "rank_guard_value",
    "else_guard_value",
]

#: Names that denote "this process's rank" wherever they appear.
RANK_NAMES = frozenset({
    "rank", "world_rank", "my_rank", "myrank", "me", "myid", "rank_id",
})

#: Names that denote "the number of ranks in the job".
SIZE_NAMES = frozenset({
    "size", "world_size", "nranks", "num_ranks", "n_ranks", "nprocs",
    "numprocs", "comm_size", "npes", "nproc",
})

_RANK_GETTERS = frozenset({"Get_rank", "rank"})
_SIZE_GETTERS = frozenset({"Get_size", "size"})


def _leaf_key(node: ast.expr) -> str | None:
    """``"rank"`` / ``"size"`` for a rank/size leaf, the bare name for a
    plain local, else None."""
    if isinstance(node, ast.Name):
        if node.id in RANK_NAMES:
            return "rank"
        if node.id in SIZE_NAMES:
            return "size"
        return node.id
    if isinstance(node, ast.Attribute):
        if node.attr in RANK_NAMES:
            return "rank"
        if node.attr in SIZE_NAMES:
            return "size"
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and not node.args and not node.keywords:
        if node.func.attr in _RANK_GETTERS:
            return "rank"
        if node.func.attr in _SIZE_GETTERS:
            return "size"
    return None


def is_rankish(node: ast.expr) -> bool:
    """Does this expression denote the calling process's rank?"""
    return _leaf_key(node) == "rank"


def is_sizeish(node: ast.expr) -> bool:
    """Does this expression denote the job's rank count?"""
    return _leaf_key(node) == "size"


def mentions_scale(node: ast.AST) -> bool:
    """Does any leaf of this expression grow with the job size — a size
    name, a rank name, or a ``Get_size()``-style getter?  Used by the
    scale rules: a loop over ``range(self.world_rank)`` is just as
    O(N) as one over ``range(size)``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.expr) and _leaf_key(sub) in ("rank", "size"):
            return True
    return False


def eval_expr(node: ast.expr, env: dict[str, int]) -> int | None:
    """Fold an integer expression under ``env``; None when unknown.

    ``env`` must bind ``"rank"`` and ``"size"``; any other entry binds a
    local (loop variable, alias) by name.
    """
    literal = _rules._literal_int(node)
    if literal is not None:
        return literal
    key = _leaf_key(node)
    if key is not None:
        return env.get(key)
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            v = eval_expr(node.operand, env)
            return None if v is None else -v
        if isinstance(node.op, ast.UAdd):
            return eval_expr(node.operand, env)
        return None
    if isinstance(node, ast.BinOp):
        left = eval_expr(node.left, env)
        right = eval_expr(node.right, env)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            if isinstance(node.op, ast.Pow) and 0 <= right <= 64:
                return left ** right
            if isinstance(node.op, ast.LShift) and 0 <= right <= 64:
                return left << right
            if isinstance(node.op, ast.RShift) and 0 <= right <= 64:
                return left >> right
            if isinstance(node.op, ast.BitAnd):
                return left & right
            if isinstance(node.op, ast.BitOr):
                return left | right
            if isinstance(node.op, ast.BitXor):
                return left ^ right
        except (ZeroDivisionError, ValueError):
            return None
    return None


_CMP = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


def eval_pred(node: ast.expr, env: dict[str, int]) -> bool | None:
    """Three-valued truth of a branch condition under ``env``."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return node.value
        if isinstance(node.value, int):
            return bool(node.value)
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = eval_pred(node.operand, env)
        return None if inner is None else not inner
    if isinstance(node, ast.BoolOp):
        # Three-valued and/or: an early decisive operand settles it.
        values = [eval_pred(v, env) for v in node.values]
        if isinstance(node.op, ast.And):
            if any(v is False for v in values):
                return False
            return True if all(v is True for v in values) else None
        if any(v is True for v in values):
            return True
        return False if all(v is False for v in values) else None
    if isinstance(node, ast.Compare):
        left = eval_expr(node.left, env)
        result: bool | None = True
        for op, comparator in zip(node.ops, node.comparators):
            right = eval_expr(comparator, env)
            fn = _CMP.get(type(op))
            if left is None or right is None or fn is None:
                result = None
            elif result is not None and not fn(left, right):
                return False
            left = right
        return result
    # Bare truthiness of an integer expression (`if rank:`).
    value = eval_expr(node, env)
    return None if value is None else bool(value)


# -- guard normalization ----------------------------------------------------
#
# A "role" in the commgraph sense is the single literal rank a guard
# selects.  Normalizing through evaluation (rather than pattern-matching
# the AST shape) makes `rank == 0`, `0 == rank`, `not rank` and friends
# all land on the same role, which is exactly the OMB402 false-positive
# class: equivalent-but-textually-different predicates must pair up.

#: Probe sizes for deciding "this guard selects exactly rank K".  The
#: guard must pick the same single rank at every size it is probed at.
_PROBE_SIZES = (2, 3, 4, 8)
_MAX_PROBE_RANK = 8


def _selected_ranks(test: ast.expr, size: int) -> set[int] | None:
    """Ranks in [0, size) that satisfy ``test``; None when any rank's
    truth value is unknown."""
    selected: set[int] = set()
    for r in range(min(size, _MAX_PROBE_RANK)):
        truth = eval_pred(test, {"rank": r, "size": size})
        if truth is None:
            return None
        if truth:
            selected.add(r)
    return selected


def _structural_eq(test: ast.expr, op_type: type) -> int | None:
    """``rank <op> K`` (either side) -> K for a literal K."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], op_type)):
        return None
    for subject, value in (
        (test.left, test.comparators[0]),
        (test.comparators[0], test.left),
    ):
        if is_rankish(subject):
            literal = _rules._literal_int(value)
            if literal is not None:
                return literal
    return None


def rank_guard_value(test: ast.expr) -> int | None:
    """K when ``test`` is equivalent to ``rank == K`` for a literal K
    (independent of the job size), else None."""
    # Fast structural path first: `rank == K` must normalize even for K
    # larger than any probe size (the guard is vacuous at small N, but
    # the *role* it names is still K).
    structural = _structural_eq(test, ast.Eq)
    if structural is not None:
        return structural
    candidate: int | None = None
    for size in _PROBE_SIZES:
        selected = _selected_ranks(test, size)
        if selected is None or len(selected) != 1:
            return None
        (k,) = selected
        if candidate is None:
            candidate = k
        elif candidate != k:
            return None
    return candidate


def else_guard_value(test: ast.expr) -> int | None:
    """K when the *else* branch of ``test`` is equivalent to
    ``rank == K`` — e.g. the else of ``rank != 0``, or of ``rank``."""
    structural = _structural_eq(test, ast.NotEq)
    if structural is not None:
        return structural
    return rank_guard_value(
        ast.UnaryOp(op=ast.Not(), operand=test)
    )
