"""``ombpy-lint`` — the AST-based MPI-misuse linter.

Usage::

    ombpy-lint [paths...] [--format text|json|sarif] [--select IDs]
               [--ignore IDs]
    python -m repro.analysis.lint examples/ benchmarks/

Exit status: 0 clean, 1 findings reported, 2 usage error.

Suppression: append ``# ombpy-lint: ignore`` to a line to silence every
rule on it, or ``# ombpy-lint: ignore[OMB001,OMB004]`` for specific rules.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

from .findings import (
    Finding,
    findings_to_json,
    findings_to_sarif,
    sort_findings,
)
from .rules import RULES, run_rules

_PRAGMA = re.compile(r"#\s*ombpy-lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    """Honour ``# ombpy-lint: ignore[...]`` pragmas on the finding's line."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _PRAGMA.search(lines[finding.line - 1])
    if match is None:
        return False
    if match.group(1) is None:
        return True
    rules = {r.strip() for r in match.group(1).split(",")}
    return finding.rule in rules


def lint_source(
    source: str,
    path: str = "<string>",
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Lint one source string; returns the (pragma-filtered) findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule="OMB000",
            severity="error",
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 0),
            message=f"syntax error: {exc.msg}",
        )]
    findings = run_rules(tree, path, select=select, ignore=ignore)
    lines = source.splitlines()
    return [f for f in findings if not _suppressed(f, lines)]


def lint_file(
    path: str | Path,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"), str(p), select=select, ignore=ignore
    )


def lint_paths(
    paths: list[str | Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Lint files and directories (recursing into ``*.py``)."""
    findings: list[Finding] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                findings.extend(lint_file(f, select=select, ignore=ignore))
        else:
            findings.extend(lint_file(p, select=select, ignore=ignore))
    return sort_findings(findings)


def _parse_rule_set(spec: str | None) -> set[str] | None:
    if spec is None:
        return None
    rules = {r.strip() for r in spec.split(",") if r.strip()}
    unknown = rules - set(RULES) - {"OMB000"}
    if unknown:
        raise ValueError(f"unknown rule ID(s): {', '.join(sorted(unknown))}")
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ombpy-lint",
        description=(
            "Static checker for mpi4py-API misuse: pickle-path buffer "
            "sends, leaked requests, case-mismatched pairs, reserved "
            "tags, deprecated constants, deadlock shapes, and "
            "non-blocking buffer hazards (mutate/read before wait, "
            "unconsumed request lists, concurrent posts on one buffer)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (directories recurse into *.py)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
        "log for code-scanning upload",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, (_fn, doc) in RULES.items():
            print(f"{rule_id}  {doc}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("ombpy-lint: error: no paths given", file=sys.stderr)
        return 2

    try:
        select = _parse_rule_set(args.select)
        ignore = _parse_rule_set(args.ignore)
    except ValueError as exc:
        print(f"ombpy-lint: error: {exc}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"ombpy-lint: error: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    findings = lint_paths(args.paths, select=select, ignore=ignore)
    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        rule_docs = {rule_id: doc for rule_id, (_fn, doc) in RULES.items()}
        print(findings_to_sarif(findings, rule_docs))
    else:
        for finding in findings:
            print(finding.format())
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        print(
            f"ombpy-lint: {len(findings)} finding(s) "
            f"({errors} error(s), {warnings} warning(s))"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
