"""``ombpy-lint`` — the AST-based MPI-misuse linter.

Usage::

    ombpy-lint [paths...] [--format text|json|sarif] [--select IDs]
               [--ignore IDs] [--perf] [--commgraph] [--protocol]
               [--scale] [--inventory FILE] [--baseline FILE]
    python -m repro.analysis.lint examples/ benchmarks/

Exit status: 0 clean, 1 findings reported, 2 usage error.

Suppression: append ``# ombpy-lint: ignore`` to a line to silence every
rule on it, or ``# ombpy-lint: ignore[OMB001,OMB004]`` for specific rules
(``# ombpy: disable[...]`` is accepted as an alias).  A pragma anywhere
in a statement continued across lines (backslash or open parentheses)
applies to the whole statement.

``--perf`` adds the whole-program performance family (OMB301-310) and
``--commgraph`` the static communication-graph rules (OMB401-403); both
are documented in ``docs/perf-lint.md``.  ``--protocol`` runs the
rank-symbolic protocol verifier (OMB501-506) and ``--scale`` the
scalability-debt rules with LogGP cost annotations (OMB510-515); see
``docs/protocol-lint.md``.  ``--inventory`` writes the
machine-readable finding inventory (``results/perf_lint.json``);
``--baseline`` filters findings already grandfathered in a baseline file
(``tools/perf_lint_baseline.json``), so only *new* sites fail.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import asdict
from pathlib import Path

from .dataflow import statement_spans
from .findings import (
    Finding,
    findings_to_json,
    findings_to_sarif,
    sort_findings,
)
from .rules import RULES, run_rules

_PRAGMA = re.compile(
    r"#\s*ombpy(?:-lint)?:\s*(?:ignore|disable)(?:\[([A-Z0-9,\s]+)\])?"
)

#: Baseline file schema marker (tools/perf_lint_baseline.json).
BASELINE_SCHEMA = "ombpy-lint-baseline/1"
#: Inventory file schema marker (results/perf_lint.json).
INVENTORY_SCHEMA = "ombpy-perf-lint/1"


def _pragma_rules(line: str) -> set[str] | None:
    """Rule IDs suppressed by a pragma on ``line``.

    ``None`` means no pragma; an empty set means "suppress everything".
    """
    match = _PRAGMA.search(line)
    if match is None:
        return None
    if match.group(1) is None:
        return set()
    return {r.strip() for r in match.group(1).split(",")}


def _suppressed(
    finding: Finding,
    lines: list[str],
    spans: dict[int, tuple[int, int]] | None = None,
) -> bool:
    """Honour suppression pragmas over the finding's full statement span.

    A finding on any line of a multi-line statement is suppressed by a
    pragma on *any* line of that statement — the historical gap where
    ``# ombpy-lint: ignore`` after a backslash/paren continuation was
    silently dropped.
    """
    if not 1 <= finding.line <= len(lines):
        return False
    start, end = (spans or {}).get(
        finding.line, (finding.line, finding.line)
    )
    end = min(end, len(lines))
    for lineno in range(start, end + 1):
        rules = _pragma_rules(lines[lineno - 1])
        if rules is None:
            continue
        if not rules or finding.rule in rules:
            return True
    return False


def lint_source(
    source: str,
    path: str = "<string>",
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Lint one source string; returns the (pragma-filtered) findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule="OMB000",
            severity="error",
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 0),
            message=f"syntax error: {exc.msg}",
        )]
    findings = run_rules(tree, path, select=select, ignore=ignore)
    lines = source.splitlines()
    spans = statement_spans(tree)
    return [f for f in findings if not _suppressed(f, lines, spans)]


def lint_file(
    path: str | Path,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"), str(p), select=select, ignore=ignore
    )


def _filter_program_findings(findings: list[Finding]) -> list[Finding]:
    """Apply suppression pragmas to whole-program (perf/commgraph)
    findings, which are produced outside :func:`lint_source`."""
    by_path: dict[str, list[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    kept: list[Finding] = []
    for path, group in by_path.items():
        try:
            source = Path(path).read_text(encoding="utf-8")
            spans = statement_spans(ast.parse(source))
        except (OSError, SyntaxError):
            kept.extend(group)
            continue
        lines = source.splitlines()
        kept.extend(
            f for f in group if not _suppressed(f, lines, spans)
        )
    return kept


def lint_paths(
    paths: list[str | Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    perf: bool = False,
    commgraph: bool = False,
    protocol: bool = False,
    scale: bool = False,
) -> list[Finding]:
    """Lint files and directories (recursing into ``*.py``).

    With ``perf``/``commgraph``/``protocol``/``scale``, the whole-program
    engine loads every file under ``paths`` into one
    :class:`~repro.analysis.interproc.Program` and runs the OMB3xx/OMB4xx/
    OMB5xx families on top of the per-file rules.
    """
    findings: list[Finding] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                findings.extend(lint_file(f, select=select, ignore=ignore))
        else:
            findings.extend(lint_file(p, select=select, ignore=ignore))
    if perf or commgraph or protocol or scale:
        from .interproc import load_program

        program = load_program(list(paths))
        extra: list[Finding] = []
        if perf:
            from .perf import run_perf_rules

            extra.extend(run_perf_rules(program, select, ignore))
        if commgraph:
            from .commgraph import run_commgraph_rules

            extra.extend(run_commgraph_rules(program, select, ignore))
        if protocol:
            from .protocol import run_protocol_rules

            extra.extend(run_protocol_rules(program, select, ignore))
        if scale:
            from .scale import run_scale_rules

            extra.extend(run_scale_rules(program, select, ignore))
        findings.extend(_filter_program_findings(extra))
    return sort_findings(findings)


def _all_rule_docs() -> dict[str, str]:
    """Every rule ID -> one-line description, across all families."""
    from .commgraph import COMMGRAPH_RULES
    from .perf import PERF_RULES
    from .protocol import PROTOCOL_RULES
    from .scale import SCALE_RULES

    docs = {rule_id: doc for rule_id, (_fn, doc) in RULES.items()}
    docs.update({r: doc for r, (_fn, doc) in PERF_RULES.items()})
    docs.update({r: doc for r, (_fn, doc) in COMMGRAPH_RULES.items()})
    docs.update({r: doc for r, (_fn, doc) in PROTOCOL_RULES.items()})
    docs.update({r: doc for r, (_fn, doc) in SCALE_RULES.items()})
    return docs


def _parse_rule_set(spec: str | None) -> set[str] | None:
    if spec is None:
        return None
    rules = {r.strip() for r in spec.split(",") if r.strip()}
    unknown = rules - set(_all_rule_docs()) - {"OMB000"}
    if unknown:
        raise ValueError(f"unknown rule ID(s): {', '.join(sorted(unknown))}")
    return rules


# -- baseline / inventory --------------------------------------------------

def fingerprint(finding: Finding) -> str:
    """Stable identity for baseline matching.

    Line numbers are deliberately excluded so unrelated edits above a
    grandfathered site do not churn the baseline; messages avoid
    embedding positions for the same reason.
    """
    return f"{finding.path}::{finding.rule}::{finding.message}"


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file -> fingerprint multiset (fingerprint: count)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unrecognized baseline schema {data.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    counts = data.get("fingerprints", {})
    if not isinstance(counts, dict):
        raise ValueError("baseline 'fingerprints' must be an object")
    return {str(k): int(v) for k, v in counts.items()}


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int],
) -> tuple[list[Finding], int]:
    """Drop findings covered by the baseline (as a multiset).

    Returns ``(new_findings, grandfathered_count)``: each fingerprint
    absorbs up to its baseline count, so *adding* a second copy at an
    already-grandfathered site still fails.
    """
    budget = dict(baseline)
    fresh: list[Finding] = []
    grandfathered = 0
    for f in sort_findings(findings):
        fp = fingerprint(f)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            grandfathered += 1
        else:
            fresh.append(f)
    return fresh, grandfathered


def write_inventory(
    path: str | Path,
    findings: list[Finding],
    lint_paths_arg: list[str],
) -> None:
    """Write the machine-readable inventory (``results/perf_lint.json``)
    the zero-copy refactor burns down."""
    ordered = sort_findings(findings)
    by_rule: dict[str, int] = {}
    for f in ordered:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    payload = {
        "schema": INVENTORY_SCHEMA,
        "paths": [str(p) for p in lint_paths_arg],
        "count": len(ordered),
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [asdict(f) for f in ordered],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ombpy-lint",
        description=(
            "Static checker for mpi4py-API misuse: pickle-path buffer "
            "sends, leaked requests, case-mismatched pairs, reserved "
            "tags, deprecated constants, deadlock shapes, and "
            "non-blocking buffer hazards (mutate/read before wait, "
            "unconsumed request lists, concurrent posts on one buffer)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (directories recurse into *.py)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
        "log for code-scanning upload",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="also run the whole-program performance rules (OMB301-310): "
        "hot-path copies, pickle fallbacks, loop hazards",
    )
    parser.add_argument(
        "--commgraph", action="store_true",
        help="also run the static communication-graph rules (OMB401-403): "
        "unmatched tags and head-to-head wait cycles",
    )
    parser.add_argument(
        "--protocol", action="store_true",
        help="also run the rank-symbolic protocol verifier (OMB501-506): "
        "collective-order mismatches and rank-dependent deadlocks, proven "
        "parametrically across job sizes",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the scalability rules (OMB510-515): O(N²) meshes, "
        "linear collectives, per-peer threads/fds, unbounded hold buffers "
        "— each priced with a LogGP cost estimate at N=1024",
    )
    parser.add_argument(
        "--inventory", default=None, metavar="FILE",
        help="write the machine-readable finding inventory to FILE "
        "(e.g. results/perf_lint.json)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="drop findings grandfathered in FILE "
        "(tools/perf_lint_baseline.json); only new findings remain",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, doc in sorted(_all_rule_docs().items()):
            print(f"{rule_id}  {doc}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("ombpy-lint: error: no paths given", file=sys.stderr)
        return 2

    try:
        select = _parse_rule_set(args.select)
        ignore = _parse_rule_set(args.ignore)
    except ValueError as exc:
        print(f"ombpy-lint: error: {exc}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"ombpy-lint: error: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    findings = lint_paths(
        args.paths, select=select, ignore=ignore,
        perf=args.perf, commgraph=args.commgraph,
        protocol=args.protocol, scale=args.scale,
    )
    if args.inventory:
        write_inventory(args.inventory, findings, args.paths)

    grandfathered = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"ombpy-lint: error: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = apply_baseline(findings, baseline)

    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        print(findings_to_sarif(findings, _all_rule_docs()))
    else:
        for finding in findings:
            print(finding.format())
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        suffix = (
            f", {grandfathered} grandfathered by baseline"
            if grandfathered else ""
        )
        print(
            f"ombpy-lint: {len(findings)} finding(s) "
            f"({errors} error(s), {warnings} warning(s){suffix})"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
