"""Synthetic dataset generators.

* :func:`dota2_like` — matches the shape of the UCI "Dota2 Games Results"
  set the paper's k-NN benchmark uses (102,944 instances x 116 features,
  binary +-1 labels; 113 of the features are sparse +-1 hero-pick
  indicators).  Class-conditional pick probabilities make the labels
  learnable, so accuracy is non-trivial like the real set.
* :func:`make_blobs` — isotropic Gaussian blobs for the k-means HPO
  benchmark (the paper uses a 7,000-point 2-D synthetic set).
* :func:`random_matrix` — dense operands for the matmul benchmark
  (paper: 4704 x 4704).
"""

from __future__ import annotations

import numpy as np

DOTA2_SAMPLES = 102_944
DOTA2_FEATURES = 116
DOTA2_HEROES = 113


def dota2_like(
    n_samples: int = DOTA2_SAMPLES,
    n_features: int = DOTA2_FEATURES,
    seed: int = 7,
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) with the Dota2 result-set shape and +-1 labels.

    Features: [game type, game mode, cluster id, hero picks...] where each
    team picks 5 of the available heroes (+1 for team A, -1 for team B).
    A hidden per-hero strength vector biases outcomes, so nearest-neighbour
    classification beats chance.
    """
    if n_features < 4:
        raise ValueError("dota2_like needs at least 4 features")
    rng = np.random.default_rng(seed)
    n_heroes = n_features - 3
    X = np.zeros((n_samples, n_features), dtype=np.float32)
    X[:, 0] = rng.integers(1, 10, n_samples)     # cluster id
    X[:, 1] = rng.integers(1, 4, n_samples)      # game type
    X[:, 2] = rng.integers(1, 10, n_samples)     # game mode

    strength = rng.normal(0.0, 1.0, n_heroes)
    picks_per_team = min(5, n_heroes // 2)
    margins = np.empty(n_samples, dtype=np.float64)
    for i in range(n_samples):
        picked = rng.choice(n_heroes, 2 * picks_per_team, replace=False)
        team_a, team_b = picked[:picks_per_team], picked[picks_per_team:]
        X[i, 3 + team_a] = 1.0
        X[i, 3 + team_b] = -1.0
        margins[i] = strength[team_a].sum() - strength[team_b].sum()
    noise = rng.normal(0.0, 1.0, n_samples)
    y = np.where(margins + noise > 0, 1, -1).astype(np.int64)
    return X, y


def make_blobs(
    n_samples: int = 7000,
    n_features: int = 2,
    centers: int = 5,
    cluster_std: float = 0.6,
    box: float = 10.0,
    seed: int = 11,
) -> tuple[np.ndarray, np.ndarray]:
    """(X, labels) — isotropic Gaussian blobs around random centers."""
    if centers < 1 or n_samples < centers:
        raise ValueError(
            f"need n_samples >= centers >= 1, got {n_samples}, {centers}"
        )
    rng = np.random.default_rng(seed)
    mus = rng.uniform(-box, box, size=(centers, n_features))
    counts = np.full(centers, n_samples // centers)
    counts[: n_samples % centers] += 1
    X = np.concatenate([
        rng.normal(mus[c], cluster_std, size=(counts[c], n_features))
        for c in range(centers)
    ])
    labels = np.concatenate([
        np.full(counts[c], c, dtype=np.int64) for c in range(centers)
    ])
    perm = rng.permutation(n_samples)
    return X[perm].astype(np.float64), labels[perm]


def random_matrix(n: int = 4704, seed: int = 3) -> np.ndarray:
    """Dense n x n float64 matrix with standard-normal entries."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, n))


def train_test_split(
    X: np.ndarray, y: np.ndarray, test_fraction: float = 0.2, seed: int = 5
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1): {test_fraction}")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(X))
    cut = int(len(X) * (1.0 - test_fraction))
    train, test = perm[:cut], perm[cut:]
    return X[train], X[test], y[train], y[test]
