"""k-nearest-neighbours classifier (scikit-learn workalike).

Brute-force search with the vectorized squared-distance identity
``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` and chunked query batches so
memory stays bounded — the same strategy sklearn's brute backend uses.
Majority vote with lowest-label tie-break.  The computation is dominated
by one big matmul per chunk, so NumPy releases the GIL and the distributed
benchmark parallelizes well even on the threads transport.
"""

from __future__ import annotations

import numpy as np


class NotFittedError(RuntimeError):
    """predict/score called before fit."""


class KNeighborsClassifier:
    """Brute-force k-NN classifier.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours in the vote.
    chunk_size:
        Query rows scored per distance-matrix block.
    """

    def __init__(self, n_neighbors: int = 5, chunk_size: int = 512) -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_neighbors = n_neighbors
        self.chunk_size = chunk_size
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self._y_encoded: np.ndarray | None = None
        self._train_sq: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Store the training set (k-NN is lazy; all work is in predict)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(
                f"X has {len(X)} rows but y has {len(y)} labels"
            )
        if len(X) < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training "
                f"samples, got {len(X)}"
            )
        self._X = X
        self._y = y
        self._classes, self._y_encoded = np.unique(y, return_inverse=True)
        self._train_sq = np.einsum("ij,ij->i", X, X)
        return self

    def _check_fitted(self) -> None:
        if self._X is None:
            raise NotFittedError("fit() must be called before predict()")

    def kneighbors(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(distances, indices) of the k nearest training points."""
        self._check_fitted()
        assert self._X is not None and self._train_sq is not None
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"query shape {X.shape} incompatible with training "
                f"dimension {self._X.shape[1]}"
            )
        k = self.n_neighbors
        all_idx = np.empty((len(X), k), dtype=np.int64)
        all_dist = np.empty((len(X), k), dtype=np.float64)
        for lo in range(0, len(X), self.chunk_size):
            chunk = X[lo:lo + self.chunk_size]
            d2 = (
                np.einsum("ij,ij->i", chunk, chunk)[:, None]
                + self._train_sq[None, :]
                - 2.0 * (chunk @ self._X.T)
            )
            np.maximum(d2, 0.0, out=d2)  # numerical floor
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            part = np.take_along_axis(d2, idx, axis=1)
            order = np.argsort(part, axis=1)
            all_idx[lo:lo + len(chunk)] = np.take_along_axis(idx, order, axis=1)
            all_dist[lo:lo + len(chunk)] = np.sqrt(
                np.take_along_axis(part, order, axis=1)
            )
        return all_dist, all_idx

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote labels for each query row."""
        self._check_fitted()
        assert self._classes is not None and self._y_encoded is not None
        _dist, idx = self.kneighbors(X)
        votes = self._y_encoded[idx]
        n_classes = len(self._classes)
        counts = np.apply_along_axis(
            lambda row: np.bincount(row, minlength=n_classes), 1, votes
        )
        return self._classes[np.argmax(counts, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on (X, y)."""
        y = np.asarray(y)
        if len(X) == 0:
            raise ValueError("cannot score an empty test set")
        return float(np.mean(self.predict(X) == y))
