"""``repro.ml`` — machine-learning substrate + distributed ML benchmarks.

The paper's ML benchmarks use scikit-learn's KNeighborsClassifier and
KMeans and the UCI Dota2 dataset; none are available here, so this package
implements the algorithms from scratch on NumPy (:mod:`repro.ml.knn`,
:mod:`repro.ml.kmeans`), generates shape-compatible synthetic data
(:mod:`repro.ml.datasets`), and builds the three distributed benchmarks of
paper §IV-G on the MPI runtime (:mod:`repro.ml.distributed`).
"""

from .datasets import dota2_like, make_blobs, random_matrix
from .kmeans import KMeans
from .knn import KNeighborsClassifier

__all__ = [
    "KMeans",
    "KNeighborsClassifier",
    "dota2_like",
    "make_blobs",
    "random_matrix",
]
