"""Distributed k-means hyper-parameter optimization (paper §IV-G-2, Fig 3).

Sequential: fit k-means for k = 1..k_max and record the inertia of each,
producing the elbow curve.  Distributed: the k values are partitioned
across ranks with the cost-balanced scheduler (cost of a Lloyd sweep grows
with k), each rank fits its ks, and the (k, inertia) pairs are gathered at
the root.
"""

from __future__ import annotations

import numpy as np

from ...mpi.comm import Comm
from ..kmeans import KMeans
from .scheduler import balanced_assignment

# Lloyd's per-iteration cost is O(n * k * d); cost(k) ~ k balances well.
_COST = float


def _fit_inertias(
    X: np.ndarray, ks: list[int], max_iter: int, random_state: int
) -> dict[int, float]:
    out: dict[int, float] = {}
    for k in ks:
        model = KMeans(
            n_clusters=k, max_iter=max_iter, random_state=random_state
        )
        model.fit(X)
        out[k] = model.inertia_
    return out


def sequential_kmeans_hpo(
    X: np.ndarray,
    k_max: int = 10,
    max_iter: int = 50,
    random_state: int = 0,
) -> dict[int, float]:
    """{k: inertia} for k = 1..k_max on one process."""
    if k_max < 1:
        raise ValueError(f"k_max must be >= 1, got {k_max}")
    return _fit_inertias(
        X, list(range(1, k_max + 1)), max_iter, random_state
    )


def distributed_kmeans_hpo(
    comm: Comm,
    X: np.ndarray,
    k_max: int = 10,
    max_iter: int = 50,
    random_state: int = 0,
) -> dict[int, float] | None:
    """Balanced split of the k sweep; gathered {k: inertia} on rank 0.

    The fixed k_max "in order to reproduce the exact experiments when
    running on different number of nodes" (paper) means every layout
    computes the same sweep, just faster.
    """
    rank, size = comm.rank, comm.size
    assignment = balanced_assignment(
        list(range(1, k_max + 1)), size, cost=_COST
    )
    mine = _fit_inertias(X, assignment[rank], max_iter, random_state)

    # Serialize local results as (k, inertia) float pairs and Gatherv.
    flat = np.array(
        [v for kv in sorted(mine.items()) for v in kv], dtype="f8"
    )
    blocks = comm.gatherv_bytes(flat.tobytes(), None, 0)
    if blocks is None:
        return None
    merged: dict[int, float] = {}
    for block in blocks:
        pairs = np.frombuffer(block, dtype="f8").reshape(-1, 2)
        for k, inertia in pairs:
            merged[int(k)] = float(inertia)
    return dict(sorted(merged.items()))


def fault_tolerant_kmeans_hpo(
    comm: Comm,
    X: np.ndarray,
    k_max: int = 10,
    max_iter: int = 50,
    random_state: int = 0,
) -> tuple[dict[int, float] | None, Comm]:
    """The k sweep with ULFM recovery: survive rank crashes mid-HPO.

    Like :func:`distributed_kmeans_hpo`, but a rank failure during the
    sweep does not lose the job: survivors revoke + shrink the
    communicator, redistribute the ks whose owner died (their own
    finished ks are kept, not recomputed), and gather on the new
    communicator.  Returns ``(results-or-None, final_comm)`` — results
    land on rank 0 *of the final communicator*, and the curve is
    identical to the failure-free sweep because every k is fitted with
    the same ``random_state``.
    """
    from ...mpi.exceptions import CommRevokedError, RankFailedError

    if k_max < 1:
        raise ValueError(f"k_max must be >= 1, got {k_max}")
    all_ks = list(range(1, k_max + 1))
    done: dict[int, float] = {}

    def sweep(c: Comm) -> dict[int, float] | None:
        todo = [k for k in all_ks if k not in done]
        assignment = balanced_assignment(todo, c.size, cost=_COST)
        # Fit one k at a time so a crash forfeits at most one fit.
        for k in assignment[c.rank]:
            done.update(_fit_inertias(X, [k], max_iter, random_state))
        # Everyone contributes everything it has ever finished: after a
        # failure the re-run may gather a k both from its original owner
        # and from the rank that recomputed it — merging is idempotent.
        flat = np.array(
            [v for kv in sorted(done.items()) for v in kv], dtype="f8"
        )
        counts = [
            int(np.frombuffer(b, dtype="<i8")[0])
            for b in c.allgather_bytes(np.int64(len(flat) * 8).tobytes())
        ]
        blocks = c.allgatherv_bytes(flat.tobytes(), counts)
        merged: dict[int, float] = {}
        for block in blocks:
            for k, inertia in np.frombuffer(block, dtype="f8").reshape(-1, 2):
                merged[int(k)] = float(inertia)
        # A k whose owner died before finishing is still missing; raise
        # back into the recovery loop to redistribute the remainder.
        missing = [k for k in all_ks if k not in merged]
        if missing:
            done.update(merged)
            raise _IncompleteSweep(missing)
        return dict(sorted(merged.items())) if c.rank == 0 else None

    # Each pass either finishes, shrinks after a failure (at most
    # size - 1 times), or redistributes the dead rank's unfinished ks
    # (at most once per shrink) — so the loop is bounded.
    current = comm
    for _ in range(2 * comm.size + 2):
        try:
            return sweep(current), current
        except _IncompleteSweep:
            # Every rank that reached the allgather saw the same gap
            # and re-enters together on the same communicator.
            continue
        except (CommRevokedError, RankFailedError):
            if current.size <= 1:
                raise
            current.revoke()
            current = current.shrink()
    raise _IncompleteSweep([k for k in all_ks if k not in done])


class _IncompleteSweep(RuntimeError):
    """A recovered sweep is still missing ks (redistribute and retry)."""

    def __init__(self, missing: list[int]) -> None:
        super().__init__(f"k sweep incomplete: missing {missing}")
        self.missing = missing


def find_elbow(inertias: dict[int, float]) -> int:
    """The k after which inertia improvement flattens (max curvature).

    Distance-to-chord heuristic on the *log*-inertia curve: k-means
    inertia drops by orders of magnitude before the elbow, so linear-space
    chords are dominated by the first drop and fire one k early.
    """
    if not inertias:
        raise ValueError("empty inertia curve")
    ks = np.array(sorted(inertias))
    vals = np.array([inertias[int(k)] for k in ks])
    if len(ks) <= 2:
        return int(ks[0])
    logs = np.log(np.maximum(vals, 1e-300))
    x = (ks - ks[0]) / max(ks[-1] - ks[0], 1)
    span = logs[0] - logs[-1]
    if span <= 0:
        return int(ks[0])
    y = (logs - logs[-1]) / span
    # Chord from (0, 1) to (1, 0) is the line x + y = 1; the elbow is the
    # point furthest below it (most negative x + y - 1).
    below = x + y - 1.0
    return int(ks[int(np.argmin(below))])
