"""Sequential-vs-distributed timing harness for the ML benchmarks.

Runs a workload once on a single process and once on ``n`` ranks (threads
transport by default — NumPy releases the GIL inside the hot kernels, so
real speedups are observable on a multicore laptop), and reports the
paper's metric: execution time and speedup vs sequential.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from ...mpi.comm import Comm
from ...mpi.world import run_on_threads


@dataclass(frozen=True)
class MLResult:
    """One sequential-vs-distributed comparison."""

    workload: str
    processes: int
    sequential_s: float
    distributed_s: float
    result_sequential: Any = None
    result_distributed: Any = None

    @property
    def speedup(self) -> float:
        if self.distributed_s <= 0:
            raise ValueError("non-positive distributed time")
        return self.sequential_s / self.distributed_s


def run_sequential_vs_distributed(
    workload: str,
    sequential_fn: Callable[[], Any],
    distributed_fn: Callable[[Comm], Any],
    processes: int,
    timeout: float = 600.0,
) -> MLResult:
    """Time ``sequential_fn()`` once and ``distributed_fn(comm)`` on
    ``processes`` ranks-as-threads; the distributed time is the wall time
    of the slowest rank (all ranks run inside one timed region)."""
    t0 = time.perf_counter()
    seq_result = sequential_fn()
    seq_s = time.perf_counter() - t0

    dist_result: list[Any] = [None]

    def ranked(comm: Comm) -> None:
        out = distributed_fn(comm)
        if comm.rank == 0:
            dist_result[0] = out

    t0 = time.perf_counter()
    run_on_threads(processes, ranked, timeout=timeout)
    dist_s = time.perf_counter() - t0

    return MLResult(
        workload=workload,
        processes=processes,
        sequential_s=seq_s,
        distributed_s=dist_s,
        result_sequential=seq_result,
        result_distributed=dist_result[0],
    )
