"""Cost-balanced assignment of k-means HPO work.

The paper (§IV-G-2): "when there are more centroids to find (large k),
calculating the inertia will take longer.  Therefore, each process will be
responsible for trying both small and large k values in an intelligent
manner in order for all processes to finish approximately at the same
time."  This is the classic makespan-minimization setting; the greedy
longest-processing-time (LPT) heuristic gets within 4/3 of optimal and is
what we use.
"""

from __future__ import annotations

from typing import Callable, Sequence


def balanced_assignment(
    items: Sequence[int],
    nparts: int,
    cost: Callable[[int], float] = float,
) -> list[list[int]]:
    """Partition ``items`` into ``nparts`` lists with balanced total cost.

    Greedy LPT: sort by descending cost, always give the next item to the
    currently lightest part.  Returns ``nparts`` lists (some possibly
    empty when there are fewer items than parts).
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    parts: list[list[int]] = [[] for _ in range(nparts)]
    loads = [0.0] * nparts
    for item in sorted(items, key=cost, reverse=True):
        lightest = min(range(nparts), key=loads.__getitem__)
        parts[lightest].append(item)
        loads[lightest] += cost(item)
    return parts


def naive_block_assignment(
    items: Sequence[int], nparts: int
) -> list[list[int]]:
    """Contiguous block split — the baseline the ablation compares against.

    With cost growing in k, the rank holding the last block becomes the
    straggler; the ablation benchmark quantifies the resulting imbalance.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    items = list(items)
    base, extra = divmod(len(items), nparts)
    parts = []
    start = 0
    for i in range(nparts):
        count = base + (1 if i < extra else 0)
        parts.append(items[start:start + count])
        start += count
    return parts


def makespan(
    parts: Sequence[Sequence[int]],
    cost: Callable[[int], float] = float,
) -> float:
    """Max part load under ``cost`` — the finish time of the slowest rank."""
    return max(
        (sum(cost(i) for i in part) for part in parts), default=0.0
    )
