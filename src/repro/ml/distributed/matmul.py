"""Distributed matrix multiplication (paper §IV-G-3, Fig. 38).

Rows of A are divided equally across ranks; each computes its row block
against the full B; blocks are gathered at the root with Gatherv (row
counts differ when p does not divide n).
"""

from __future__ import annotations

import numpy as np

from ...mpi.comm import Comm


def sequential_matmul(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """numpy.dot on one process — the paper's sequential baseline."""
    return np.dot(A, B)


def _row_bounds(n: int, parts: int, idx: int) -> tuple[int, int]:
    base, extra = divmod(n, parts)
    lo = idx * base + min(idx, extra)
    return lo, lo + base + (1 if idx < extra else 0)


def distributed_matmul(
    comm: Comm, A: np.ndarray, B: np.ndarray
) -> np.ndarray | None:
    """Row-partitioned A @ B; full product on rank 0, None elsewhere.

    Every rank passes the full operands (replicated data, matching the
    paper's benchmark design); each multiplies only its row slice.
    """
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(
            f"incompatible shapes for matmul: {A.shape} x {B.shape}"
        )
    rank, size = comm.rank, comm.size
    lo, hi = _row_bounds(A.shape[0], size, rank)
    block = np.ascontiguousarray(A[lo:hi] @ B, dtype=np.float64)

    blocks = comm.gatherv_bytes(block.tobytes(), None, 0)
    if blocks is None:
        return None
    out = np.frombuffer(b"".join(blocks), dtype=np.float64)
    return out.reshape(A.shape[0], B.shape[1]).copy()
