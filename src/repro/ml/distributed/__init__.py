"""Distributed ML benchmarks (paper §IV-G, Figs. 2-3 and 36-38).

* :mod:`repro.ml.distributed.knn` — training set fitted on every rank,
  test set split; accuracies reduced at the root;
* :mod:`repro.ml.distributed.kmeans_hpo` — hyper-parameter sweep over k
  with cost-balanced assignment of k values to ranks; inertias gathered;
* :mod:`repro.ml.distributed.matmul` — row-partitioned dot product,
  blocks gathered at the root;
* :mod:`repro.ml.distributed.scheduler` — the balanced k assignment;
* :mod:`repro.ml.distributed.harness` — sequential-vs-distributed timing.
"""

from .harness import MLResult, run_sequential_vs_distributed
from .kmeans_hpo import (
    distributed_kmeans_hpo, fault_tolerant_kmeans_hpo, sequential_kmeans_hpo,
)
from .knn import distributed_knn, sequential_knn
from .matmul import distributed_matmul, sequential_matmul
from .scheduler import balanced_assignment

__all__ = [
    "MLResult",
    "balanced_assignment",
    "distributed_kmeans_hpo",
    "distributed_knn",
    "distributed_matmul",
    "fault_tolerant_kmeans_hpo",
    "run_sequential_vs_distributed",
    "sequential_kmeans_hpo",
    "sequential_knn",
    "sequential_matmul",
]
