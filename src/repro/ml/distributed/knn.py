"""Distributed k-NN benchmark (paper §IV-G-1, Fig. 2).

The training set is fitted on every rank (prediction dominates the cost,
and replicated training keeps accuracy identical to the sequential run);
the test set is split equally; per-rank accuracies are combined with a
sample-weighted Reduce at the root.
"""

from __future__ import annotations

import numpy as np

from ...mpi import ops
from ...mpi.comm import Comm
from ..knn import KNeighborsClassifier


def sequential_knn(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    n_neighbors: int = 5,
) -> float:
    """Fit + score on one process; returns accuracy."""
    clf = KNeighborsClassifier(n_neighbors=n_neighbors)
    clf.fit(X_train, y_train)
    return clf.score(X_test, y_test)


def _split_bounds(n: int, parts: int, idx: int) -> tuple[int, int]:
    base, extra = divmod(n, parts)
    lo = idx * base + min(idx, extra)
    return lo, lo + base + (1 if idx < extra else 0)


def distributed_knn(
    comm: Comm,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    n_neighbors: int = 5,
) -> float | None:
    """Fit everywhere, predict a test shard, Reduce accuracy to rank 0.

    Every rank passes the full arrays (the benchmark replicates data, as
    the paper's design does); returns the global accuracy on rank 0 and
    None elsewhere.
    """
    rank, size = comm.rank, comm.size
    lo, hi = _split_bounds(len(X_test), size, rank)

    clf = KNeighborsClassifier(n_neighbors=n_neighbors)
    clf.fit(X_train, y_train)

    shard_n = hi - lo
    correct = 0.0
    if shard_n > 0:
        pred = clf.predict(X_test[lo:hi])
        correct = float(np.sum(pred == y_test[lo:hi]))

    # Weighted combination: sum(correct) / sum(count) at the root.
    totals = comm.reduce_array(
        np.array([correct, float(shard_n)], dtype="f8"), ops.SUM, 0
    )
    if totals is None:
        return None
    return float(totals[0] / totals[1])
