"""k-means clustering (scikit-learn workalike).

Lloyd's algorithm with k-means++ initialization, convergence on center
movement, and the ``inertia_`` attribute the paper's hyper-parameter
optimization benchmark sweeps to find the elbow.
"""

from __future__ import annotations

import numpy as np


class KMeans:
    """Lloyd's k-means.

    Parameters
    ----------
    n_clusters:
        Number of centroids (the ``k`` the HPO benchmark sweeps).
    max_iter / tol:
        Lloyd iteration limit and center-movement convergence threshold.
    n_init:
        Restarts; the best inertia wins (sklearn semantics).
    random_state:
        Seed for reproducible initialization.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 300,
        tol: float = 1e-4,
        n_init: int = 1,
        random_state: int | None = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _sq_dists(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        d2 = (
            np.einsum("ij,ij->i", X, X)[:, None]
            + np.einsum("ij,ij->i", centers, centers)[None, :]
            - 2.0 * (X @ centers.T)
        )
        np.maximum(d2, 0.0, out=d2)
        return d2

    def _init_centers(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding."""
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n)]
        closest = self._sq_dists(X, centers[:1]).ravel()
        for c in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                centers[c:] = X[rng.integers(n, size=self.n_clusters - c)]
                break
            probs = closest / total
            centers[c] = X[rng.choice(n, p=probs)]
            closest = np.minimum(
                closest, self._sq_dists(X, centers[c:c + 1]).ravel()
            )
        return centers

    def _lloyd(
        self, X: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        for it in range(1, self.max_iter + 1):
            d2 = self._sq_dists(X, centers)
            labels = np.argmin(d2, axis=1)
            new_centers = np.empty_like(centers)
            for c in range(self.n_clusters):
                members = X[labels == c]
                if len(members) == 0:
                    # Re-seed an empty cluster at the worst-served point.
                    new_centers[c] = X[np.argmax(np.min(d2, axis=1))]
                else:
                    new_centers[c] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tol:
                break
        d2 = self._sq_dists(X, centers)
        labels = np.argmin(d2, axis=1)
        inertia = float(d2[np.arange(len(X)), labels].sum())
        return centers, labels, inertia, it

    # -- public API ------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster X; sets cluster_centers_/labels_/inertia_/n_iter_."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"{len(X)} samples cannot form {self.n_clusters} clusters"
            )
        rng = np.random.default_rng(self.random_state)
        best: tuple | None = None
        for _ in range(self.n_init):
            centers = self._init_centers(X, rng)
            centers, labels, inertia, iters = self._lloyd(X, centers)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, iters)
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-center labels for new points."""
        if self.cluster_centers_ is None:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=np.float64)
        return np.argmin(self._sq_dists(X, self.cluster_centers_), axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_  # type: ignore[return-value]
