"""mpi4py source-compatibility layer.

``from repro.compat import MPI`` gives a module-like object with the
names mpi4py programs use — ``MPI.COMM_WORLD``, wildcard constants,
predefined ops and datatypes, ``MPI.Status``, ``MPI.Wtime`` — backed by
this package's runtime.  The mpi4py tutorial snippets the paper's
Background section cites run unmodified:

    from repro.compat import MPI
    comm = MPI.COMM_WORLD
    rank = comm.Get_rank()
    if rank == 0:
        comm.send({'a': 7, 'b': 3.14}, dest=1, tag=11)
    elif rank == 1:
        data = comm.recv(source=0, tag=11)
"""

from . import MPI

__all__ = ["MPI"]
