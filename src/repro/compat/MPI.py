"""The ``MPI`` namespace mpi4py programs import.

Provides mpi4py's module-level surface over :mod:`repro`'s runtime:
``COMM_WORLD`` (created lazily on first touch, exactly like mpi4py's
import-time init), wildcard/thread-level constants, predefined reduction
ops and datatypes, ``Status``, ``Wtime``, and ``Finalize``.

Keyword-argument conventions match mpi4py: ``send(obj, dest=..., tag=...)``,
``recv(source=..., tag=...)``, ``Send(buf, dest=...)``, &c. — the
underlying :class:`repro.bindings.Comm` already uses those names.
"""

from __future__ import annotations

import threading
from typing import Any

from ..bindings.comm_api import CommWorld
from ..bindings.comm_api import init as _bindings_init
from ..core.timing import Wtime  # noqa: F401  (re-export)
from ..mpi import constants as _c
from ..mpi import datatypes as _dt
from ..mpi import ops as _ops
from ..mpi.exceptions import ERR_PROC_FAILED  # noqa: F401  (re-export)
from ..mpi.exceptions import MPIError as Exception  # noqa: F401, A001, N812
from ..mpi.exceptions import RankFailedError  # noqa: F401  (re-export)
from ..mpi.status import Status  # noqa: F401  (re-export)

# -- constants ---------------------------------------------------------------
ANY_SOURCE = _c.ANY_SOURCE
ANY_TAG = _c.ANY_TAG
PROC_NULL = _c.PROC_NULL
UNDEFINED = _c.UNDEFINED

THREAD_SINGLE = _c.THREAD_SINGLE
THREAD_FUNNELED = _c.THREAD_FUNNELED
THREAD_SERIALIZED = _c.THREAD_SERIALIZED
THREAD_MULTIPLE = _c.THREAD_MULTIPLE

IDENT = _c.IDENT
CONGRUENT = _c.CONGRUENT
SIMILAR = _c.SIMILAR
UNEQUAL = _c.UNEQUAL

# -- predefined ops -----------------------------------------------------------
SUM = _ops.SUM
PROD = _ops.PROD
MAX = _ops.MAX
MIN = _ops.MIN
LAND = _ops.LAND
LOR = _ops.LOR
LXOR = _ops.LXOR
BAND = _ops.BAND
BOR = _ops.BOR
BXOR = _ops.BXOR
MAXLOC = _ops.MAXLOC
MINLOC = _ops.MINLOC

# -- predefined datatypes -------------------------------------------------------
BYTE = _dt.BYTE
CHAR = _dt.CHAR
SHORT = _dt.SHORT
INT = _dt.INT
LONG = _dt.LONG
FLOAT = _dt.FLOAT
DOUBLE = _dt.DOUBLE
C_BOOL = _dt.C_BOOL
DOUBLE_COMPLEX = _dt.DOUBLE_COMPLEX

# -- world management ------------------------------------------------------------
_world_lock = threading.Lock()
_world: CommWorld | None = None


class _LazyCommWorld:
    """Proxy that initializes the world on first attribute access.

    mpi4py initializes MPI at import; doing it lazily here keeps plain
    ``import repro.compat`` side-effect-free while preserving the
    ``MPI.COMM_WORLD`` usage pattern.
    """

    def _real(self) -> CommWorld:
        global _world
        with _world_lock:
            if _world is None:
                _world = _bindings_init()
            return _world

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real(), name)

    @property
    def rank(self) -> int:
        return self._real().rank

    @property
    def size(self) -> int:
        return self._real().size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MPI.COMM_WORLD (repro.compat)>"


COMM_WORLD = _LazyCommWorld()


def Is_initialized() -> bool:
    """Whether COMM_WORLD has been touched yet."""
    return _world is not None


def Finalize() -> None:
    """Tear down the world (idempotent)."""
    global _world
    with _world_lock:
        if _world is not None:
            _world.finalize()
            _world = None


def Get_version() -> tuple[int, int]:
    """The MPI standard level this runtime approximates."""
    return (3, 1)


def Query_thread() -> int:
    """Thread level of the initialized world (mpi4py default: MULTIPLE)."""
    return COMM_WORLD._real().runtime.thread_level
