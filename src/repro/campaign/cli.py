"""``ombpy-campaign`` — run | resume | status | report.

The campaign driver CLI.  ``run`` expands a spec, journals the plan,
and executes it; after a crash (or a SIGINT checkpoint-and-stop),
``resume`` replays the journal and runs only the cells that never
completed; ``status`` summarizes a campaign directory; ``report``
renders the results store, exports CSV, and applies the regression
gate.

Exit codes: 0 — campaign complete (including *degraded*: every cell
resolved, failures listed in the manifest's ``missed``); 1 — campaign
aborted or the regression gate failed; 2 — usage, spec, or
fingerprint-mismatch errors; 130 — interrupted (checkpoint written;
resume to continue).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from .backends import ColdLaunchBackend, DualBackend, WarmServiceBackend
from .config import CampaignConfig
from .journal import (
    CAMPAIGN_BEGIN, CAMPAIGN_RESUMED, CELL_PLANNED, Journal, replay,
)
from .scheduler import CampaignScheduler, INTERRUPTED
from .spec import CampaignSpec
from .store import JOURNAL_FILE, SPEC_FILE, ResultsStore
from . import gate as gate_mod

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 130


def _tcp_addr(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _add_knob_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--concurrency", type=int, default=None,
                        help="cells run concurrently "
                        "(overrides OMBPY_CAMPAIGN_CONCURRENCY)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell wall-clock timeout "
                        "(overrides OMBPY_CAMPAIGN_CELL_TIMEOUT_S)")
    parser.add_argument("--retry-max", type=int, default=None,
                        help="retries per cell within one run "
                        "(overrides OMBPY_CAMPAIGN_RETRY_MAX)")
    parser.add_argument("--retry-backoff-ms", type=float, default=None,
                        help="initial retry backoff "
                        "(overrides OMBPY_CAMPAIGN_RETRY_BACKOFF_MS)")
    parser.add_argument("--quarantine-after", type=int, default=None,
                        help="cumulative failures before quarantine "
                        "(overrides OMBPY_CAMPAIGN_QUARANTINE_AFTER)")
    parser.add_argument("--backend", choices=("auto", "cold", "warm"),
                        default="auto",
                        help="cell execution backend: auto probes a warm "
                        "ombpy-serve pool and falls back to supervised "
                        "cold launches (default)")
    parser.add_argument("--service-socket", default=None, metavar="PATH",
                        help="ombpy-serve UDS path for the warm backend")
    parser.add_argument("--service-tcp", type=_tcp_addr, default=None,
                        metavar="HOST:PORT",
                        help="ombpy-serve TCP address for the warm backend")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ombpy-campaign",
        description="crash-safe benchmark campaign driver: journaled "
        "sweeps with retry, quarantine, and resume",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a campaign spec")
    p_run.add_argument("spec", help="campaign spec file (YAML or JSON)")
    p_run.add_argument("--out", default=None, metavar="DIR",
                       help="campaign directory (default: "
                       "campaign-<name>)")
    _add_knob_args(p_run)

    p_resume = sub.add_parser(
        "resume", help="resume an interrupted or crashed campaign",
    )
    p_resume.add_argument("dir", help="campaign directory")
    p_resume.add_argument("--spec", default=None,
                          help="re-read the spec from this file instead "
                          "of the directory's copy (fingerprint-checked)")
    _add_knob_args(p_resume)

    p_status = sub.add_parser("status", help="summarize a campaign dir")
    p_status.add_argument("dir", help="campaign directory")

    p_report = sub.add_parser(
        "report", help="render results, export CSV, apply the gate",
    )
    p_report.add_argument("dir", help="campaign directory")
    p_report.add_argument("--csv", default=None, metavar="FILE",
                          help="export the flattened results store to FILE")
    p_report.add_argument("--gate", default=None, metavar="BASELINE",
                          help="regression-gate against a BENCH_*.json "
                          "snapshot or a prior results.jsonl")
    p_report.add_argument("--gate-threshold", type=float,
                          default=gate_mod.DEFAULT_THRESHOLD,
                          help="mean slowdown that fails the gate "
                          f"(default {gate_mod.DEFAULT_THRESHOLD})")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "report":
            return _cmd_report(args)
    except ValueError as exc:
        print(f"ombpy-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"ombpy-campaign: {exc}", file=sys.stderr)
        return EXIT_ERROR
    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------
# run / resume
# ---------------------------------------------------------------------------
def _config_from_args(args) -> CampaignConfig:
    return CampaignConfig.from_env(
        concurrency=args.concurrency,
        cell_timeout_s=args.cell_timeout,
        retry_max=args.retry_max,
        retry_backoff_ms=args.retry_backoff_ms,
        quarantine_after=args.quarantine_after,
    )


def _backend_from_args(args):
    if args.backend == "cold":
        return ColdLaunchBackend()
    socket_path = args.service_socket
    tcp = args.service_tcp
    if socket_path is None and tcp is None:
        from ..service.cli import DEFAULT_SOCKET

        socket_path = DEFAULT_SOCKET
    warm = WarmServiceBackend.probe(socket_path=socket_path, tcp=tcp)
    if args.backend == "warm":
        if warm is None:
            target = socket_path or f"{tcp[0]}:{tcp[1]}"
            raise ValueError(
                f"--backend warm: no healthy ombpy-serve at {target}"
            )
        return DualBackend(warm)    # warm-first; cold only as last resort
    return DualBackend(warm)        # auto: warm iff the probe succeeded


def _drive(scheduler: CampaignScheduler) -> int:
    """Run the scheduler under SIGINT/SIGTERM checkpoint-and-stop."""
    old_handlers: dict[int, object] = {}

    def _stop(signum, frame):  # noqa: ARG001 - signal signature
        print("ombpy-campaign: checkpoint-and-stop requested; finishing "
              "journal writes (resume to continue)", file=sys.stderr)
        scheduler.request_stop()

    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            old_handlers[signum] = signal.signal(signum, _stop)
    except ValueError:
        old_handlers = {}   # not the main thread (tests)
    try:
        result = scheduler.run()
    finally:
        for signum, handler in old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
    done = len(result.completed)
    total = len(scheduler.spec.cells)
    if result.status == INTERRUPTED:
        print(f"ombpy-campaign: interrupted at {done}/{total} cells; "
              f"journal is consistent — resume to continue")
        return EXIT_INTERRUPTED
    missed = len(result.missed)
    print(f"ombpy-campaign: {result.status} — {done}/{total} cells done"
          + (f", {missed} missed (see MANIFEST.json)" if missed else ""))
    for entry in result.missed:
        print(f"  missed {entry['cell']}: {entry['reason']}")
    return EXIT_OK


def _cmd_run(args) -> int:
    config = _config_from_args(args)
    spec = CampaignSpec.load(args.spec)
    out = args.out or f"campaign-{spec.name}"
    journal_path = os.path.join(out, JOURNAL_FILE)
    if os.path.exists(journal_path):
        print(f"ombpy-campaign: {out} already has a journal; use "
              f"'ombpy-campaign resume {out}' to continue it",
              file=sys.stderr)
        return EXIT_USAGE
    store = ResultsStore(out)
    with open(os.path.join(out, SPEC_FILE), "w", encoding="utf-8") as fh:
        json.dump(spec.document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for line in spec.skipped:
        print(f"ombpy-campaign: skipping {line}", file=sys.stderr)
    backend = _backend_from_args(args)
    with Journal(journal_path) as journal:
        journal.append(
            CAMPAIGN_BEGIN, schema="ombpy-campaign-journal/1",
            name=spec.name, fingerprint=spec.fingerprint(),
            cells=len(spec.cells),
        )
        for cell in spec.cells:
            journal.append(CELL_PLANNED, cell=cell.cell_id)
        state = replay(journal_path)
        print(f"ombpy-campaign: {spec.name}: {len(spec.cells)} cells, "
              f"concurrency {config.concurrency}, backend "
              f"{getattr(backend, 'name', '?')} -> {out}")
        scheduler = CampaignScheduler(
            spec, journal, store, backend, config=config, state=state,
        )
        return _drive(scheduler)


def _cmd_resume(args) -> int:
    out = args.dir
    journal_path = os.path.join(out, JOURNAL_FILE)
    spec_path = args.spec or os.path.join(out, SPEC_FILE)
    if not os.path.exists(journal_path):
        print(f"ombpy-campaign: {out} has no journal to resume",
              file=sys.stderr)
        return EXIT_USAGE
    spec = CampaignSpec.load(spec_path)
    state = replay(journal_path)
    if state.fingerprint is None:
        print(f"ombpy-campaign: {journal_path} has no CAMPAIGN_BEGIN "
              "record; nothing to resume", file=sys.stderr)
        return EXIT_USAGE
    if state.fingerprint != spec.fingerprint():
        print(
            f"ombpy-campaign: spec fingerprint mismatch — the journal "
            f"was begun for {state.fingerprint} but the spec expands to "
            f"{spec.fingerprint()}; resuming a *different* sweep against "
            f"this journal would corrupt it (start a fresh run instead)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    config = _config_from_args(args)
    backend = _backend_from_args(args)
    store = ResultsStore(out)
    if state.torn_tail:
        print("ombpy-campaign: journal had a torn trailing record "
              "(crash mid-append); ignored", file=sys.stderr)
    with Journal(journal_path) as journal:
        journal.append(CAMPAIGN_RESUMED, fingerprint=state.fingerprint)
        pending = state.pending()
        print(f"ombpy-campaign: resuming {spec.name}: "
              f"{len(state.done)} done, {len(state.quarantined)} "
              f"quarantined, {len(pending)} pending")
        scheduler = CampaignScheduler(
            spec, journal, store, backend, config=config, state=state,
        )
        return _drive(scheduler)


# ---------------------------------------------------------------------------
# status / report
# ---------------------------------------------------------------------------
def _cmd_status(args) -> int:
    journal_path = os.path.join(args.dir, JOURNAL_FILE)
    if not os.path.exists(journal_path):
        print(f"ombpy-campaign: {args.dir} has no journal",
              file=sys.stderr)
        return EXIT_USAGE
    state = replay(journal_path)
    pending = state.pending()
    print(f"campaign: {state.name or '?'} fingerprint={state.fingerprint}")
    print(f"  planned={len(state.planned)} done={len(state.done)} "
          f"quarantined={len(state.quarantined)} pending={len(pending)}")
    print(f"  records={state.records} resumes={state.resumes} "
          f"ended={state.ended or 'in progress / crashed'}")
    if state.inflight:
        print(f"  in flight at last record: {sorted(state.inflight)}")
    if state.torn_tail:
        print("  journal tail torn (crash mid-append); last record ignored")
    for cell_id in sorted(state.quarantined):
        print(f"  quarantined {cell_id} "
              f"({state.failures.get(cell_id, 0)} failures): "
              f"{state.last_error.get(cell_id, '?')}")
    return EXIT_OK


def _cmd_report(args) -> int:
    store = ResultsStore(args.dir)
    records = store.load()
    manifest = store.read_manifest()
    if manifest is not None:
        print(f"campaign {manifest['name']}: {manifest['status']} — "
              f"{len(manifest['completed'])} completed, "
              f"{len(manifest['missed'])} missed")
        for entry in manifest["missed"]:
            print(f"  missed {entry.get('cell')}: {entry.get('reason')}")
    else:
        print(f"campaign {args.dir}: no manifest yet "
              f"({len(records)} result record(s) so far)")
    for record in records:
        rows = record.get("rows", [])
        print(f"  {record['cell']}: {len(rows)} sizes, "
              f"{record.get('metric')}, backend={record.get('backend')}, "
              f"{record.get('elapsed_s')}s")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(store.to_csv(records))
        print(f"wrote {args.csv}")
    if args.gate:
        baseline = gate_mod.load_baseline(args.gate)
        result = gate_mod.check(records, baseline,
                                threshold=args.gate_threshold)
        print(result.format())
        if not result.ok:
            return EXIT_ERROR
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
