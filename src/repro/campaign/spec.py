"""Declarative campaign specs and their expansion into cells.

A campaign spec is a YAML or JSON document describing a sweep of
benchmark x transport x ranks x message-size range x flags.  Expansion
produces a deterministic, de-duplicated list of :class:`CellSpec`
cells; the sha-256 **fingerprint** of the expanded list is written to
the journal at campaign begin and re-checked on resume, so a resumed
driver can never silently run a different grid against an old journal.

Document format (``docs/campaign.md`` has the full reference)::

    name: paper-sweep
    sweep:
      - benchmarks: [osu_latency, osu_allreduce]
        transports: [threads, tcp]
        ranks: [2, 4]
        sizes: ["1:1024", "4096:65536"]
        groups: [null, "2x2"]
        iterations: 10
        warmup: 2
        buffer: bytearray
        api: buffer
        reliable: false
        validate: false
        fault_seed: null

Every ``sweep`` block is a cartesian product over its list-valued axes;
multiple blocks concatenate.  Combinations that cannot run (fewer ranks
than the benchmark's minimum) are dropped at expansion and reported, not
discovered mid-campaign.  YAML input needs PyYAML; without it, JSON
specs work unchanged.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field

SPEC_SCHEMA = "ombpy-campaign-spec/1"

TRANSPORTS = ("threads", "tcp", "uds", "shm")

#: Axes that may be lists inside a sweep block (cartesian product).
#: ``groups`` is optional (default: one flat-topology point, ``null``);
#: entries are ``--groups``-style specs and sweep the node-group axis.
_AXES = ("benchmarks", "transports", "ranks", "sizes", "groups")
#: Scalar per-block settings with their defaults.
_SCALARS = {
    "iterations": 10,
    "warmup": 2,
    "buffer": "bytearray",
    "api": "buffer",
    "reliable": False,
    "validate": False,
    "fault_seed": None,
}


@dataclass(frozen=True)
class CellSpec:
    """One executable point of the sweep grid."""

    benchmark: str
    transport: str
    ranks: int
    min_size: int
    max_size: int
    iterations: int = 10
    warmup: int = 2
    buffer: str = "bytearray"
    api: str = "buffer"
    reliable: bool = False
    validate: bool = False
    fault_seed: int | None = None
    groups: str | None = None

    def __post_init__(self) -> None:
        if self.groups is not None and (
            not isinstance(self.groups, str) or not self.groups
        ):
            raise ValueError(
                f"cell groups must be a non-empty spec string or null, "
                f"got {self.groups!r}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"cell transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.ranks < 1:
            raise ValueError(f"cell ranks must be >= 1, got {self.ranks}")
        if self.min_size < 0 or self.max_size < self.min_size:
            raise ValueError(
                f"invalid cell size range "
                f"[{self.min_size}, {self.max_size}]"
            )
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError(
                "cell iterations must be >= 1 and warmup >= 0"
            )

    @property
    def cell_id(self) -> str:
        """Stable human-scannable id: grid coordinates + content hash.

        The trailing hash covers *every* field, so two cells differing
        only in, say, iteration count or flags never collide.
        """
        digest = hashlib.sha256(
            json.dumps(asdict(self), sort_keys=True).encode()
        ).hexdigest()[:8]
        return (
            f"{self.benchmark}.{self.transport}.n{self.ranks}"
            f".s{self.min_size}-{self.max_size}.{digest}"
        )

    def to_wire(self) -> dict:
        return asdict(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "CellSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(obj) - known
        if unknown:
            raise ValueError(
                f"unknown cell field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**obj)

    def options(self) -> dict:
        """Benchmark options for :class:`repro.core.options.Options`."""
        return {
            "min_size": self.min_size,
            "max_size": self.max_size,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "buffer": self.buffer,
            "api": self.api,
        }


@dataclass
class CampaignSpec:
    """A named campaign: the expanded cell grid plus its provenance."""

    name: str
    cells: list[CellSpec] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    document: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """sha-256 over the canonical expanded grid.

        Depends only on the name and the expanded cells — editing
        comments or re-ordering axes in the document does not change
        it; adding, removing, or altering any cell does.
        """
        canonical = json.dumps(
            {
                "schema": SPEC_SCHEMA,
                "name": self.name,
                "cells": [c.to_wire() for c in self.cells],
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def cell_ids(self) -> list[str]:
        return [c.cell_id for c in self.cells]

    @classmethod
    def from_document(cls, doc: dict) -> "CampaignSpec":
        """Expand a parsed spec document; raises ``ValueError`` on any
        malformed field so a bad spec dies before the first cell runs."""
        if not isinstance(doc, dict):
            raise ValueError(
                f"campaign spec must be a mapping, got {type(doc).__name__}"
            )
        schema = doc.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(
                f"unsupported spec schema {schema!r} "
                f"(this driver reads {SPEC_SCHEMA})"
            )
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("campaign spec needs a non-empty 'name'")
        blocks = doc.get("sweep")
        if not isinstance(blocks, list) or not blocks:
            raise ValueError(
                "campaign spec needs a non-empty 'sweep' list of blocks"
            )
        known = set(_AXES) | set(_SCALARS) | {"schema", "name"}
        cells: list[CellSpec] = []
        skipped: list[str] = []
        seen: set[str] = set()
        for index, block in enumerate(blocks):
            if not isinstance(block, dict):
                raise ValueError(f"sweep block {index} must be a mapping")
            unknown = set(block) - known
            if unknown:
                raise ValueError(
                    f"sweep block {index} has unknown field(s): "
                    f"{', '.join(sorted(unknown))}"
                )
            for cell in _expand_block(block, index):
                if cell.cell_id in seen:
                    continue
                seen.add(cell.cell_id)
                if not _runnable(cell, skipped):
                    continue
                cells.append(cell)
        if not cells:
            raise ValueError("campaign spec expanded to zero runnable cells")
        return cls(name=name, cells=cells, skipped=skipped, document=doc)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Load and expand a spec file (JSON always; YAML with PyYAML)."""
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        try:
            doc = json.loads(text)
        except ValueError:
            try:
                import yaml
            except ImportError:
                raise ValueError(
                    f"{path} is not JSON and PyYAML is not installed; "
                    "install pyyaml or write the spec as JSON"
                ) from None
            try:
                doc = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ValueError(f"{path}: bad YAML: {exc}") from None
        return cls.from_document(doc)


def _as_list(block: dict, key: str, index: int) -> list:
    value = block.get(key)
    if value is None:
        raise ValueError(f"sweep block {index} is missing '{key}'")
    if not isinstance(value, list):
        value = [value]
    if not value:
        raise ValueError(f"sweep block {index} has an empty '{key}'")
    return value


def _parse_size(entry, index: int) -> tuple[int, int]:
    """One sizes-axis entry: ``"MIN:MAX"``, ``{"min":..,"max":..}``, or
    a single int (a one-size cell)."""
    if isinstance(entry, str):
        lo, sep, hi = entry.partition(":")
        try:
            return int(lo), int(hi) if sep else int(lo)
        except ValueError:
            raise ValueError(
                f"sweep block {index}: size range must look like "
                f"'MIN:MAX', got {entry!r}"
            ) from None
    if isinstance(entry, dict):
        extra = set(entry) - {"min", "max"}
        if extra or "min" not in entry or "max" not in entry:
            raise ValueError(
                f"sweep block {index}: size mapping needs exactly "
                f"'min' and 'max', got {sorted(entry)}"
            )
        return int(entry["min"]), int(entry["max"])
    if isinstance(entry, int):
        return entry, entry
    raise ValueError(
        f"sweep block {index}: bad size entry {entry!r}"
    )


def _expand_block(block: dict, index: int):
    benchmarks = _as_list(block, "benchmarks", index)
    transports = _as_list(block, "transports", index)
    ranks = _as_list(block, "ranks", index)
    sizes = [_parse_size(s, index) for s in _as_list(block, "sizes", index)]
    # The groups axis is optional: absent means one flat-topology point.
    groups_axis = block.get("groups", [None])
    if not isinstance(groups_axis, list):
        groups_axis = [groups_axis]
    if not groups_axis:
        raise ValueError(f"sweep block {index} has an empty 'groups'")
    scalars = {k: block.get(k, d) for k, d in _SCALARS.items()}
    for bench, transport, n, (lo, hi), groups in itertools.product(
        benchmarks, transports, ranks, sizes, groups_axis
    ):
        yield CellSpec(
            benchmark=str(bench), transport=str(transport), ranks=int(n),
            min_size=lo, max_size=hi,
            groups=None if groups is None else str(groups), **scalars,
        )


def _runnable(cell: CellSpec, skipped: list[str]) -> bool:
    """Drop grid points the benchmark itself can never run."""
    from ..core.registry import get_benchmark

    try:
        bench = get_benchmark(cell.benchmark)
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    if cell.ranks < bench.min_ranks:
        skipped.append(
            f"{cell.cell_id}: {cell.benchmark} needs at least "
            f"{bench.min_ranks} ranks, grid point has {cell.ranks}"
        )
        return False
    if cell.groups is not None:
        from ..mpi.topology import TopologyError, parse_groups

        try:
            parse_groups(cell.groups, cell.ranks)
        except TopologyError as exc:
            skipped.append(
                f"{cell.cell_id}: groups {cell.groups!r} does not fit "
                f"{cell.ranks} ranks: {exc}"
            )
            return False
    return True
