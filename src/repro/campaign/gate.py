"""The regression gate: campaign results vs a prior benchmark snapshot.

``ombpy-campaign report --gate BASELINE`` compares the campaign's
results store against a prior snapshot and fails (non-zero exit) when
any benchmark slowed down past a configurable threshold — the
continuous-integration teeth that keep the ``BENCH_*.json`` trajectory
honest (cf. *MPI Benchmarking Revisited*: results that are not gated
regress silently).

Two baseline formats are accepted:

* a ``BENCH_telemetry.json``-style snapshot
  (``{"results": {name: {"sizes": [...], "off": [...]}}}``) — the
  telemetry-off series is the reference;
* a prior campaign's ``results.jsonl`` — cells are matched by
  ``(benchmark, transport, ranks)``.

Metric direction is honoured: for latency-like metrics a regression is
``new/old > threshold``; for bandwidth/rate metrics it is
``old/new > threshold``.  Cells or sizes absent from the baseline are
skipped (reported, not failed): a gate must never punish widening the
sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Metrics where larger is better.
_HIGHER_BETTER_MARKERS = ("bandwidth", "rate", "mbs", "msg")

DEFAULT_THRESHOLD = 1.25


def _higher_is_better(metric: str | None, benchmark: str) -> bool:
    text = f"{metric or ''} {benchmark}".lower()
    return any(marker in text for marker in _HIGHER_BETTER_MARKERS)


@dataclass
class Regression:
    """One benchmark series that slowed down past the threshold."""

    cell: str
    benchmark: str
    slowdown: float
    worst_size: int
    worst_slowdown: float

    def format(self) -> str:
        return (
            f"{self.cell}: {self.slowdown:.2f}x mean slowdown "
            f"(worst {self.worst_slowdown:.2f}x at {self.worst_size} B)"
        )


@dataclass
class GateResult:
    """Outcome of one gate evaluation."""

    threshold: float
    checked: int = 0
    skipped: list[str] = field(default_factory=list)
    regressions: list[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"regression gate: {self.checked} series checked against "
            f"baseline (threshold {self.threshold:.2f}x), "
            f"{len(self.regressions)} regression(s)"
        ]
        lines.extend("  REGRESSION " + r.format() for r in self.regressions)
        lines.extend(f"  skipped: {s}" for s in self.skipped)
        return "\n".join(lines)


def load_baseline(path: str) -> dict[str, dict[int, float]]:
    """Read a baseline file into ``{series_key: {size: value}}``.

    Series keys are benchmark names for snapshot baselines and
    ``benchmark/transport/nRANKS`` for campaign baselines; the gate
    matches campaign records against both forms.
    """
    series: dict[str, dict[int, float]] = {}
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Both formats start with "{": a snapshot is one JSON document with
    # a "results" mapping, a campaign store is one record per line (and
    # a single-record store still parses as one document, so the key —
    # not parseability — is the discriminator).
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "results" in doc:
        for name, entry in (doc.get("results") or {}).items():
            sizes = entry.get("sizes") or []
            values = entry.get("off") or []
            if sizes and len(sizes) == len(values):
                series[name] = dict(zip(sizes, values))
        return series
    for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            key = (
                f"{record.get('benchmark')}/{record.get('transport')}"
                f"/n{record.get('ranks')}"
            )
            # Cells with different size ranges share a key: merge their
            # size maps rather than keeping only the last record's.
            series.setdefault(key, {}).update({
                row["size"]: row["value"]
                for row in record.get("rows", ())
                if "size" in row and "value" in row
            })
    return series


def check(records: list[dict], baseline: dict[str, dict[int, float]],
          threshold: float = DEFAULT_THRESHOLD) -> GateResult:
    """Gate the campaign ``records`` against a loaded ``baseline``."""
    if threshold <= 1.0:
        raise ValueError(
            f"gate threshold must be > 1.0, got {threshold}"
        )
    result = GateResult(threshold=threshold)
    for record in records:
        benchmark = record.get("benchmark", "")
        key = (
            f"{benchmark}/{record.get('transport')}/n{record.get('ranks')}"
        )
        reference = baseline.get(key) or baseline.get(benchmark)
        cell = record.get("cell", key)
        if reference is None:
            result.skipped.append(f"{cell} (no baseline series)")
            continue
        higher_better = _higher_is_better(record.get("metric"), benchmark)
        slowdowns: list[tuple[float, int]] = []
        for row in record.get("rows", ()):
            size, value = row.get("size"), row.get("value")
            old = reference.get(size)
            if old is None or not old or value is None or value <= 0:
                continue
            ratio = (old / value) if higher_better else (value / old)
            slowdowns.append((ratio, size))
        if not slowdowns:
            result.skipped.append(f"{cell} (no common sizes)")
            continue
        result.checked += 1
        mean = sum(r for r, _ in slowdowns) / len(slowdowns)
        if mean > threshold:
            worst_slowdown, worst_size = max(slowdowns)
            result.regressions.append(Regression(
                cell=cell, benchmark=benchmark, slowdown=mean,
                worst_size=worst_size, worst_slowdown=worst_slowdown,
            ))
    result.regressions.sort(key=lambda r: -r.slowdown)
    return result
