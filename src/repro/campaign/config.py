"""Campaign tuning knobs: the ``OMBPY_CAMPAIGN_*`` environment.

Same conventions as the service knobs (``OMBPY_SERVICE_*``, see
:mod:`repro.service.config`) and the resilience knobs (``OMBPY_HB_*``,
``OMBPY_REL_*``): every knob has a safe default, is read once at driver
start, and a malformed value fails fast with an error naming the
variable and the accepted range — a campaign must not come up
half-configured and discover it hours into a sweep.

| variable | default | meaning |
|---|---|---|
| ``OMBPY_CAMPAIGN_CONCURRENCY``      | 2      | cells executed concurrently |
| ``OMBPY_CAMPAIGN_CELL_TIMEOUT_S``   | 120.0  | per-cell wall-clock timeout, seconds |
| ``OMBPY_CAMPAIGN_RETRY_MAX``        | 2      | retries per cell within one driver run |
| ``OMBPY_CAMPAIGN_RETRY_BACKOFF_MS`` | 250.0  | initial retry backoff; doubles per attempt, capped at 10 s |
| ``OMBPY_CAMPAIGN_QUARANTINE_AFTER`` | 3      | cumulative (journaled) failures before a cell is quarantined |

The matching ``ombpy-campaign`` flags override the environment.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

ENV_CONCURRENCY = "OMBPY_CAMPAIGN_CONCURRENCY"
ENV_CELL_TIMEOUT = "OMBPY_CAMPAIGN_CELL_TIMEOUT_S"
ENV_RETRY_MAX = "OMBPY_CAMPAIGN_RETRY_MAX"
ENV_RETRY_BACKOFF = "OMBPY_CAMPAIGN_RETRY_BACKOFF_MS"
ENV_QUARANTINE_AFTER = "OMBPY_CAMPAIGN_QUARANTINE_AFTER"

#: Retry backoff ceiling: ``backoff = min(CAP, base * 2**(attempt-1))``.
RETRY_BACKOFF_CAP_S = 10.0


def _env_int(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {value}"
        )
    return value


def _env_float(name: str, default: float, minimum: float,
               exclusive: bool = False) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number {'>' if exclusive else '>='} "
            f"{minimum}, got {raw!r}"
        ) from None
    if value < minimum or (exclusive and value == minimum):
        raise ValueError(
            f"{name} must be a number {'>' if exclusive else '>='} "
            f"{minimum}, got {value}"
        )
    return value


@dataclass(frozen=True)
class CampaignConfig:
    """Validated campaign driver configuration."""

    concurrency: int = 2
    cell_timeout_s: float = 120.0
    retry_max: int = 2
    retry_backoff_ms: float = 250.0
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.cell_timeout_s <= 0:
            raise ValueError(
                f"cell timeout must be > 0 seconds, "
                f"got {self.cell_timeout_s}"
            )
        if self.retry_max < 0:
            raise ValueError(
                f"retry cap must be >= 0, got {self.retry_max}"
            )
        if self.retry_backoff_ms <= 0:
            raise ValueError(
                f"retry backoff must be > 0 ms, "
                f"got {self.retry_backoff_ms}"
            )
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine threshold must be >= 1, "
                f"got {self.quarantine_after}"
            )

    def retry_backoff_s(self, attempt: int,
                        rng: random.Random | None = None) -> float:
        """Capped-exponential backoff before retry number ``attempt``,
        with +/-50% jitter when ``rng`` is given (decorrelates retries
        of concurrently-failing cells)."""
        base = self.retry_backoff_ms / 1000.0
        delay = min(RETRY_BACKOFF_CAP_S, base * (2 ** max(0, attempt - 1)))
        if rng is not None:
            delay *= rng.uniform(0.5, 1.5)
        return delay

    @classmethod
    def from_env(cls, **overrides) -> "CampaignConfig":
        """Build from ``OMBPY_CAMPAIGN_*``; ``overrides`` (CLI flags) win.

        An overridden knob's environment variable is not consulted at
        all — a flag must beat even a malformed variable.  Raises
        ``ValueError`` naming the offending variable on any malformed
        or out-of-range value that *is* consulted.
        """
        readers = {
            "concurrency": lambda: _env_int(
                ENV_CONCURRENCY, cls.concurrency, 1
            ),
            "cell_timeout_s": lambda: _env_float(
                ENV_CELL_TIMEOUT, cls.cell_timeout_s, 0.0, exclusive=True
            ),
            "retry_max": lambda: _env_int(ENV_RETRY_MAX, cls.retry_max, 0),
            "retry_backoff_ms": lambda: _env_float(
                ENV_RETRY_BACKOFF, cls.retry_backoff_ms, 0.0,
                exclusive=True,
            ),
            "quarantine_after": lambda: _env_int(
                ENV_QUARANTINE_AFTER, cls.quarantine_after, 1
            ),
        }
        values = {
            key: overrides[key]
            if overrides.get(key) is not None else read()
            for key, read in readers.items()
        }
        return cls(**values)
