"""Cell execution backends: warm service pool or supervised cold launch.

The scheduler hands a :class:`~repro.campaign.spec.CellSpec` plus a
wall-clock timeout to a backend and gets a :class:`CellOutcome` back —
never an exception for an ordinary cell failure, because the scheduler
must keep the campaign alive through hung, crashing, and OOMing cells.

* :class:`WarmServiceBackend` submits cells to a reachable
  ``ombpy-serve`` rank pool, reusing its admission control and
  per-job deadlines (``docs/service.md``); a warm submit skips process
  spawn + rendezvous + import per cell, which is where campaign
  throughput comes from (``BENCH_campaign.json``).
* :class:`ColdLaunchBackend` runs each cell as a supervised subprocess:
  ``ombpy --threads`` for the in-process fabric, or ``ombpy-run`` for
  the tcp/uds/shm transports with ``--exit-report`` so the failure
  *mode* (rank crash vs application error vs timeout) survives the
  process boundary.
* :class:`DualBackend` prefers warm when the cell is eligible and the
  service answers, and falls back to cold otherwise — a dying daemon
  degrades the campaign to cold launches instead of failing it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

from .spec import CellSpec

#: Outcome kinds (``CellOutcome.kind``).
OK = "ok"
TIMEOUT = "timeout"
RANK_FAILURE = "rank_failure"
APP_ERROR = "app_error"
REJECTED = "rejected"
DEADLINE = "deadline"
CANCELLED = "cancelled"
BACKEND_ERROR = "backend_error"
INTERRUPTED = "interrupted"

#: Seconds of slack the subprocess watchdog allows past the cell
#: timeout before killing: the launcher's own --timeout should win so
#: its cleanup (reaping, UDS/SHM sweep) runs.
_KILL_SLACK_S = 15.0


@dataclass
class CellOutcome:
    """What happened to one cell attempt."""

    ok: bool
    kind: str
    backend: str
    elapsed_s: float
    table: dict | None = None       # wire-form result table when ok
    error: str | None = None
    detail: dict = field(default_factory=dict)


def _python_env() -> dict:
    """Child environment with this runtime importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = os.environ.copy()
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class ColdLaunchBackend:
    """One supervised subprocess per cell attempt."""

    name = "cold"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._procs: set[subprocess.Popen] = set()
        self._interrupted = threading.Event()

    def supports(self, cell: CellSpec) -> bool:  # noqa: ARG002 - interface
        return True

    def interrupt(self) -> None:
        """Checkpoint-and-stop: terminate every in-flight cell process."""
        self._interrupted.set()
        with self._lock:
            procs = list(self._procs)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass

    def run(self, cell: CellSpec, timeout_s: float) -> CellOutcome:
        start = time.monotonic()
        with tempfile.TemporaryDirectory(prefix="ombpy-cell-") as workdir:
            out_path = os.path.join(workdir, "table.json")
            report_path = os.path.join(workdir, "exit-report.json")
            cmd = self._command(cell, timeout_s, out_path, report_path)
            env = _python_env()
            if cell.groups is not None:
                # The threads path reads the topology from the
                # environment; the launcher path also gets --groups.
                env["OMBPY_GROUPS"] = cell.groups
            try:
                proc = subprocess.Popen(
                    cmd, env=env, stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE, text=True,
                )
            except OSError as exc:
                return CellOutcome(
                    ok=False, kind=BACKEND_ERROR, backend=self.name,
                    elapsed_s=time.monotonic() - start,
                    error=f"could not launch cell: {exc}",
                )
            with self._lock:
                self._procs.add(proc)
            try:
                try:
                    _, stderr = proc.communicate(
                        timeout=timeout_s + _KILL_SLACK_S
                    )
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.communicate()
                    return CellOutcome(
                        ok=False, kind=TIMEOUT, backend=self.name,
                        elapsed_s=time.monotonic() - start,
                        error=f"cell exceeded {timeout_s}s (killed)",
                    )
            finally:
                with self._lock:
                    self._procs.discard(proc)
            elapsed = time.monotonic() - start
            report = self._read_json(report_path)
            if proc.returncode == 0:
                table = self._read_json(out_path)
                if table is None:
                    return CellOutcome(
                        ok=False, kind=APP_ERROR, backend=self.name,
                        elapsed_s=elapsed,
                        error="cell exited 0 but wrote no result table",
                    )
                return CellOutcome(
                    ok=True, kind=OK, backend=self.name, elapsed_s=elapsed,
                    table=table, detail={"report": report} if report else {},
                )
            return self._failure(cell, proc.returncode, stderr, report,
                                 elapsed)

    def _command(self, cell: CellSpec, timeout_s: float, out_path: str,
                 report_path: str) -> list[str]:
        bench_cmd = [
            sys.executable, "-m", "repro.core.cli", cell.benchmark,
            "-m", f"{cell.min_size}:{cell.max_size}",
            "-i", str(cell.iterations), "-x", str(cell.warmup),
            "-b", cell.buffer, "--api", cell.api,
            "--output", out_path,
        ]
        if cell.validate:
            bench_cmd.append("--validate")
        if cell.transport == "threads":
            bench_cmd += ["--threads", str(cell.ranks)]
            if cell.reliable:
                bench_cmd.append("--reliable")
            if cell.fault_seed is not None:
                bench_cmd += ["--fault-seed", str(cell.fault_seed)]
            return bench_cmd
        launcher_cmd = [
            sys.executable, "-m", "repro.mpi.launcher",
            "-n", str(cell.ranks), "--transport", cell.transport,
            "--timeout", str(timeout_s), "--exit-report", report_path,
        ]
        if cell.groups is not None:
            launcher_cmd += ["--groups", cell.groups]
        if cell.reliable:
            launcher_cmd.append("--reliable")
        if cell.fault_seed is not None:
            launcher_cmd += ["--fault-seed", str(cell.fault_seed)]
        return launcher_cmd + bench_cmd

    @staticmethod
    def _read_json(path: str) -> dict | None:
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def _failure(self, cell: CellSpec, rc: int, stderr: str,
                 report: dict | None, elapsed: float) -> CellOutcome:
        tail = (stderr or "").strip()[-400:]
        detail = {"exit_code": rc}
        if report:
            detail["report"] = report
        if self._interrupted.is_set() or rc in (130, -2, -15):
            kind = INTERRUPTED
        elif rc == 124 or (report and report.get("timeout")):
            kind = TIMEOUT
        elif report and report.get("first_failure") and cell.ranks > 1:
            # A launcher-supervised rank exited non-zero: a rank-level
            # failure as far as the campaign is concerned.
            kind = RANK_FAILURE
        else:
            kind = APP_ERROR
        return CellOutcome(
            ok=False, kind=kind, backend=self.name, elapsed_s=elapsed,
            error=f"cell exited {rc}: {tail}" if tail
            else f"cell exited {rc}",
            detail=detail,
        )


class WarmServiceBackend:
    """Submit eligible cells to a running ``ombpy-serve`` rank pool."""

    name = "warm"

    def __init__(self, socket_path: str | None = None,
                 tcp: tuple[str, int] | None = None) -> None:
        self._socket_path = socket_path
        self._tcp = tcp
        self._broken = threading.Event()

    @classmethod
    def probe(cls, socket_path: str | None = None,
              tcp: tuple[str, int] | None = None,
              ) -> "WarmServiceBackend | None":
        """Return a backend iff a healthy service answers the address."""
        backend = cls(socket_path=socket_path, tcp=tcp)
        try:
            status = backend._request(
                lambda client: client.status(), timeout=5.0, tries=2,
            )
        except Exception:  # noqa: BLE001 - probe: any failure means cold
            return None
        if status.get("state") not in ("SERVING", "DEGRADED"):
            return None
        return backend

    def supports(self, cell: CellSpec) -> bool:
        """Warm pools serve the in-process fabric; fault-injected cells
        must not poison a shared long-lived pool, and grouped cells need
        a per-cell topology the pool's ranks were not launched with."""
        return (
            not self._broken.is_set()
            and cell.transport == "threads"
            and cell.fault_seed is None
            and not cell.reliable
            and cell.groups is None
        )

    def interrupt(self) -> None:
        """Nothing to kill locally; in-flight jobs are bounded by their
        service-side deadline."""

    def healthy(self) -> bool:
        return not self._broken.is_set()

    def _request(self, fn, timeout: float, tries: int = 2):
        from ..service.client import ServiceClient

        client = ServiceClient(
            socket_path=self._socket_path, tcp=self._tcp,
            timeout=timeout, connect_tries=tries,
        )
        with client:
            return fn(client)

    def run(self, cell: CellSpec, timeout_s: float) -> CellOutcome:
        from ..service.client import ServiceError
        from ..service.protocol import JobSpec

        spec = JobSpec(
            benchmark=cell.benchmark, ranks=cell.ranks,
            options=cell.options(), deadline_s=timeout_s,
            validate=cell.validate, label=cell.cell_id,
        )
        start = time.monotonic()
        try:
            job = self._request(
                lambda client: client.run(spec, timeout=timeout_s),
                timeout=timeout_s + 10.0,
            )
        except ServiceError as exc:
            elapsed = time.monotonic() - start
            reply = getattr(exc, "reply", {}) or {}
            kind = REJECTED if reply.get("reply") == "REJECTED" \
                else BACKEND_ERROR
            return CellOutcome(
                ok=False, kind=kind, backend=self.name, elapsed_s=elapsed,
                error=str(exc),
            )
        except (OSError, ConnectionError, TimeoutError) as exc:
            # The daemon is gone or unreachable: mark the backend broken
            # so DualBackend stops offering it, and let the scheduler
            # retry this cell (it will fall back to cold).
            self._broken.set()
            return CellOutcome(
                ok=False, kind=BACKEND_ERROR, backend=self.name,
                elapsed_s=time.monotonic() - start,
                error=f"benchmark service unreachable: {exc}",
            )
        return self._from_job(job, time.monotonic() - start)

    def _from_job(self, job: dict, elapsed: float) -> CellOutcome:
        state = job.get("state")
        if state == "DONE":
            return CellOutcome(
                ok=True, kind=OK, backend=self.name, elapsed_s=elapsed,
                table=job.get("result") or {},
                detail={"attempts": job.get("attempts")},
            )
        kind = {
            "DEADLINE": DEADLINE,
            "CANCELLED": CANCELLED,
        }.get(state, APP_ERROR)
        if state == "FAILED" and job.get("failure_kind") in (
            "rank_failure", "pool_degraded", "pool_lost", "collateral",
        ):
            kind = RANK_FAILURE
        return CellOutcome(
            ok=False, kind=kind, backend=self.name, elapsed_s=elapsed,
            error=job.get("error") or f"job ended {state}",
            detail={"state": state,
                    "failure_kind": job.get("failure_kind")},
        )


class DualBackend:
    """Warm when possible, cold otherwise — per cell, per attempt."""

    name = "dual"

    def __init__(self, warm: WarmServiceBackend | None,
                 cold: ColdLaunchBackend | None = None) -> None:
        self.warm = warm
        self.cold = cold or ColdLaunchBackend()

    def supports(self, cell: CellSpec) -> bool:  # noqa: ARG002 - interface
        return True

    def interrupt(self) -> None:
        self.cold.interrupt()
        if self.warm is not None:
            self.warm.interrupt()

    def run(self, cell: CellSpec, timeout_s: float) -> CellOutcome:
        if self.warm is not None and self.warm.healthy() \
                and self.warm.supports(cell):
            outcome = self.warm.run(cell, timeout_s)
            if outcome.kind != BACKEND_ERROR:
                return outcome
            # Warm path collapsed mid-campaign: degrade to cold for this
            # attempt rather than charging the cell for our problem.
        return self.cold.run(cell, timeout_s)
