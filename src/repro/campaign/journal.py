"""The write-ahead journal: append-only JSONL, fsynced, replayable.

Every campaign state transition is appended (and fsynced) **before**
the driver acts on it, so the on-disk journal is always at least as
advanced as the world.  After a crash — driver SIGKILL included —
:func:`replay` reconstructs the exact completed/failed/quarantined
sets; ``ombpy-campaign resume`` then runs only what never finished.

Record types (every record also carries ``ts``)::

    CAMPAIGN_BEGIN    {schema, name, fingerprint, cells}
    CELL_PLANNED      {cell}
    CELL_STARTED      {cell, attempt, backend}
    CELL_DONE         {cell, attempt, elapsed_s, backend}
    CELL_FAILED       {cell, attempt, error, kind, charged}
    CELL_QUARANTINED  {cell, failures}
    CAMPAIGN_RESUMED  {fingerprint}
    CAMPAIGN_END      {status, done, missed}

A crash can tear the final line in half; replay tolerates exactly one
torn trailing record (flagged on the state), since an append that never
became durable is indistinguishable from one that never happened.  A
torn record anywhere *else* means real corruption and raises.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

JOURNAL_SCHEMA = "ombpy-campaign-journal/1"

CAMPAIGN_BEGIN = "CAMPAIGN_BEGIN"
CELL_PLANNED = "CELL_PLANNED"
CELL_STARTED = "CELL_STARTED"
CELL_DONE = "CELL_DONE"
CELL_FAILED = "CELL_FAILED"
CELL_QUARANTINED = "CELL_QUARANTINED"
CAMPAIGN_RESUMED = "CAMPAIGN_RESUMED"
CAMPAIGN_END = "CAMPAIGN_END"

RECORD_TYPES = (
    CAMPAIGN_BEGIN, CELL_PLANNED, CELL_STARTED, CELL_DONE, CELL_FAILED,
    CELL_QUARANTINED, CAMPAIGN_RESUMED, CAMPAIGN_END,
)


class Journal:
    """Append-only journal writer.  Thread-safe; every append is
    flushed and fsynced before it returns — the durability contract the
    resume semantics rest on."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        _truncate_torn_tail(path)
        self._fh = open(path, "a", encoding="utf-8")  # noqa: SIM115

    def append(self, record_type: str, **fields) -> dict:
        if record_type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {record_type!r}")
        record = {"type": record_type, "ts": round(time.time(), 3), **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                raise ValueError("journal is closed")
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _truncate_torn_tail(path: str) -> None:
    """Drop a torn trailing record before appending to a journal.

    A crash mid-``write`` leaves a final line without a newline; a new
    append would concatenate onto it and corrupt *both* records.  The
    torn record was never acknowledged durable, so discarding it is
    exactly equivalent to the crash having landed one write earlier.
    """
    try:
        with open(path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            fh.seek(0)
            body = fh.read(size)
            keep = body.rfind(b"\n") + 1
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
    except FileNotFoundError:
        return


@dataclass
class JournalState:
    """What a journal replay knows about a campaign."""

    name: str | None = None
    fingerprint: str | None = None
    planned: list[str] = field(default_factory=list)
    done: set[str] = field(default_factory=set)
    #: Charged failure counts per cell (quarantine accounting survives
    #: crashes because it is replayed, not held in memory).
    failures: dict[str, int] = field(default_factory=dict)
    last_error: dict[str, str] = field(default_factory=dict)
    quarantined: set[str] = field(default_factory=set)
    #: Cells with a STARTED record newer than any terminal record —
    #: in flight at crash time; re-run on resume.
    inflight: set[str] = field(default_factory=set)
    ended: str | None = None
    resumes: int = 0
    records: int = 0
    torn_tail: bool = False

    def pending(self) -> list[str]:
        """Planned cells not yet done or quarantined, in plan order."""
        return [
            c for c in self.planned
            if c not in self.done and c not in self.quarantined
        ]


def replay(path: str) -> JournalState:
    """Rebuild campaign state from a journal file.

    Tolerates one torn trailing line (crash mid-append); raises
    ``ValueError`` on corruption anywhere else or on structurally
    invalid records.
    """
    state = JournalState()
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
    except FileNotFoundError:
        return state
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except ValueError:
            if index == len(lines) - 1:
                state.torn_tail = True
                break
            raise ValueError(
                f"{path}:{index + 1}: corrupt journal record"
            ) from None
        _apply(state, record, path, index + 1)
    return state


def _apply(state: JournalState, record: dict, path: str, lineno: int) -> None:
    rtype = record.get("type")
    cell = record.get("cell")
    if rtype == CAMPAIGN_BEGIN:
        state.name = record.get("name")
        state.fingerprint = record.get("fingerprint")
    elif rtype == CELL_PLANNED:
        _require_cell(cell, path, lineno)
        if cell not in state.planned:
            state.planned.append(cell)
    elif rtype == CELL_STARTED:
        _require_cell(cell, path, lineno)
        state.inflight.add(cell)
    elif rtype == CELL_DONE:
        _require_cell(cell, path, lineno)
        state.done.add(cell)
        state.inflight.discard(cell)
    elif rtype == CELL_FAILED:
        _require_cell(cell, path, lineno)
        state.inflight.discard(cell)
        if record.get("charged", True):
            state.failures[cell] = state.failures.get(cell, 0) + 1
        if record.get("error"):
            state.last_error[cell] = record["error"]
    elif rtype == CELL_QUARANTINED:
        _require_cell(cell, path, lineno)
        state.quarantined.add(cell)
        state.inflight.discard(cell)
    elif rtype == CAMPAIGN_RESUMED:
        state.resumes += 1
        state.ended = None
    elif rtype == CAMPAIGN_END:
        state.ended = record.get("status")
    else:
        raise ValueError(
            f"{path}:{lineno}: unknown journal record type {rtype!r}"
        )
    state.records += 1


def _require_cell(cell, path: str, lineno: int) -> None:
    if not isinstance(cell, str) or not cell:
        raise ValueError(
            f"{path}:{lineno}: journal cell record without a cell id"
        )
