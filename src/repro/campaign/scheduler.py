"""The campaign scheduler: concurrent cells, retries, quarantine.

Executes the pending cells of a campaign over a pool of worker threads.
Per cell: a wall-clock timeout (enforced by the backend), up to
``retry_max`` retries with capped-exponential jittered backoff, and
**quarantine** once the cell's *cumulative journaled* failure count
reaches ``quarantine_after`` — a cell that keeps crashing is set aside
and the campaign completes without it, listed in the manifest's
``missed`` section, instead of aborting the whole sweep.

Durability contract: every transition is journaled (and fsynced) before
the scheduler acts on it, and results are appended to the store before
``CELL_DONE`` is journaled — so a completed cell is never re-run after
a crash, and a journaled-done cell always has its data in the store.

A stop request (SIGINT in the CLI) is a *checkpoint-and-stop*: workers
finish or abandon their current attempt (in-flight subprocesses are
terminated via ``backend.interrupt()``), interrupted attempts are
journaled uncharged, and the journal is left consistent for resume.
"""

from __future__ import annotations

import collections
import random
import threading
import time
from dataclasses import dataclass, field

from . import backends as bk
from .config import CampaignConfig
from .journal import (
    CAMPAIGN_END, CELL_DONE, CELL_FAILED, CELL_PLANNED, CELL_QUARANTINED,
    CELL_STARTED, Journal, JournalState,
)
from .spec import CampaignSpec
from .store import ResultsStore

#: Failure kinds that never charge the cell's quarantine budget: the
#: campaign's own shutdown, and backend/admission trouble that is not
#: the cell's fault.
UNCHARGED_KINDS = (bk.INTERRUPTED, bk.BACKEND_ERROR, bk.REJECTED)

#: How many uncharged failures one cell may ride for free in a single
#: driver run before they start charging anyway (a permanently broken
#: backend must not spin a cell forever).
FREE_RETRY_CAP = 3

#: Run statuses.
COMPLETE = "complete"
DEGRADED = "degraded"
INTERRUPTED = "interrupted"


@dataclass
class CampaignResult:
    """What one driver run (initial or resumed) accomplished."""

    status: str
    completed: list[str] = field(default_factory=list)
    missed: list[dict] = field(default_factory=list)
    executed: int = 0           # cells this run actually ran
    manifest: dict | None = None


class CampaignScheduler:
    """Drives one campaign run to completion (or checkpoint-stop)."""

    def __init__(
        self,
        spec: CampaignSpec,
        journal: Journal,
        store: ResultsStore,
        backend,
        config: CampaignConfig | None = None,
        state: JournalState | None = None,
        sleep=None,
        rng: random.Random | None = None,
    ) -> None:
        self.spec = spec
        self.journal = journal
        self.store = store
        self.backend = backend
        self.config = config or CampaignConfig()
        self.state = state or JournalState()
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._cells = {c.cell_id: c for c in spec.cells}
        self._queue: collections.deque[str] = collections.deque()
        self._missed: dict[str, dict] = {}
        self._executed = 0

    # -- control ----------------------------------------------------------
    def request_stop(self) -> None:
        """Checkpoint-and-stop: no new attempts, in-flight cells killed."""
        self._stop.set()
        interrupt = getattr(self.backend, "interrupt", None)
        if interrupt is not None:
            interrupt()

    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- run --------------------------------------------------------------
    def run(self) -> CampaignResult:
        state = self.state
        # The spec is authoritative for the plan: a crash can land
        # between CAMPAIGN_BEGIN and the last CELL_PLANNED append, so a
        # resumed journal may know only part of the grid.  Re-plan the
        # missing cells (a no-op on the normal path).
        for cell in self.spec.cells:
            if cell.cell_id not in state.planned:
                self.journal.append(CELL_PLANNED, cell=cell.cell_id)
                state.planned.append(cell.cell_id)
        # Replayed failure counts may already cross the quarantine
        # threshold (the crash happened right after a CELL_FAILED):
        # quarantine those up front rather than burning another attempt.
        for cell_id in list(state.pending()):
            if state.failures.get(cell_id, 0) >= self.config.quarantine_after:
                self._quarantine(cell_id)
        pending = [c for c in state.pending()
                   if c not in state.quarantined and c in self._cells]
        self._queue.extend(pending)

        workers = [
            # Bounded by the --concurrency knob, not by rank count.
            threading.Thread(target=self._worker,  # ombpy-lint: ignore[OMB513]
                             name=f"campaign-worker-{i}", daemon=True)
            for i in range(min(self.config.concurrency, max(1, len(pending))))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        if self._stop.is_set():
            self.journal.append(CAMPAIGN_END, status=INTERRUPTED,
                                done=len(state.done),
                                missed=sorted(self._missed))
            return CampaignResult(
                status=INTERRUPTED, completed=sorted(state.done),
                missed=list(self._missed.values()),
                executed=self._executed,
            )
        return self._finish()

    def _finish(self) -> CampaignResult:
        state = self.state
        missed = []
        for cell_id in state.planned:
            if cell_id in state.done:
                continue
            entry = self._missed.get(cell_id) or {
                "cell": cell_id,
                "failures": state.failures.get(cell_id, 0),
                "reason": ("quarantined" if cell_id in state.quarantined
                           else "not attempted"),
                "last_error": state.last_error.get(cell_id),
            }
            missed.append(entry)
        status = COMPLETE if not missed else DEGRADED
        manifest = self.store.write_manifest(
            name=self.spec.name, fingerprint=self.spec.fingerprint(),
            status=status, completed=sorted(state.done), missed=missed,
            skipped=self.spec.skipped,
        )
        self.journal.append(CAMPAIGN_END, status=status,
                            done=len(state.done),
                            missed=sorted(m["cell"] for m in missed))
        return CampaignResult(
            status=status, completed=sorted(state.done), missed=missed,
            executed=self._executed, manifest=manifest,
        )

    # -- workers ----------------------------------------------------------
    def _next_cell(self) -> str | None:
        with self._lock:
            if self._queue:
                return self._queue.popleft()
        return None

    def _worker(self) -> None:
        while not self._stop.is_set():
            cell_id = self._next_cell()
            if cell_id is None:
                return
            self._run_cell(cell_id)

    def _run_cell(self, cell_id: str) -> None:
        cell = self._cells[cell_id]
        state = self.state
        attempt = 0
        free_retries = 0
        while True:
            if self._stop.is_set():
                return
            attempt += 1
            self.journal.append(
                CELL_STARTED, cell=cell_id, attempt=attempt,
                backend=getattr(self.backend, "name", "backend"),
            )
            with self._lock:
                self._executed += 1
            outcome = self.backend.run(cell, self.config.cell_timeout_s)
            if outcome.ok:
                # Results first, then the DONE record: a journaled-done
                # cell must always have durable data behind it.
                self.store.append(
                    cell, outcome.table or {}, attempt=attempt,
                    backend=outcome.backend,
                    elapsed_s=outcome.elapsed_s,
                )
                self.journal.append(
                    CELL_DONE, cell=cell_id, attempt=attempt,
                    backend=outcome.backend,
                    elapsed_s=round(outcome.elapsed_s, 4),
                )
                with self._lock:
                    state.done.add(cell_id)
                return

            charged = outcome.kind not in UNCHARGED_KINDS
            if not charged:
                free_retries += 1
                if free_retries > FREE_RETRY_CAP \
                        and outcome.kind != bk.INTERRUPTED:
                    charged = True
            self.journal.append(
                CELL_FAILED, cell=cell_id, attempt=attempt,
                error=outcome.error, kind=outcome.kind, charged=charged,
            )
            with self._lock:
                if charged:
                    state.failures[cell_id] = \
                        state.failures.get(cell_id, 0) + 1
                state.last_error[cell_id] = outcome.error or outcome.kind
                failures = state.failures.get(cell_id, 0)

            if outcome.kind == bk.INTERRUPTED or self._stop.is_set():
                return      # stays pending; resume re-runs it
            if failures >= self.config.quarantine_after:
                self._quarantine(cell_id)
                return
            if charged and attempt > self.config.retry_max:
                with self._lock:
                    self._missed[cell_id] = {
                        "cell": cell_id,
                        "failures": failures,
                        "reason": (
                            f"retries exhausted "
                            f"({attempt} attempts this run)"
                        ),
                        "last_error": outcome.error,
                    }
                return
            self._backoff(attempt)

    def _quarantine(self, cell_id: str) -> None:
        state = self.state
        failures = state.failures.get(cell_id, 0)
        self.journal.append(CELL_QUARANTINED, cell=cell_id,
                            failures=failures)
        with self._lock:
            state.quarantined.add(cell_id)
            self._missed[cell_id] = {
                "cell": cell_id,
                "failures": failures,
                "reason": f"quarantined after {failures} failures",
                "last_error": state.last_error.get(cell_id),
            }

    def _backoff(self, attempt: int) -> None:
        delay = self.config.retry_backoff_s(attempt, rng=self._rng)
        if self._sleep is not None:
            self._sleep(delay)
            return
        # Interruptible sleep: a stop request must not wait out a backoff.
        deadline = time.monotonic() + delay
        while not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._stop.wait(min(remaining, 0.25))
