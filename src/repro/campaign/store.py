"""The campaign results store: merged per-cell results + manifest.

One campaign directory holds everything a sweep produces::

    <dir>/spec.json       canonical copy of the expanded spec
    <dir>/journal.jsonl   the write-ahead journal (see .journal)
    <dir>/results.jsonl   one record per completed cell (this module)
    <dir>/MANIFEST.json   completion manifest: done + missed cells

``results.jsonl`` is append-only and fsynced like the journal, so a
crash never loses a completed cell's data; records carry a schema
version for downstream tooling.  :meth:`ResultsStore.to_csv` flattens
the store into one row per (cell, message size) for plotting scripts —
the same post-processing shape the OSU suite's figures use.
"""

from __future__ import annotations

import csv
import io
import json
import os
import threading
import time

RESULTS_SCHEMA = "ombpy-campaign-results/1"
MANIFEST_SCHEMA = "ombpy-campaign-manifest/1"

RESULTS_FILE = "results.jsonl"
MANIFEST_FILE = "MANIFEST.json"
SPEC_FILE = "spec.json"
JOURNAL_FILE = "journal.jsonl"

#: Flattened CSV columns (one row per cell x size).
CSV_COLUMNS = (
    "cell", "benchmark", "transport", "ranks", "metric", "backend",
    "attempt", "size", "value", "min", "max", "iterations",
)


class ResultsStore:
    """Append-only results for one campaign directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.results_path = os.path.join(root, RESULTS_FILE)
        self.manifest_path = os.path.join(root, MANIFEST_FILE)
        self._lock = threading.Lock()

    # -- results ----------------------------------------------------------
    def append(self, cell, table: dict, attempt: int, backend: str,
               elapsed_s: float) -> dict:
        """Record one completed cell.  ``table`` is the wire-form result
        (``benchmark``/``metric``/``rows`` as produced by
        :func:`repro.service.protocol.table_to_wire` or the CLI's JSON
        output)."""
        record = {
            "schema": RESULTS_SCHEMA,
            "cell": cell.cell_id,
            "benchmark": cell.benchmark,
            "transport": cell.transport,
            "ranks": cell.ranks,
            "metric": table.get("metric"),
            "rows": table.get("rows", []),
            "attempt": attempt,
            "backend": backend,
            "elapsed_s": round(elapsed_s, 4),
            "ts": round(time.time(), 3),
        }
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            # One driver-side results file, not a per-peer descriptor.
            with open(self.results_path, "a",  # ombpy-lint: ignore[OMB514]
                      encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        return record

    def load(self) -> list[dict]:
        """All durable result records (a torn tail line is dropped, as
        in the journal — it never became durable)."""
        records: list[dict] = []
        try:
            with open(self.results_path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return records
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append(json.loads(stripped))
            except ValueError:
                if index == len(lines) - 1:
                    break
                raise ValueError(
                    f"{self.results_path}:{index + 1}: corrupt result "
                    f"record"
                ) from None
        return records

    def completed_cells(self) -> set[str]:
        return {r["cell"] for r in self.load() if "cell" in r}

    def to_csv(self, records: list[dict] | None = None) -> str:
        """Flatten the store to CSV text (one row per cell x size)."""
        if records is None:
            records = self.load()
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(CSV_COLUMNS)
        for record in records:
            for row in record.get("rows", ()):
                writer.writerow([
                    record.get("cell"), record.get("benchmark"),
                    record.get("transport"), record.get("ranks"),
                    record.get("metric"), record.get("backend"),
                    record.get("attempt"), row.get("size"),
                    row.get("value"), row.get("min"), row.get("max"),
                    row.get("iterations"),
                ])
        return out.getvalue()

    # -- manifest ---------------------------------------------------------
    def write_manifest(self, name: str, fingerprint: str, status: str,
                       completed: list[str], missed: list[dict],
                       skipped: list[str] | None = None) -> dict:
        """Atomically (tmp + rename) publish the completion manifest."""
        doc = {
            "schema": MANIFEST_SCHEMA,
            "name": name,
            "fingerprint": fingerprint,
            "status": status,
            "cells": len(completed) + len(missed),
            "completed": sorted(completed),
            "missed": sorted(missed, key=lambda m: m.get("cell", "")),
            "skipped": skipped or [],
            "ts": round(time.time(), 3),
        }
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)
        return doc

    def read_manifest(self) -> dict | None:
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
