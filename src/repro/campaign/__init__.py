"""Crash-safe benchmark campaigns: journaled sweeps with resume.

The paper's figures are products of large benchmark x library x ranks x
size sweeps.  :mod:`repro.campaign` turns those sweeps from ad-hoc
``ombpy-run`` invocations into a durable system: a declarative spec
expands into a grid of *cells*, every state transition is written to an
append-only journal **before** it happens, and ``ombpy-campaign
resume`` after a driver crash (SIGKILL included) re-runs only the cells
that never completed — exactly once each.

Pieces:

* :mod:`.spec` — declarative YAML/JSON campaign spec and its expansion
  into :class:`~repro.campaign.spec.CellSpec` cells with a stable
  fingerprint;
* :mod:`.journal` — the write-ahead journal (append-only JSONL,
  fsynced) and its crash-tolerant replay;
* :mod:`.config` — the ``OMBPY_CAMPAIGN_*`` environment knobs;
* :mod:`.scheduler` — concurrent cell execution with per-cell
  timeouts, capped-exponential retry with jittered backoff, and
  quarantine of repeat offenders;
* :mod:`.backends` — warm (``ombpy-serve`` pool) and cold (supervised
  ``ombpy-run``) execution backends behind one interface;
* :mod:`.store` — the merged results store (JSONL + CSV export) and
  the campaign manifest;
* :mod:`.gate` — the regression gate against prior ``BENCH_*.json``
  snapshots;
* :mod:`.cli` — ``ombpy-campaign run | resume | status | report``.

See ``docs/campaign.md`` for the full format and semantics.
"""

from .config import CampaignConfig
from .journal import Journal, JournalState, replay
from .spec import CampaignSpec, CellSpec
from .store import ResultsStore

__all__ = [
    "CampaignConfig",
    "CampaignSpec",
    "CellSpec",
    "Journal",
    "JournalState",
    "ResultsStore",
    "replay",
]
