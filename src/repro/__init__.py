"""OMB-Py reproduction.

Reproduces "OMB-Py: Python Micro-Benchmarks for Evaluating Performance of
MPI Libraries on HPC Systems" (IPDPS-W 2022) together with every substrate
it depends on:

* :mod:`repro.mpi` — a message-passing runtime (the MPI library),
* :mod:`repro.bindings` — an mpi4py-workalike Python binding layer,
* :mod:`repro.native` — the "OMB in C" fast-path baseline,
* :mod:`repro.gpu` — simulated CuPy/PyCUDA/Numba device-array libraries,
* :mod:`repro.core` — the OMB-Py benchmark suite itself,
* :mod:`repro.simulator` — calibrated cluster models reproducing the
  paper's Frontera/Stampede2/RI2 figures,
* :mod:`repro.ml` — the distributed ML benchmarks (k-NN, k-means HPO,
  matrix multiplication) and their from-scratch substrate.
"""

__version__ = "1.0.0"
