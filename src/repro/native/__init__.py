"""``repro.native`` — the "OMB in C" baseline path.

The paper's reference point is the original OSU Micro-Benchmarks, written
in C and calling MPI directly.  Here, the analogous baseline is a
communicator that calls the runtime directly with all per-call Python
binding work hoisted out: buffers are resolved once at registration time,
no pickle, no buffer-protocol introspection, no datatype discovery inside
the timed loop.  The OMB-vs-OMB-Py delta in the paper *is* the binding
overhead, and comparing :class:`NativeComm` against
:class:`repro.bindings.Comm` isolates exactly the same delta.
"""

from .api import NativeComm, RegisteredBuffer

__all__ = ["NativeComm", "RegisteredBuffer"]
