"""Native (bindings-free) communication path.

:class:`NativeComm` mirrors the benchmark-relevant subset of the bindings
API, but every argument is pre-resolved: buffers are registered once into
:class:`RegisteredBuffer` handles holding a raw ``bytes`` snapshot closure
and a typed array view.  The per-call path is a single runtime invocation —
the closest a pure-Python program gets to "C calling MPI directly".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mpi.comm import Comm as RuntimeComm
from ..mpi.ops import Op


class RegisteredBuffer:
    """A pre-resolved communication buffer.

    Registration does the introspection the bindings layer performs per
    call; afterwards :attr:`view` and :attr:`array` are direct references.
    """

    __slots__ = ("view", "nbytes", "array")

    def __init__(self, raw: bytearray | memoryview | np.ndarray) -> None:
        if isinstance(raw, np.ndarray):
            self.view = memoryview(raw).cast("B")
            self.array = raw.reshape(-1)
        else:
            self.view = memoryview(raw).cast("B")
            self.array = np.frombuffer(self.view, dtype=np.uint8)
        self.nbytes = self.view.nbytes

    def snapshot(self, nbytes: int | None = None) -> bytes:
        """Wire bytes of the (prefix of the) buffer."""
        return bytes(self.view[: self.nbytes if nbytes is None else nbytes])

    def fill_from(self, payload: bytes, offset: int = 0) -> None:
        """Copy received wire bytes into the buffer."""
        self.view[offset:offset + len(payload)] = payload


class NativeComm:
    """Direct runtime access without the bindings layer."""

    __slots__ = ("_rt",)

    def __init__(self, runtime: RuntimeComm) -> None:
        self._rt = runtime

    @property
    def rank(self) -> int:
        return self._rt.rank

    @property
    def size(self) -> int:
        return self._rt.size

    @property
    def runtime(self) -> RuntimeComm:
        return self._rt

    def barrier(self) -> None:
        self._rt.barrier()

    # -- point-to-point -----------------------------------------------------
    def send(self, buf: RegisteredBuffer, nbytes: int, dest: int, tag: int) -> None:
        self._rt.send_bytes(buf.snapshot(nbytes), dest, tag)

    def recv(self, buf: RegisteredBuffer, nbytes: int, source: int, tag: int) -> None:
        payload, _st = self._rt.recv_bytes(source, tag, nbytes)
        buf.fill_from(payload)

    def isend(self, buf: RegisteredBuffer, nbytes: int, dest: int, tag: int):
        return self._rt.isend_bytes(buf.snapshot(nbytes), dest, tag)

    def irecv(self, buf: RegisteredBuffer, nbytes: int, source: int, tag: int):
        return self._rt.irecv_bytes(source, tag, nbytes, sink=buf.view)

    # -- collectives ---------------------------------------------------------
    def bcast(self, buf: RegisteredBuffer, nbytes: int, root: int) -> None:
        data = self._rt.bcast_bytes(
            buf.snapshot(nbytes) if self._rt.rank == root else None, root
        )
        if self._rt.rank != root:
            buf.fill_from(data)

    def allreduce(
        self, send: np.ndarray, recv: np.ndarray, count: int, op: Op
    ) -> None:
        recv[:count] = self._rt.allreduce_array(send[:count], op)

    def reduce(
        self, send: np.ndarray, recv: np.ndarray, count: int, op: Op, root: int
    ) -> None:
        result = self._rt.reduce_array(send[:count], op, root)
        if result is not None:
            recv[:count] = result

    def allgather(
        self, send: RegisteredBuffer, recv: RegisteredBuffer, nbytes: int
    ) -> None:
        blocks = self._rt.allgather_bytes(send.snapshot(nbytes))
        offset = 0
        for b in blocks:
            recv.fill_from(b, offset)
            offset += len(b)

    def gather(
        self, send: RegisteredBuffer, recv: RegisteredBuffer, nbytes: int,
        root: int,
    ) -> None:
        blocks = self._rt.gather_bytes(send.snapshot(nbytes), root)
        if blocks is not None:
            offset = 0
            for b in blocks:
                recv.fill_from(b, offset)
                offset += len(b)

    def scatter(
        self, send: RegisteredBuffer | None, recv: RegisteredBuffer,
        nbytes: int, root: int,
    ) -> None:
        blocks = None
        if self._rt.rank == root:
            assert send is not None
            data = send.snapshot(nbytes * self._rt.size)
            blocks = [
                data[i * nbytes:(i + 1) * nbytes]
                for i in range(self._rt.size)
            ]
        recv.fill_from(self._rt.scatter_bytes(blocks, root))

    def alltoall(
        self, send: RegisteredBuffer, recv: RegisteredBuffer, nbytes: int
    ) -> None:
        data = send.snapshot(nbytes * self._rt.size)
        blocks = self._rt.alltoall_bytes(
            [data[i * nbytes:(i + 1) * nbytes] for i in range(self._rt.size)]
        )
        offset = 0
        for b in blocks:
            recv.fill_from(b, offset)
            offset += len(b)

    def reduce_scatter(
        self, send: np.ndarray, recv: np.ndarray,
        counts: Sequence[int], op: Op,
    ) -> None:
        result = self._rt.reduce_scatter_array(send, counts, op)
        recv[: result.shape[0]] = result
