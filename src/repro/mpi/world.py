"""World bootstrap: turning a process (or thread) into an MPI rank.

Three entry paths:

* :func:`init` — called inside a process started by ``ombpy-run``; reads the
  ``OMBPY_*`` environment, joins the TCP mesh, and returns a ``World`` whose
  ``comm`` is COMM_WORLD.  Without the environment it returns a single-rank
  world, exactly as ``mpiexec``-less MPI programs run as singletons.
* :func:`run_on_threads` — runs ``fn(comm)`` on N ranks-as-threads inside
  the current process over the inproc fabric.  This is the harness the test
  suite and single-process benchmarks use.
* :func:`run_on_processes` — convenience wrapper that shells out to the
  launcher for true multi-process execution.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..telemetry import ENV_OUT, install_on_endpoint, telemetry_from_env
from . import constants as C
from .comm import Comm, Endpoint
from .exceptions import InternalError
from .group import Group
from .reliability import reliable_from_env
from .transport.inproc import InprocFabric
from .transport.tcp import TcpTransport

ENV_RANK = "OMBPY_RANK"
ENV_SIZE = "OMBPY_SIZE"
ENV_COORD = "OMBPY_COORD"
ENV_TRANSPORT = "OMBPY_TRANSPORT"
ENV_JOB = "OMBPY_JOB"
ENV_FAULTS = "OMBPY_FAULTS"
ENV_FAULT_SEED = "OMBPY_FAULT_SEED"
ENV_FAULT_LOG = "OMBPY_FAULT_LOG"


def reliability_stats(transport) -> dict[str, int] | None:
    """The reliable-delivery counters of a transport stack, if present."""
    t = transport
    while t is not None:
        stats = getattr(t, "stats", None)
        if callable(stats):
            return stats()
        t = getattr(t, "inner", None)
    return None


def _faults_from_env():
    """Build a FaultPlan from the launcher's chaos env, if one is set."""
    plan_path = os.environ.get(ENV_FAULTS)
    seed = os.environ.get(ENV_FAULT_SEED)
    if not plan_path and seed is None:
        return None
    from ..faults import FaultPlan

    if plan_path:
        return FaultPlan.from_file(plan_path)
    return FaultPlan.chaos(int(seed))


def _wrap_faults(transport, plan):
    """Wrap a mesh-established transport in the fault injector."""
    from ..faults import FaultyTransport

    return FaultyTransport(
        transport, plan, log_path=os.environ.get(ENV_FAULT_LOG)
    )


@dataclass
class World:
    """A live MPI world for this process: endpoint + COMM_WORLD."""

    comm: Comm
    endpoint: Endpoint
    _fabric: InprocFabric | None = None
    _detector: object | None = None

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def reliability_stats(self) -> dict[str, int] | None:
        """Reliable-delivery counters, or None when the layer is off."""
        return reliability_stats(self.endpoint.transport)

    def finalize(self) -> None:
        """Tear down transports.  Collective in spirit: call on all ranks."""
        # Persist this rank's telemetry before the channel goes down so
        # the launcher can merge the per-rank dumps after the job exits.
        tele = self.endpoint.telemetry
        if tele is not None and os.environ.get(ENV_OUT):
            from ..telemetry.export import write_rank_dump

            write_rank_dump(os.environ[ENV_OUT], tele)
        # Stop liveness monitoring before sockets go down, so our own
        # teardown is not reported as a peer failure.
        if self._detector is not None:
            self._detector.stop()
        self.endpoint.close()
        if self._fabric is not None:
            self._fabric.close()

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.finalize()


def _assemble_world(
    transport, size: int, thread_level: int, establish: bool
) -> World:
    """Common multi-process tail: faults, endpoint, mesh, detector, comm.

    The fault injector (if the chaos env is set) wraps the transport
    *before* the endpoint attaches, and the mesh is established after, so
    no inbound frame can race the engine attachment.  The reliability
    layer (``OMBPY_RELIABLE``) stacks *outside* the injector — app →
    reliable → faulty → wire — so injected drops/duplicates/truncations
    are absorbed before the matching engine sees the stream.  The failure
    detector binds to the *innermost* transport — heartbeats must not
    consume fault-plan RNG draws, or replay determinism dies.
    """
    plan = _faults_from_env()
    wrapped = transport
    if plan is not None and plan.active:
        wrapped = _wrap_faults(transport, plan)
    wrapped = reliable_from_env(wrapped)
    endpoint = Endpoint(wrapped)
    from .topology import group_map_from_env

    endpoint.group_map = group_map_from_env(size)
    tele = telemetry_from_env(transport.world_rank)
    if tele is not None:
        install_on_endpoint(endpoint, tele)
    if establish:
        transport.establish_mesh()
    from .resilience import detector_from_env

    detector = detector_from_env(transport, endpoint.engine, endpoint)
    if detector is not None:
        detector.start()
    comm = Comm(
        endpoint, Group(list(range(size))), context=0,
        thread_level=thread_level,
    )
    return World(comm, endpoint, _detector=detector)


def init(thread_level: int = C.THREAD_MULTIPLE) -> World:
    """Initialize this process as a rank (launcher env) or a singleton."""
    if ENV_RANK not in os.environ:
        fabric = InprocFabric(1)
        endpoint = Endpoint(fabric.create_transport(0))
        tele = telemetry_from_env(0)
        if tele is not None:
            install_on_endpoint(endpoint, tele)
        comm = Comm(endpoint, Group([0]), context=0, thread_level=thread_level)
        return World(comm, endpoint, fabric)

    rank = int(os.environ[ENV_RANK])
    size = int(os.environ[ENV_SIZE])

    fabric_kind = os.environ.get(ENV_TRANSPORT, "tcp")
    if fabric_kind == "uds":
        from .transport.uds import UdsTransport

        transport = UdsTransport(rank, size, os.environ[ENV_JOB])
        return _assemble_world(transport, size, thread_level, establish=True)
    if fabric_kind == "shm":
        from .topology import group_map_from_env

        group_map = group_map_from_env(size)
        if group_map is not None and group_map.n_groups > 1:
            # Grouped launch: the launcher only created intra-group ring
            # segments — cross-group traffic rides lazy UDS streams.
            from .fabric.hybrid import HybridTransport

            transport = HybridTransport(
                rank, size, os.environ[ENV_JOB], group_map
            )
            return _assemble_world(
                transport, size, thread_level, establish=True
            )
        from .transport.shm import ShmTransport

        # Segments are created by the launcher before spawn, so attaching
        # here cannot race; no rendezvous needed.
        transport = ShmTransport(rank, size, os.environ[ENV_JOB])
        return _assemble_world(transport, size, thread_level, establish=False)

    coord_host, coord_port = os.environ[ENV_COORD].rsplit(":", 1)

    listen = TcpTransport.bind_ephemeral()
    my_port = listen.getsockname()[1]

    # Rendezvous with the launcher: report our port, get the full map.
    with socket.create_connection((coord_host, int(coord_port)), timeout=60) as cs:
        cs.sendall(f"{rank} {my_port}\n".encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = cs.recv(65536)
            if not chunk:
                raise InternalError("coordinator closed during rendezvous")
            buf += chunk
    port_map = {int(k): int(v) for k, v in json.loads(buf.decode()).items()}

    transport = TcpTransport(rank, size, listen, port_map)
    return _assemble_world(transport, size, thread_level, establish=True)


def run_on_threads(
    n: int,
    fn: Callable[[Comm], Any],
    thread_level: int = C.THREAD_MULTIPLE,
    timeout: float | None = 120.0,
    fault_plan=None,
    reliable: bool = False,
    tolerate_crashes: bool = False,
    groups: str | None = None,
) -> list[Any]:
    """Run ``fn(comm)`` on ``n`` ranks-as-threads; return per-rank results.

    Any rank raising propagates the first exception (by rank order) to the
    caller after all threads have been joined, so failures in collective
    code surface as test failures rather than hangs.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) wraps every rank's
    transport in the deterministic fault injector — the chaos-test path
    for the threads fabric.  Scheduled crashes should use ``mode="raise"``
    here: a hard exit would take the whole test process down.

    ``reliable`` stacks the ack/retransmit layer outside the injector
    (app → reliable → faulty → fabric), absorbing injected drops,
    duplicates, and truncations.  ``tolerate_crashes`` makes an injected
    rank crash non-fatal to the harness: the crashed rank's peers see it
    via the fabric's failure notification (as they would see a process
    death), its own :class:`~repro.faults.InjectedCrash` is not
    re-raised, and its result stays ``None`` — the ULFM recovery path
    for the threads fabric.

    ``groups`` (a ``--groups``-style spec, or the ``OMBPY_GROUPS`` env
    as fallback) attaches a node-group map to every endpoint, switching
    eligible collectives to their hierarchical two-level algorithms —
    the threads-fabric way to exercise the topology layer.
    """
    from .topology import group_map_from_env, parse_groups

    group_map = (
        parse_groups(groups, n) if groups else group_map_from_env(n)
    )
    fabric = InprocFabric(n)

    def make_transport(r: int):
        transport = fabric.create_transport(r)
        if fault_plan is not None and fault_plan.active:
            from ..faults import FaultyTransport

            transport = FaultyTransport(transport, fault_plan)
        if reliable:
            from .reliability import ReliableTransport

            transport = ReliableTransport(transport)
        return transport

    endpoints = [Endpoint(make_transport(r)) for r in range(n)]
    for ep in endpoints:
        ep.group_map = group_map
        tele = telemetry_from_env(ep.world_rank)
        if tele is not None:
            install_on_endpoint(ep, tele)
    group = Group(list(range(n)))
    comms = [
        Comm(ep, group, context=0, thread_level=thread_level)
        for ep in endpoints
    ]
    results: list[Any] = [None] * n
    errors: list[BaseException | None] = [None] * n

    def runner(r: int) -> None:
        try:
            results[r] = fn(comms[r])
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[r] = exc
            if type(exc).__name__ == "InjectedCrash":
                # The thread analogue of a process death: peers find out
                # through the fabric, as they would through EOF.
                fabric.mark_rank_failed(
                    r, f"rank {r} crashed (injected fault: {exc})"
                )

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        # A rank that raised leaves its peers blocked; the root cause is
        # that error, not the resulting timeout — surface it first.
        for err in errors:
            if err is not None:
                raise err
        raise TimeoutError(
            f"{len(alive)} rank thread(s) still running after {timeout}s: "
            f"{[t.name for t in alive]} (likely a collective mismatch)"
        )
    for ep in endpoints:
        if ep.telemetry is not None and os.environ.get(ENV_OUT):
            from ..telemetry.export import write_rank_dump

            write_rank_dump(os.environ[ENV_OUT], ep.telemetry)
        ep.close()
    fabric.close()
    for err in errors:
        if err is not None:
            if tolerate_crashes and type(err).__name__ == "InjectedCrash":
                continue
            raise err
    return results


def run_on_processes(
    n: int,
    script: str,
    args: list[str] | None = None,
    timeout: float = 300.0,
) -> int:
    """Launch ``script`` under the process launcher; return its exit code."""
    from .launcher import launch

    return launch(n, [script] + (args or []), timeout=timeout)
