"""Non-blocking operation handles, the analogue of ``MPI_Request``.

The runtime uses an eager/buffered send protocol, so send requests complete
at post time; receive requests wrap a matching-engine ticket and complete
when a message matches.
"""

from __future__ import annotations

from typing import Sequence

from .exceptions import RequestError
from .matching import RecvTicket
from .status import Status


class Request:
    """Base class for non-blocking operation handles."""

    def test(self) -> tuple[bool, Status | None]:
        """Non-blocking completion check; returns (done, status-or-None)."""
        raise NotImplementedError

    def wait(self, timeout: float | None = None) -> Status:
        """Block until complete; return the operation status."""
        raise NotImplementedError

    def done(self) -> bool:
        """Return whether the operation has completed."""
        raise NotImplementedError

    def cancel(self) -> bool:
        """Attempt to cancel; returns whether cancellation succeeded."""
        return False


class SendRequest(Request):
    """Handle for a buffered (eager) send — complete at creation.

    The wire-level send completes eagerly, but *MPI* semantics only hand
    the buffer back to the user at wait/test — which is where an attached
    race-sanitizer pin (``sanitizer_pin``, duck-typed, set by the bindings
    layer) is released and the buffer snapshot verified.
    """

    __slots__ = ("_status", "sanitizer_pin")

    def __init__(self, dest: int, tag: int, nbytes: int) -> None:
        self._status = Status()
        self._status._fill(dest, tag, nbytes)
        self.sanitizer_pin = None

    def _release_pin(self) -> None:
        pin = self.sanitizer_pin
        if pin is not None:
            self.sanitizer_pin = None
            pin.release()

    def test(self) -> tuple[bool, Status]:
        self._release_pin()
        return True, self._status

    def wait(self, timeout: float | None = None) -> Status:
        self._release_pin()
        return self._status

    def done(self) -> bool:
        return True


class RecvRequest(Request):
    """Handle for a posted receive.

    ``wait`` completes the receive and (if a destination buffer was
    registered) copies the payload into it.
    """

    __slots__ = ("_ticket", "_sink", "_payload", "_waited")

    def __init__(self, ticket: RecvTicket, sink=None) -> None:
        self._ticket = ticket
        # Optional writable buffer (memoryview-able) to copy the payload into.
        self._sink = sink
        self._payload: bytes | None = None
        self._waited = False

    def test(self) -> tuple[bool, Status | None]:
        if self._ticket.done():
            self._finish()
            return True, self._ticket.status
        return False, None

    def wait(self, timeout: float | None = None) -> Status:
        self._ticket.wait(timeout)
        self._finish()
        return self._ticket.status

    def done(self) -> bool:
        return self._ticket.done()

    def payload(self) -> bytes:
        """Return the received bytes (valid after completion)."""
        if not self._ticket.done():
            raise RequestError("payload() before receive completed")
        self._finish()
        assert self._payload is not None
        return self._payload

    def _finish(self) -> None:
        if self._waited:
            return
        self._payload = self._ticket.payload or b""
        if self._sink is not None and self._payload:
            view = memoryview(self._sink).cast("B")
            n = len(self._payload)
            view[:n] = self._payload
        self._waited = True
        # Tell an active verifier the request was completed (not leaked);
        # covers the test()/payload() paths that bypass RecvTicket.wait.
        if self._ticket.verifier is not None:
            self._ticket.verifier.on_consume(self._ticket)


def waitall(requests: Sequence[Request]) -> list[Status]:
    """Wait for all requests; return their statuses in order."""
    return [r.wait() for r in requests]


def testall(requests: Sequence[Request]) -> tuple[bool, list[Status] | None]:
    """Test all requests; statuses only if every one is complete."""
    results = [r.test() for r in requests]
    if all(done for done, _ in results):
        return True, [st for _, st in results]  # type: ignore[misc]
    return False, None


def waitany(requests: Sequence[Request], poll_interval: float = 1e-5) -> int:
    """Wait until at least one request completes; return its index.

    A simple polling implementation — adequate for the benchmark suite,
    which never has more than a window's worth of outstanding requests.
    """
    import time

    if not requests:
        raise RequestError("waitany on empty request list")
    while True:
        for i, r in enumerate(requests):
            if r.done():
                r.wait()
                return i
        time.sleep(poll_interval)
